//! Cross-crate integration tests: the full system assembled the way the
//! paper's prototype was (client ↔ TCP ↔ server, disk-backed buckets,
//! real datasets generators) — plus the security properties §4.3 claims.

use simcloud::prelude::*;
use simcloud_metric::Metric;

fn objects(data: &[Vector]) -> Vec<(ObjectId, Vector)> {
    data.iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v))
        .collect()
}

/// Paper §4.4: "Both client and server are … processes communicating via
/// TCP/IP". The TCP deployment must agree exactly with the in-process one.
#[test]
fn tcp_and_in_process_deployments_agree() {
    let dataset = simcloud::datasets::yeast_like(3, Some(400));
    let data = &dataset.vectors;
    let (key, _) = SecretKey::generate(data, 10, &L1, PivotSelection::Random, 4);
    let mut cfg = MIndexConfig::yeast();
    cfg.num_pivots = 10;

    let mut local = simcloud::core::in_process(
        key.clone(),
        L1,
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .unwrap()
    .with_rng_seed(5);
    let (mut remote, server) =
        simcloud::core::over_tcp(key, L1, cfg, MemoryStore::new(), ClientConfig::distances())
            .unwrap();

    let objs = objects(data);
    local.insert_bulk(&objs).unwrap();
    remote.insert_bulk(&objs).unwrap();

    for qi in [0usize, 99, 250] {
        let q = &data[qi];
        let (a, _) = local.knn_approx(q, 10, 100).unwrap();
        let (b, costs) = remote.knn_approx(q, 10, 100).unwrap();
        assert_eq!(
            a.iter().map(|x| x.0).collect::<Vec<_>>(),
            b.iter().map(|x| x.0).collect::<Vec<_>>(),
            "query {qi}: TCP and in-process answers diverge"
        );
        assert!(costs.server > std::time::Duration::ZERO);
        let (ra, _) = local.range(q, 20.0).unwrap();
        let (rb, _) = remote.range(q, 20.0).unwrap();
        assert_eq!(ra, rb);
    }
    // Byte-exact accounting must agree between the transports (same
    // protocol bytes, only timing differs).
    assert_eq!(
        local.total_costs().bytes_sent,
        remote.total_costs().bytes_sent
    );
    assert_eq!(
        local.total_costs().bytes_received,
        remote.total_costs().bytes_received
    );
    drop(remote);
    server.shutdown();
}

/// Disk-backed server: the CoPhIR configuration persists across server
/// restarts (flush + reopen), and queries keep working.
#[test]
fn disk_backed_cloud_survives_data_volume() {
    let dataset = simcloud::datasets::cophir_like(9, 800);
    let metric = match &dataset.metric {
        simcloud::datasets::DatasetMetric::Combined(m) => m.clone(),
        _ => unreachable!(),
    };
    let (key, _) = SecretKey::generate(&dataset.vectors, 20, &metric, PivotSelection::Random, 10);
    let mut cfg = MIndexConfig::cophir();
    cfg.num_pivots = 20;
    cfg.bucket_capacity = 100;
    let path = std::env::temp_dir().join(format!("simcloud-int-{}.db", std::process::id()));
    let store = DiskStore::create(&path).unwrap();
    let mut cloud =
        simcloud::core::in_process(key, metric.clone(), cfg, store, ClientConfig::distances())
            .unwrap()
            .with_rng_seed(11);
    cloud.insert_bulk(&objects(&dataset.vectors)).unwrap();
    let q = &dataset.vectors[5];
    let (res, _) = cloud.knn_approx(q, 10, 200).unwrap();
    assert_eq!(res[0].0, ObjectId(5));
    assert!(res[0].1.abs() < 1e-6);
    simcloud::storage::FileEnv::remove_sidecars(&path);
    let _ = std::fs::remove_file(path);
}

/// End-to-end recall parity with the plain index on a generated dataset —
/// encryption must not change *what* is found, only *where* work happens
/// (paper §5: same recall columns for Tables 5/7 and 6/8).
#[test]
fn encrypted_and_plain_recall_parity_on_yeast() {
    let dataset = simcloud::datasets::yeast_like(21, Some(1000));
    let data = &dataset.vectors;
    let mut cfg = MIndexConfig::yeast();
    cfg.num_pivots = 30;
    let (key, _) = SecretKey::generate(data, 30, &L1, PivotSelection::Random, 22);

    let mut cloud = simcloud::core::in_process(
        key.clone(),
        L1,
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .unwrap()
    .with_rng_seed(23);
    cloud.insert_bulk(&objects(data)).unwrap();

    let mut plain = PlainMIndex::new(cfg, key.pivots().to_vec(), L1, MemoryStore::new()).unwrap();
    for (i, v) in data.iter().enumerate() {
        plain.insert(ObjectId(i as u64), v).unwrap();
    }

    for qi in [7usize, 333, 808] {
        let q = &data[qi];
        for cand in [100usize, 400] {
            let (enc, _) = cloud.knn_approx(q, 30, cand).unwrap();
            let (pl, _) = plain.knn_approx(q, 30, cand).unwrap();
            assert_eq!(
                enc.iter().map(|x| x.0).collect::<Vec<_>>(),
                pl.iter().map(|x| x.0).collect::<Vec<_>>(),
                "query {qi} cand {cand}"
            );
        }
    }
}

/// §4.3's leakage audit: the bytes that reach the server never contain the
/// query vector or any plaintext object.
#[test]
fn server_never_sees_plaintext() {
    use simcloud_core::protocol::Request;
    use simcloud_mindex::Routing;

    let dataset = simcloud::datasets::yeast_like(31, Some(50));
    let data = &dataset.vectors;
    let (key, _) = SecretKey::generate(data, 5, &L1, PivotSelection::Random, 32);

    // Construct the exact insert request bytes for object 0 the way the
    // client does, then check the plaintext encoding is not a substring.
    let o = &data[0];
    let ds = key.pivot_distances(&L1, o);
    let mut plain = Vec::new();
    o.encode(&mut plain);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let sealed = key.cipher().seal(&plain, key.mode(), &mut rng);
    let req = Request::Insert(vec![simcloud_mindex::IndexEntry::new(
        0,
        Routing::from_distances(&ds),
        sealed,
    )])
    .encode();

    // The plaintext object bytes must not appear in the request.
    assert!(
        !req.windows(plain.len().min(16))
            .any(|w| w == &plain[..plain.len().min(16)]),
        "plaintext leaked into the insert request"
    );

    // A query request contains only distances (f32) — reconstructing the
    // 17-dim object from 5 scalars is information-theoretically impossible,
    // and the query object bytes are absent.
    let q = &data[1];
    let mut q_plain = Vec::new();
    q.encode(&mut q_plain);
    let q_req = Request::ApproxKnn {
        routing: Routing::from_distances(&key.pivot_distances(&L1, q)),
        cand_size: 10,
    }
    .encode();
    assert!(
        !q_req
            .windows(q_plain.len().min(16))
            .any(|w| w == &q_plain[..q_plain.len().min(16)]),
        "query object leaked into the search request"
    );
}

/// Tampering by the untrusted server is detected by the client (the
/// envelope's encrypt-then-MAC), not silently returned as a wrong answer.
#[test]
fn tampered_candidates_are_rejected() {
    use simcloud_core::protocol::Response;
    use simcloud_transport::{InProcessTransport, RequestHandler};

    // A malicious "server" that flips a byte in every candidate payload.
    struct Mallory<H>(H);
    impl<H: RequestHandler> RequestHandler for Mallory<H> {
        fn handle(&mut self, request: &[u8]) -> Vec<u8> {
            let resp = self.0.handle(request);
            match Response::decode(&resp) {
                Ok(Response::CandidateList(mut list)) if !list.payloads.is_empty() => {
                    for payload in &mut list.payloads {
                        if let Some(b) = payload.last_mut() {
                            *b ^= 0x01;
                        }
                    }
                    Response::CandidateList(list).encode()
                }
                _ => resp,
            }
        }
    }

    let dataset = simcloud::datasets::yeast_like(41, Some(100));
    let data = &dataset.vectors;
    let (key, _) = SecretKey::generate(data, 5, &L1, PivotSelection::Random, 42);
    let mut cfg = MIndexConfig::yeast();
    cfg.num_pivots = 5;
    let server = simcloud_core::CloudServer::new(cfg, MemoryStore::new()).unwrap();
    let transport = InProcessTransport::new(Mallory(server));
    let mut client =
        simcloud_core::EncryptedClient::new(key, L1, transport, ClientConfig::distances())
            .with_rng_seed(43);
    client.insert_bulk(&objects(data)).unwrap();
    let err = client.knn_approx(&data[0], 5, 20).unwrap_err();
    assert!(
        matches!(err, simcloud_core::ClientError::Seal(_)),
        "tampering must surface as a seal error, got {err}"
    );
}

/// A malicious server cannot drive client (or server) memory with forged
/// length headers: claimed counts are capped by the bytes actually present,
/// and a frame above the per-message cap is rejected before any allocation.
#[test]
fn forged_length_headers_are_rejected_cheaply() {
    use simcloud_core::protocol::{Request, Response, MAX_DECODE_BYTES};
    use simcloud_transport::{InProcessTransport, RequestHandler};

    // Allocation bombs: a valid tag followed by a u32::MAX element count
    // and no element bodies. Decode must fail fast, not reserve gigabytes.
    let mut bomb = vec![0x01]; // Request::Insert
    bomb.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(Request::decode(&bomb).is_err());
    let mut bomb = vec![0x02]; // Response::Candidates
    bomb.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(Response::decode(&bomb).is_err());

    // Over-cap frames are rejected outright by the size gate.
    let huge = vec![0u8; MAX_DECODE_BYTES + 1];
    assert!(Request::decode(&huge).is_err());
    assert!(Response::decode(&huge).is_err());

    // End to end: a tampering transport replacing every answer with a
    // forged phase-1 header list claiming u32::MAX candidates must surface
    // as a client error, never a panic or runaway allocation.
    struct Bomber<H>(H);
    impl<H: RequestHandler> RequestHandler for Bomber<H> {
        fn handle(&mut self, request: &[u8]) -> Vec<u8> {
            let _ = self.0.handle(request);
            let mut forged = vec![0x07]; // Response::CandidateList tag
            forged.extend_from_slice(&u32::MAX.to_le_bytes());
            forged
        }
    }

    let dataset = simcloud::datasets::yeast_like(41, Some(60));
    let data = &dataset.vectors;
    let (key, _) = SecretKey::generate(data, 5, &L1, PivotSelection::Random, 42);
    let mut cfg = MIndexConfig::yeast();
    cfg.num_pivots = 5;
    let server = simcloud_core::CloudServer::new(cfg, MemoryStore::new()).unwrap();
    let transport = InProcessTransport::new(Bomber(server));
    let mut client =
        simcloud_core::EncryptedClient::new(key, L1, transport, ClientConfig::distances())
            .with_rng_seed(43);
    assert!(client.knn_approx(&data[0], 5, 20).is_err());
}

/// The index works for non-vector data too (the metric approach is
/// generic): edit distance over strings through the plain M-Index layer.
#[test]
fn mindex_routing_supports_any_metric() {
    use simcloud_metric::{permutation_from_distances, EditDistance};
    let words = [
        "similarity",
        "similarly",
        "simulator",
        "cloud",
        "clouds",
        "cloudy",
        "metric",
        "matric",
    ];
    let pivots = ["similar", "cloud"];
    let m = EditDistance;
    // Permutations derived from edit distances route exactly like vector
    // permutations — this is all the server ever needs.
    for w in &words {
        let ds: Vec<f64> = pivots
            .iter()
            .map(|p| Metric::<str>::distance(&m, w, p))
            .collect();
        let perm = permutation_from_distances(&ds);
        assert_eq!(perm.len(), 2);
        if Metric::<str>::distance(&m, w, "similar") < Metric::<str>::distance(&m, w, "cloud") {
            assert_eq!(perm.closest(), Some(0), "{w}");
        }
    }
}

/// Generated datasets + workload + ground truth compose: recall of exact
/// answers is 100%.
#[test]
fn ground_truth_pipeline_is_consistent() {
    let dataset = simcloud::datasets::human_like(51, Some(300));
    let workload = simcloud::datasets::QueryWorkload::held_out(&dataset.vectors, 10, 52);
    let truth = simcloud::datasets::parallel_knn_ground_truth(
        &workload.indexed,
        &workload.queries,
        &L1,
        5,
        4,
    );
    let answers: Vec<Vec<(ObjectId, f64)>> = truth.answers.clone();
    assert!((truth.mean_recall(&answers) - 100.0).abs() < 1e-9);
    assert_eq!(truth.answers.len(), 10);
    for a in &truth.answers {
        assert_eq!(a.len(), 5);
        for w in a.windows(2) {
            assert!(w[0].1 <= w[1].1, "ground truth must be sorted");
        }
    }
}
