//! Crash recovery end to end: a similarity-cloud server is killed mid
//! bulk-insert and the store is reopened, recovered and queried.
//!
//! The example re-executes itself as a *child process* that inserts
//! encrypted objects into a disk-backed server, committing (flushing)
//! every third batch — then dies abruptly via `abort()` with a batch
//! inserted but not yet committed. The parent reopens the store:
//! `DiskStore::open` notices the unclean shutdown, replays the write-ahead
//! log, and serves exactly the committed prefix; the index layer rebuilds
//! its Voronoi cell tree from the recovered records and queries work.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use simcloud::prelude::*;
use simcloud::storage::{BucketStore, FileEnv};

const BATCH: usize = 100;
const FLUSH_EVERY: usize = 3; // commit after batches 2, 5, 8, …
const CRASH_AT_BATCH: usize = 10; // die before this batch is committed
const CHILD_ENV: &str = "SIMCLOUD_CRASH_CHILD_STORE";

/// Deterministic collection + key: the parent and the child derive the
/// same secrets independently, like an owner restarting its client.
fn owner_setup() -> (Vec<Vector>, SecretKey, MIndexConfig) {
    let dataset = simcloud::datasets::yeast_like(42, Some(1500));
    let (key, _master) = SecretKey::generate(&dataset.vectors, 30, &L1, PivotSelection::Random, 7);
    let mut cfg = MIndexConfig::yeast();
    cfg.num_pivots = 30;
    (dataset.vectors, key, cfg)
}

/// Child: bulk-insert with periodic commits, then crash hard.
fn run_child(store_path: &std::path::Path) {
    let (data, key, cfg) = owner_setup();
    let store = DiskStore::create(store_path).expect("create store");
    let server = std::sync::Arc::new(simcloud::core::CloudServer::new(cfg, store).expect("server"));
    let mut cloud = simcloud::core::client_for(
        key,
        L1,
        std::sync::Arc::clone(&server),
        ClientConfig::distances(),
    );

    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v))
        .collect();
    for (i, chunk) in objects.chunks(BATCH).enumerate() {
        if i == CRASH_AT_BATCH {
            println!(
                "child: crashing hard with batch {} inserted but NOT committed",
                i - 1
            );
            // No destructors, no flush — the process just dies.
            std::process::abort();
        }
        cloud.insert_bulk(chunk).expect("insert");
        if i % FLUSH_EVERY == FLUSH_EVERY - 1 {
            server.flush().expect("flush");
            println!("child: committed through object {}", (i + 1) * BATCH - 1);
        }
    }
}

fn main() {
    if let Some(path) = std::env::var_os(CHILD_ENV) {
        run_child(std::path::Path::new(&path));
        return;
    }

    let store_path = std::env::temp_dir().join(format!("simcloud-crash-{}.db", std::process::id()));

    // --- Act 1: the child process dies mid-insert --------------------------
    let exe = std::env::current_exe().expect("own path");
    let status = std::process::Command::new(exe)
        .env(CHILD_ENV, &store_path)
        .status()
        .expect("spawn child");
    println!("\nparent: child exited with {status} (crash expected)\n");
    assert!(!status.success(), "the child is supposed to die");

    // --- Act 2: reopen, recover, rebuild ------------------------------------
    let (data, key, cfg) = owner_setup();
    let store = DiskStore::open(&store_path).expect("reopen after crash");
    let stats = store.stats();
    if store.recovered_on_open() {
        println!(
            "parent: unclean shutdown detected — WAL replayed ({} pages), CRC failures: {}",
            stats.pages_recovered, stats.crc_failures
        );
    } else {
        // The engine only touches the file inside `flush`: a crash landing
        // *between* commits leaves the disk exactly at the last commit, so
        // there is nothing to repair. Only a crash inside the flush window
        // itself (after the WAL commit record, before the checkpoint
        // finishes) needs — and gets — a WAL replay.
        println!(
            "parent: on-disk state is exactly the last commit — no repair needed \
             (the crash fell between flushes)"
        );
    }
    store.verify().expect("recovered store verifies CRC-clean");

    let mut cloud =
        simcloud::core::in_process_rebuilt(key, L1, cfg, store, ClientConfig::distances())
            .expect("rebuild index from recovered records");
    let (entries, leaves, depth) = cloud.server_info().expect("info");
    let committed = (CRASH_AT_BATCH / FLUSH_EVERY) * FLUSH_EVERY * BATCH;
    println!(
        "parent: rebuilt cell tree serves {entries} sealed objects \
         ({leaves} leaf cells, depth {depth}) — the committed prefix is {committed}\n"
    );
    assert_eq!(
        entries, committed as u64,
        "exactly the committed prefix survives"
    );

    // --- Act 3: queries over the recovered index ----------------------------
    // An object committed before the crash is found exactly…
    let (res, _) = cloud.knn_approx(&data[10], 5, 200).expect("knn");
    println!(
        "query for committed object 10 → nearest {:?} at distance {:.4}",
        res[0].0, res[0].1
    );
    assert_eq!(res[0].0, ObjectId(10));
    assert!(res[0].1.abs() < 1e-6);

    // …while an object from the uncommitted tail is gone (its nearest
    // surviving neighbor is someone else, at non-zero distance).
    let lost = committed + 50;
    let (res, _) = cloud.knn_approx(&data[lost], 1, 200).expect("knn");
    println!(
        "query for uncommitted object {lost} → nearest survivor {:?} at distance {:.4}",
        res[0].0, res[0].1
    );
    assert_ne!(res[0].0, ObjectId(lost as u64));

    println!("\ncrash, recovery, rebuild: all invariants held.");
    FileEnv::remove_sidecars(&store_path);
    let _ = std::fs::remove_file(&store_path);
}
