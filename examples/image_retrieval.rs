//! Content-based image retrieval at scale — the paper's CoPhIR scenario
//! ("one million images downloaded from Flickr … five MPEG-7 visual
//! descriptors"). Shows the cost profile the paper highlights: with an
//! expensive combined metric, client-side distance computation dominates
//! and the encryption overhead becomes marginal (Tables 3 & 6).
//!
//! ```sh
//! cargo run --release --example image_retrieval            # 30k images
//! N=200000 cargo run --release --example image_retrieval   # bigger run
//! ```

use simcloud::prelude::*;

fn main() {
    let n: usize = std::env::var("N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let dataset = simcloud::datasets::cophir_like(7, n);
    println!("collection: {}", dataset.summary_row());
    let metric = match &dataset.metric {
        simcloud::datasets::DatasetMetric::Combined(m) => m.clone(),
        _ => unreachable!("cophir uses the combined metric"),
    };

    // 100 pivots, disk-backed buckets — the paper's CoPhIR configuration
    // (Table 2).
    let (key, _) = SecretKey::generate(&dataset.vectors, 100, &metric, PivotSelection::Random, 11);
    let store_path =
        std::env::temp_dir().join(format!("simcloud-images-{}.db", std::process::id()));
    let store = DiskStore::create(&store_path).expect("disk store");
    let mut cloud = simcloud::core::in_process(
        key,
        metric.clone(),
        MIndexConfig::cophir(),
        store,
        ClientConfig::distances(),
    )
    .expect("config");

    println!(
        "indexing {n} image descriptors (this computes 100 distances per image on the client)…"
    );
    let objects: Vec<(ObjectId, Vector)> = dataset
        .vectors
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v))
        .collect();
    let mut build = CostReport::default();
    for chunk in objects.chunks(1000) {
        build.merge(&cloud.insert_bulk(chunk).expect("insert"));
    }
    println!("— construction —");
    println!("{build}");
    println!(
        "note the paper's Table 3 shape: dist. comp. {:.1}% of client time, encryption {:.1}%\n",
        100.0 * build.distance.as_secs_f64() / build.client.as_secs_f64().max(1e-9),
        100.0 * build.encryption.as_secs_f64() / build.client.as_secs_f64().max(1e-9),
    );

    // "Find images visually similar to this one" with increasing candidate
    // budgets — the accuracy/cost dial of Table 6.
    let query = &dataset.vectors[123];
    let truth = simcloud::datasets::parallel_knn_ground_truth(
        &dataset.vectors,
        std::slice::from_ref(query),
        &metric,
        30,
        8,
    );
    println!("— approximate 30-NN at increasing candidate budgets —");
    println!(
        "{:>10} {:>10} {:>12} {:>10}",
        "CandSize", "recall %", "overall s", "kB moved"
    );
    for frac in [0.0005, 0.005, 0.05] {
        let cand = ((n as f64 * frac) as usize).max(30);
        let (res, costs) = cloud.knn_approx(query, 30, cand).expect("knn");
        println!(
            "{:>10} {:>10.1} {:>12.4} {:>10.1}",
            cand,
            truth.recall(0, &res),
            costs.overall().as_secs_f64(),
            costs.communication_kb()
        );
    }

    let (entries, leaves, depth) = cloud.server_info().expect("info");
    println!(
        "\nserver state: {entries} sealed descriptors in {leaves} Voronoi cells (depth {depth})"
    );
    simcloud::storage::FileEnv::remove_sidecars(&store_path);
    let _ = std::fs::remove_file(store_path);
}
