//! Reproduces the paper's Figures 2 and 3: recursive Voronoi partitioning
//! and the dynamic cell tree, on a 2-D point set small enough to print.
//!
//! ```sh
//! cargo run --example voronoi_demo
//! ```

use simcloud::prelude::*;
use simcloud_mindex::{IndexEntry, MIndex, Routing};
use simcloud_storage::MemoryStore;

fn main() {
    // Four pivots in the unit square, like the paper's Figure 2.
    let pivots = [
        Vector::new(vec![0.2, 0.8]), // p1
        Vector::new(vec![0.8, 0.8]), // p2
        Vector::new(vec![0.2, 0.2]), // p3
        Vector::new(vec![0.8, 0.2]), // p4
    ];

    // A 12x12 grid of points; each is assigned to its closest pivot
    // (first level) and second-closest (second level).
    println!("Figure 2a — first-level Voronoi cells (closest pivot):\n");
    let grid = 12;
    let assignment = |x: f64, y: f64| -> (usize, usize) {
        let p = Vector::new(vec![x as f32, y as f32]);
        let mut ds: Vec<(usize, f64)> = pivots
            .iter()
            .enumerate()
            .map(|(i, pv)| (i, L2.distance(&p, pv)))
            .collect();
        ds.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        (ds[0].0, ds[1].0)
    };
    for gy in (0..grid).rev() {
        let mut line = String::new();
        for gx in 0..grid {
            let (c1, _) = assignment(gx as f64 / (grid - 1) as f64, gy as f64 / (grid - 1) as f64);
            line.push(char::from_digit(c1 as u32 + 1, 10).unwrap());
            line.push(' ');
        }
        println!("  {line}");
    }

    println!("\nFigure 2b — second-level cells C_(i,j) (closest, second-closest):\n");
    for gy in (0..grid).rev() {
        let mut line = String::new();
        for gx in 0..grid {
            let (c1, c2) = assignment(gx as f64 / (grid - 1) as f64, gy as f64 / (grid - 1) as f64);
            line.push_str(&format!("{}{} ", c1 + 1, c2 + 1));
        }
        println!("  {line}");
    }

    // Figure 3: the dynamic cell tree. Index 600 random points with a tiny
    // bucket capacity so splits happen, then dump the tree.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let cfg = MIndexConfig {
        num_pivots: 4,
        max_level: 3,
        bucket_capacity: 60,
        strategy: RoutingStrategy::Distances,
    };
    let mut index = MIndex::new(cfg, MemoryStore::new()).expect("config");
    for i in 0..600u64 {
        let p = Vector::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
        let ds: Vec<f64> = pivots.iter().map(|pv| L2.distance(&p, pv)).collect();
        index
            .insert(IndexEntry::new(i, Routing::from_distances(&ds), vec![]))
            .expect("insert");
    }
    println!("\nFigure 3 — dynamic cell tree after 600 inserts (capacity 60):\n");
    print!("{}", index.render_tree());
    let shape = index.shape();
    println!(
        "\n{} leaves, {} internal cells, depth {} — cells split only where data\nconcentrates (the dynamic M-Index behaviour of §4.1).",
        shape.leaves, shape.internal, shape.max_depth
    );
}
