//! Outsourced similarity search over sensitive biomedical data — the
//! paper's motivating scenario ("users might not want to expose all their
//! data which might be sensitive (e.g. medicine data)", §1).
//!
//! A lab outsources a lymphoma gene-expression matrix (HUMAN stand-in) to
//! an untrusted cloud, then clinicians run "find expression profiles
//! similar to this patient" queries. The demo contrasts what the
//! *authorized* client gets with what the *server* (and thus an attacker
//! who compromises it) ever sees.
//!
//! ```sh
//! cargo run --release --example gene_expression_search
//! ```

use simcloud::prelude::*;

fn main() {
    // The lab's sensitive matrix: 1,500 patients x 96 conditions.
    let dataset = simcloud::datasets::human_like(2024, Some(1500));
    let data = &dataset.vectors;
    println!("collection: {}\n", dataset.summary_row());

    // Key generation and deployment (50 pivots, paper Table 2 HUMAN row).
    let (key, _master) = SecretKey::generate(data, 50, &L1, PivotSelection::Random, 99);
    let mut cfg = MIndexConfig::human();
    cfg.num_pivots = 50;
    let mut cloud = simcloud::core::in_process(
        key.clone(),
        L1,
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .expect("config");

    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v))
        .collect();
    for chunk in objects.chunks(1000) {
        cloud.insert_bulk(chunk).expect("insert");
    }

    // A clinician queries with a new patient profile (held-out mixture of
    // two indexed profiles — similar but not identical to the collection).
    let query = {
        let a = data[3].as_slice();
        let b = data[700].as_slice();
        Vector::new(
            a.iter()
                .zip(b)
                .map(|(x, y)| 0.7 * x + 0.3 * y)
                .collect::<Vec<f32>>(),
        )
    };

    println!("— authorized clinician: 10 most similar expression profiles —");
    let (neighbors, costs) = cloud.knn_approx(&query, 10, 300).expect("knn");
    for (id, d) in &neighbors {
        println!("  patient {id}  L1 distance {d:.2}");
    }
    println!(
        "\ncosts: client {:.4} s (decrypt {:.4} s) | server {:.4} s | {:.1} kB\n",
        costs.client.as_secs_f64(),
        costs.decryption.as_secs_f64(),
        costs.server.as_secs_f64(),
        costs.communication_kb()
    );

    // What the server sees (paper §4.3): pivot permutations/distances and
    // sealed blobs. Demonstrate by sealing one profile and showing the
    // ciphertext tells nothing, while the wrong key cannot open it.
    println!("— what the untrusted server holds —");
    let mut plain = Vec::new();
    data[0].encode(&mut plain);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let sealed = key.cipher().seal(&plain, key.mode(), &mut rng);
    println!(
        "  profile 0: {} plaintext bytes -> {} sealed bytes (AES-CTR + HMAC)",
        plain.len(),
        sealed.len()
    );
    println!(
        "  first sealed bytes: {:02x?}...",
        &sealed[..12.min(sealed.len())]
    );

    let attacker_data = simcloud::datasets::human_like(666, Some(100));
    let (attacker_key, _) =
        SecretKey::generate(&attacker_data.vectors, 50, &L1, PivotSelection::Random, 666);
    match attacker_key.cipher().unseal(&sealed) {
        Err(e) => println!("  attacker with wrong key: {e}"),
        Ok(_) => unreachable!("HMAC must reject a wrong key"),
    }

    // Recall sanity: how good was the approximate answer?
    let truth = simcloud::datasets::parallel_knn_ground_truth(data, &[query], &L1, 10, 4);
    println!(
        "\napproximate answer recall vs. exact 10-NN: {:.1} %",
        truth.recall(0, &neighbors)
    );
}
