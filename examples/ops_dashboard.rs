//! Live ops console against a running similarity cloud.
//!
//! The ops surface (wire v2 `Health` / `MetricsSnapshot`) is served from
//! pre-aggregated atomics — never from under the index write lock — so an
//! operator's poll loop keeps answering while bulk inserts and queries
//! hammer the same server. And because both requests are parameterless
//! and the exposition is plaintext, the probe below holds **no key
//! material at all**: the monitoring plane sees operational shape
//! (latencies, counters, phase breakdowns), never content — exactly the
//! trust split the paper's outsourcing model wants.
//!
//! A 2-shard deployment is served over TCP; a data owner inserts and then
//! queries from one thread while this keyless probe polls health and
//! metrics, rendering a compact dashboard tick by tick and the full
//! exposition (histograms, per-phase breakdowns, worst-N slow queries)
//! once the workload completes.
//!
//! ```sh
//! cargo run --release --example ops_dashboard
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use simcloud::core::connect_tcp;
use simcloud::core::protocol::{Request, Response};
use simcloud::prelude::*;
use simcloud::shard::serve_tcp_concurrent_sharded;
use simcloud::transport::{TcpTransport, Transport};

/// Keyless monitoring connection: short deadlines, no retries — an ops
/// probe should report "down" fast, not mask an outage by retrying.
fn probe(addr: std::net::SocketAddr) -> TcpTransport {
    TcpTransport::connect_with(
        addr,
        TcpClientConfig {
            read_timeout: Some(Duration::from_secs(2)),
            request_deadline: Some(Duration::from_secs(2)),
            retry: RetryPolicy::none(),
            ..TcpClientConfig::default()
        },
    )
    .expect("probe connect")
}

fn health(t: &mut TcpTransport) -> (u8, u64, u32, u64) {
    let bytes = t.round_trip(&Request::Health.encode()).expect("health");
    match Response::decode(&bytes).expect("decode") {
        Response::Health {
            status,
            entries,
            shards,
            uptime_nanos,
            ..
        } => (status, entries, shards, uptime_nanos),
        other => panic!("expected Health, got {other:?}"),
    }
}

fn metrics(t: &mut TcpTransport) -> String {
    let bytes = t
        .round_trip(&Request::MetricsSnapshot.encode())
        .expect("metrics");
    match Response::decode(&bytes).expect("decode") {
        Response::MetricsSnapshot(text) => text,
        other => panic!("expected MetricsSnapshot, got {other:?}"),
    }
}

/// The exposition line for one metric, e.g. `metric_line(&text,
/// "histogram server.request ")`.
fn metric_line<'a>(text: &'a str, prefix: &str) -> Option<&'a str> {
    text.lines().find(|l| l.starts_with(prefix))
}

/// A `key=value` field out of a histogram/slow-query line.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
        .unwrap_or("-")
}

fn micros(nanos_field: &str) -> String {
    nanos_field
        .parse::<u64>()
        .map_or_else(|_| "-".into(), |n| format!("{}us", n / 1_000))
}

fn main() {
    let dataset = simcloud::datasets::yeast_like(23, Some(1000));
    let data = dataset.vectors.clone();
    let (key, _) = SecretKey::generate(&data, 30, &L1, PivotSelection::Random, 3);
    let mut cfg = MIndexConfig::yeast();
    cfg.num_pivots = 30;

    let server = Arc::new(
        ShardedCloudServer::new(cfg, Box::new(HashRouter), memory_stores(2)).expect("valid config"),
    );
    let handle = serve_tcp_concurrent_sharded(Arc::clone(&server)).expect("tcp server");
    let addr = handle.addr();
    println!("similarity cloud (2 shards) listening on {addr}\n");

    // The workload: one data owner inserting in bulk, then querying —
    // on purpose concurrent with the poll loop below.
    let done = Arc::new(AtomicBool::new(false));
    let owner_done = Arc::clone(&done);
    let owner_data = data.clone();
    let owner = std::thread::spawn(move || {
        let mut client = connect_tcp(key, L1, addr, ClientConfig::distances())
            .expect("owner connect")
            .with_rng_seed(4);
        let objects: Vec<(ObjectId, Vector)> = owner_data
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| (ObjectId(i as u64), v))
            .collect();
        for chunk in objects.chunks(100) {
            client.insert_bulk(chunk).expect("insert");
            std::thread::sleep(Duration::from_millis(30));
        }
        for qi in 0..30 {
            client
                .knn_approx(&owner_data[qi * 31 % owner_data.len()], 30, 600)
                .expect("knn");
        }
        owner_done.store(true, Ordering::Release);
    });

    // The ops console: a keyless poll loop. Each tick is two round
    // trips (Health + MetricsSnapshot), answered without touching the
    // index lock the inserts above are busy holding.
    let mut ops = probe(addr);
    println!(
        "{:>5}  {:>8}  {:>7}  {:>9}  {:>12}  {:>12}",
        "tick", "uptime", "entries", "requests", "knn p95", "insert p95"
    );
    let mut tick = 0u32;
    while !done.load(Ordering::Acquire) && tick < 100 {
        let (status, entries, shards, uptime) = health(&mut ops);
        assert_eq!(status, 0, "server reports unhealthy");
        assert_eq!(shards, 2);
        let text = metrics(&mut ops);
        let requests = metric_line(&text, "counter server.requests ")
            .and_then(|l| l.rsplit(' ').next())
            .unwrap_or("-");
        let knn_p95 = metric_line(&text, "histogram server.request ")
            .map_or_else(|| "-".into(), |l| micros(field(l, "p95=")));
        let ins_p95 = metric_line(&text, "histogram server.phase_insert ")
            .map_or_else(|| "-".into(), |l| micros(field(l, "p95=")));
        println!(
            "{tick:>5}  {:>6}ms  {entries:>7}  {requests:>9}  {knn_p95:>12}  {ins_p95:>12}",
            uptime / 1_000_000
        );
        tick += 1;
        std::thread::sleep(Duration::from_millis(100));
    }
    owner.join().expect("owner thread");

    // Final snapshot: the full exposition an operator (or a scraper)
    // would ingest — counters, gauges, per-phase latency histograms for
    // server/shard layers, and the worst-N slow queries with their
    // phase breakdowns.
    let text = metrics(&mut ops);
    println!("\n— full exposition ({} bytes) —\n{text}", text.len());
    if let Some(worst) = metric_line(&text, "slow_query rank=1 ") {
        println!(
            "slowest request: label={} total={} phases={}",
            field(worst, "label="),
            micros(field(worst, "total_nanos=")),
            field(worst, "phases=")
        );
    }

    drop(ops);
    handle.shutdown();
}
