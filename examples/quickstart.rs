//! Quickstart: the full Encrypted M-Index life cycle in one file.
//!
//! Walks the paper's Figures 4 and 5: the data owner derives a secret key
//! (pivots + cipher key), outsources the encrypted collection to the
//! similarity cloud, and an authorized client runs range and k-NN queries —
//! printing the cost decomposition the paper's evaluation tables use.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use simcloud::prelude::*;

fn main() {
    // --- Data owner -------------------------------------------------------
    // A small gene-expression-like collection (YEAST stand-in, 800 rows).
    let dataset = simcloud::datasets::yeast_like(42, Some(800));
    let data = &dataset.vectors;
    println!("dataset: {}", dataset.summary_row());

    // Secret key = pivot set + AES key (paper §4.2). The master secret is
    // what the owner hands to authorized clients.
    let (key, master) = SecretKey::generate(data, 30, &L1, PivotSelection::Random, 7);
    println!(
        "secret key: {} pivots + AES-128 (master secret {} bytes)\n",
        key.pivots().len(),
        master.len()
    );

    // --- Deploy the similarity cloud ---------------------------------------
    // In-process server with a modelled loopback network; `over_tcp` gives
    // the real two-process deployment instead.
    let mut cfg = MIndexConfig::yeast();
    cfg.num_pivots = 30;
    let mut cloud =
        simcloud::core::in_process(key, L1, cfg, MemoryStore::new(), ClientConfig::distances())
            .expect("valid configuration");

    // --- Construction phase (Alg. 1, Fig. 4) -------------------------------
    // Client computes object-pivot distances, encrypts each object, ships
    // {routing, ciphertext} in bulks of 1000.
    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v))
        .collect();
    let mut build_costs = CostReport::default();
    for chunk in objects.chunks(1000) {
        build_costs.merge(&cloud.insert_bulk(chunk).expect("insert"));
    }
    println!("— construction (encrypted, {} objects) —", objects.len());
    println!("{build_costs}\n");

    let (entries, leaves, depth) = cloud.server_info().expect("info");
    println!("server cell tree: {entries} entries in {leaves} leaf cells, depth {depth}\n");

    // --- Search phase (Alg. 2, Fig. 5) --------------------------------------
    let query = &data[17];

    // Approximate 10-NN with a 200-candidate budget: the server returns 200
    // pre-ranked sealed objects, the client decrypts and refines.
    let (neighbors, costs) = cloud.knn_approx(query, 10, 200).expect("knn");
    println!("— approximate 10-NN (CandSize 200) —");
    for (id, d) in &neighbors[..5.min(neighbors.len())] {
        println!("  {id}  d = {d:.3}");
    }
    println!("{costs}\n");

    // Precise range query: all objects within radius 8 — exact despite the
    // encryption (candidates are guaranteed complete; paper Alg. 3).
    let (in_range, costs) = cloud.range(query, 8.0).expect("range");
    println!("— precise range query R(q, 8.0) —");
    println!("  {} objects within radius", in_range.len());
    println!("{costs}\n");

    // Precise k-NN: approximate pass estimates the k-th distance, a range
    // query completes it (paper §4.2).
    let (exact, costs) = cloud.knn_precise(query, 5).expect("knn precise");
    println!("— precise 5-NN —");
    for (id, d) in &exact {
        println!("  {id}  d = {d:.3}");
    }
    println!("{costs}");
    println!(
        "\ntotal over the session: {:.3} s overall, {:.1} kB moved",
        cloud.total_costs().overall().as_secs_f64(),
        cloud.total_costs().communication_kb()
    );
}
