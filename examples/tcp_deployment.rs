//! Two-process deployment over real TCP — the paper's prototype setup
//! (§4.4: "Both client and server are … processes communicating via
//! TCP/IP"; §5.1: both on one machine, loopback interface) — extended with
//! the concurrent serving mode: one shared `CloudServer` accepts any number
//! of connections and processes their requests in parallel (searches share
//! the index read lock), and the batch API ships many k-NN queries in one
//! round trip.
//!
//! The server thread owns the M-Index and no key material; the clients own
//! the secret key. Costs are attributed from measured wall time: the server
//! stamps its processing time into each response, the client assigns the
//! rest of the round trip to communication.
//!
//! ```sh
//! cargo run --release --example tcp_deployment
//! ```

use std::sync::Arc;
use std::time::Duration;

use simcloud::core::{connect_tcp, connect_tcp_with, serve_tcp_concurrent_with, CloudServer};
use simcloud::prelude::*;
use simcloud::transport::Transport;

fn main() {
    let dataset = simcloud::datasets::yeast_like(17, Some(1200));
    let data = &dataset.vectors;
    let (key, _) = SecretKey::generate(data, 30, &L1, PivotSelection::Random, 3);
    let mut cfg = MIndexConfig::yeast();
    cfg.num_pivots = 30;

    // Concurrent serving mode: the server is shared, the accept loop puts
    // no lock around it — request processing from different connections
    // overlaps.
    // Production-shaped serving: per-connection read deadline, an idle
    // timeout that reaps silent connections, a connection cap that sheds
    // excess load with a typed refusal instead of queueing it.
    let server = Arc::new(CloudServer::new(cfg, MemoryStore::new()).expect("valid config"));
    let handle = serve_tcp_concurrent_with(
        Arc::clone(&server),
        ServeOptions {
            read_timeout: Some(Duration::from_secs(10)),
            idle_timeout: Some(Duration::from_secs(60)),
            max_connections: Some(64),
            ..ServeOptions::default()
        },
    )
    .expect("tcp server");
    println!(
        "similarity cloud listening on {} (concurrent mode)",
        handle.addr()
    );

    // Data owner connection, fault-tolerant: socket timeouts, a hard
    // per-request deadline, retry/reconnect with capped backoff for
    // idempotent requests. Inserts are never auto-retried — an interrupted
    // bulk surfaces as ClientError::InsertInterrupted and would be resumed
    // with insert_bulk_resume.
    let tcp_config = TcpClientConfig {
        read_timeout: Some(Duration::from_secs(10)),
        retry: RetryPolicy::default(),
        ..TcpClientConfig::default()
    };
    let mut owner = connect_tcp_with(
        key.clone(),
        L1,
        handle.addr(),
        ClientConfig::distances().with_request_deadline(Duration::from_secs(30)),
        tcp_config,
    )
    .expect("connect")
    .with_rng_seed(4);
    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v))
        .collect();
    let mut build = CostReport::default();
    for chunk in objects.chunks(1000) {
        build.merge(&owner.insert_bulk(chunk).expect("insert"));
    }
    println!("\n— construction over TCP ({} objects) —", objects.len());
    println!("{build}");

    // Three authorized clients query concurrently, each over its own
    // connection — the paper's "independent clients" setting.
    println!("\n— 3 concurrent clients × 10 queries, approximate 30-NN, CandSize 600 —");
    let addr = handle.addr();
    std::thread::scope(|scope| {
        for c in 0..3usize {
            let key = key.clone();
            scope.spawn(move || {
                let mut client = connect_tcp(key, L1, addr, ClientConfig::distances())
                    .expect("connect")
                    .with_rng_seed(5 + c as u64);
                let mut total = CostReport::default();
                for qi in 0..10 {
                    let (_, costs) = client
                        .knn_approx(&data[(c * 409 + qi * 31) % data.len()], 30, 600)
                        .expect("knn");
                    total.merge(&costs);
                }
                println!("client {c}: {}", total.averaged(10));
            });
        }
    });
    println!(
        "server processed {} candidates across all connections",
        server.total_search_stats().candidates
    );

    // Batch API: the same 10 queries in ONE round trip — per-message
    // latency is paid once instead of ten times.
    println!("\n— batch API: 10 queries in one round trip —");
    let queries: Vec<Vector> = (0..10)
        .map(|qi| data[qi * 31 % data.len()].clone())
        .collect();
    let before = owner.transport().stats().requests;
    let (answers, costs) = owner.knn_approx_batch(&queries, 30, 600).expect("batch");
    let answered = answers.iter().filter(|r| r.is_ok()).count();
    println!(
        "{answered} of {} queries answered in {} round trip(s); avg per query: {}",
        answers.len(),
        owner.transport().stats().requests - before,
        costs.averaged(answers.len() as u32)
    );
    let stats = owner.transport().stats();
    println!(
        "owner transport: {} requests, {} retries, {} reconnects (clean wire)",
        stats.requests, stats.retries, stats.reconnects
    );

    drop(owner);
    handle.shutdown();
}
