//! Two-process deployment over real TCP — the paper's prototype setup
//! (§4.4: "Both client and server are … processes communicating via
//! TCP/IP"; §5.1: both on one machine, loopback interface).
//!
//! The server thread owns the M-Index and no key material; the client owns
//! the secret key. Costs are attributed from measured wall time: the server
//! stamps its processing time into each response, the client assigns the
//! rest of the round trip to communication.
//!
//! ```sh
//! cargo run --release --example tcp_deployment
//! ```

use simcloud::prelude::*;
use simcloud::transport::Transport;

fn main() {
    let dataset = simcloud::datasets::yeast_like(17, Some(1200));
    let data = &dataset.vectors;
    let (key, _) = SecretKey::generate(data, 30, &L1, PivotSelection::Random, 3);
    let mut cfg = MIndexConfig::yeast();
    cfg.num_pivots = 30;

    // Server thread + connected client.
    let (mut cloud, server) =
        simcloud::core::over_tcp(key, L1, cfg, MemoryStore::new(), ClientConfig::distances())
            .expect("tcp deployment");
    println!("similarity cloud listening on {}", server.addr());

    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v))
        .collect();
    let mut build = CostReport::default();
    for chunk in objects.chunks(1000) {
        build.merge(&cloud.insert_bulk(chunk).expect("insert"));
    }
    println!("\n— construction over TCP ({} objects) —", objects.len());
    println!("{build}");

    println!("\n— 20 queries, approximate 30-NN, CandSize 600 —");
    let mut total = CostReport::default();
    for qi in 0..20 {
        let (_, costs) = cloud
            .knn_approx(&data[qi * 31 % data.len()], 30, 600)
            .expect("knn");
        total.merge(&costs);
    }
    let avg = total.averaged(20);
    println!("{avg}");
    println!(
        "\nround trips: {} | measured comm time is real socket time here,\nnot a model — compare with the in-process numbers from `quickstart`",
        cloud.transport().stats().requests
    );
    drop(cloud);
    server.shutdown();
}
