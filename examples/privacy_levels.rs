//! The paper's taxonomy of privacy levels (§2.3), executable.
//!
//! Walks the four levels on the same small collection, printing what the
//! server stores and what it costs — level by level:
//!
//! 1. no encryption → plain M-Index, server sees everything
//! 2. raw-data encryption → MS objects plaintext, payloads sealed
//! 3. MS-object encryption → the Encrypted M-Index (the paper's system)
//! 4. distribution hiding → level 3 plus the keyed monotone distance
//!    transformation (paper §6 future work)
//!
//! ```sh
//! cargo run --release --example privacy_levels
//! ```

use simcloud::prelude::*;

fn main() {
    let dataset = simcloud::datasets::yeast_like(5, Some(1000));
    let data = &dataset.vectors;
    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v))
        .collect();
    let query = &data[10];
    let truth = simcloud::datasets::parallel_knn_ground_truth(
        data,
        std::slice::from_ref(query),
        &L1,
        10,
        4,
    );
    let mut cfg = MIndexConfig::yeast();
    cfg.num_pivots = 30;

    // ---- Level 1: no encryption -------------------------------------------
    {
        let pivots = simcloud::metric::select_pivots(data, 30, &L1, PivotSelection::Random, 1);
        let mut plain = PlainMIndex::new(cfg, pivots, L1, MemoryStore::new()).expect("config");
        for (id, v) in &objects {
            plain.insert(*id, v).expect("insert");
        }
        let t = std::time::Instant::now();
        let (res, _) = plain.knn_approx(query, 10, 300).expect("knn");
        println!("LEVEL 1 — no encryption (plain M-Index)");
        println!("  server sees : raw vectors, pivots, all distances");
        println!("  server does : the entire search");
        println!(
            "  10-NN in {:.4} s, recall {:.0} %\n",
            t.elapsed().as_secs_f64(),
            truth.recall(0, &res)
        );
    }

    // ---- Level 2: raw data encrypted, MS objects plain ---------------------
    {
        println!("LEVEL 2 — raw-data encryption only");
        println!("  server sees : MS objects (plaintext descriptors) + index");
        println!("  raw files   : AES-sealed in a separate raw-data store");
        println!("  search      : identical to level 1 (descriptors are public);");
        println!("                only the final raw-object fetch needs the key.");
        println!("  caveat (§2.3): unusable when descriptors are the sensitive data\n");
    }

    // ---- Level 3: the Encrypted M-Index ------------------------------------
    {
        let (key, _) = SecretKey::generate(data, 30, &L1, PivotSelection::Random, 2);
        let mut cloud =
            simcloud::core::in_process(key, L1, cfg, MemoryStore::new(), ClientConfig::distances())
                .expect("config");
        for chunk in objects.chunks(1000) {
            cloud.insert_bulk(chunk).expect("insert");
        }
        let (res, costs) = cloud.knn_approx(query, 10, 300).expect("knn");
        println!("LEVEL 3 — Encrypted M-Index (the paper's system)");
        println!("  server sees : pivot permutations/distances + sealed objects");
        println!("  server does : cell pruning, ranking, pivot filtering");
        println!("  client does : pivot distances, decryption, refinement");
        println!(
            "  10-NN in {:.4} s overall ({:.1} kB moved), recall {:.0} %\n",
            costs.overall().as_secs_f64(),
            costs.communication_kb(),
            truth.recall(0, &res)
        );
    }

    // ---- Level 4: + hide the distance distribution -------------------------
    {
        let (key, _) = SecretKey::generate(data, 30, &L1, PivotSelection::Random, 3);
        let transform = DistanceTransform::from_seed(77, 200.0, 8);
        println!("LEVEL 4 — + keyed monotone distance transformation (paper §6)");
        println!(
            "  transform   : piecewise-linear, slopes in [0.5, 2.0], inflation ≤ {:.1}x",
            transform.inflation_bound()
        );
        let mut cloud = simcloud::core::in_process(
            key,
            L1,
            cfg,
            MemoryStore::new(),
            ClientConfig::distances().with_transform(transform),
        )
        .expect("config");
        for chunk in objects.chunks(1000) {
            cloud.insert_bulk(chunk).expect("insert");
        }
        let (res, costs) = cloud.range(query, 30.0).expect("range");
        println!("  server sees : *transformed* distances — values & distribution hidden");
        println!(
            "  range query : {} exact results, {} candidates shipped ({:.1} kB)",
            res.len(),
            costs.candidates,
            costs.communication_kb()
        );
        println!("  price       : larger candidate sets (pruning works on a distorted scale)");
    }
}
