//! Multi-shard TCP deployment: one `ShardedCloudServer` (4 independent
//! M-Index shards, hash-routed) behind a concurrent TCP accept loop, driven
//! by the **unmodified** TCP client — the wire protocol is byte-compatible
//! with the single-index server.
//!
//! The demo shows the two properties sharding buys:
//!
//! 1. inserts from concurrent connections land on different shards and
//!    only block 1/N of the key space (each shard has its own write lock);
//! 2. searches scatter to all shards and gather into one candidate list —
//!    with answers identical to a single-index deployment over the same
//!    data.
//!
//! ```sh
//! cargo run --release --example sharded_deployment
//! ```

use std::sync::Arc;

use simcloud::core::{connect_tcp, serve_tcp_concurrent, CloudServer};
use simcloud::prelude::*;
use simcloud::shard::{memory_stores, serve_tcp_concurrent_sharded};

fn main() {
    let dataset = simcloud::datasets::yeast_like(17, Some(1200));
    let data = &dataset.vectors;
    let (key, _) = SecretKey::generate(data, 30, &L1, PivotSelection::Random, 3);
    let mut cfg = MIndexConfig::yeast();
    cfg.num_pivots = 30;

    // The sharded similarity cloud: 4 shards, each its own store + lock.
    let sharded = Arc::new(
        ShardedCloudServer::new(cfg, Box::new(HashRouter), memory_stores(4)).expect("valid config"),
    );
    let handle = serve_tcp_concurrent_sharded(Arc::clone(&sharded)).expect("tcp server");
    println!(
        "sharded similarity cloud listening on {} ({} shards, {} router)",
        handle.addr(),
        sharded.index().shard_count(),
        sharded.index().router_name()
    );

    // A single-index twin over the same data for the identity check.
    let single = Arc::new(CloudServer::new(cfg, MemoryStore::new()).expect("valid config"));
    let single_handle = serve_tcp_concurrent(Arc::clone(&single)).expect("tcp server");

    // Four owner connections outsource disjoint quarters of the collection
    // concurrently — each insert takes only its target shard's write lock.
    let addr = handle.addr();
    let quarter = data.len() / 4;
    std::thread::scope(|scope| {
        for c in 0..4usize {
            let key = key.clone();
            scope.spawn(move || {
                let mut owner = connect_tcp(key, L1, addr, ClientConfig::distances())
                    .expect("connect")
                    .with_rng_seed(4 + c as u64);
                let objects: Vec<(ObjectId, Vector)> = data[c * quarter..(c + 1) * quarter]
                    .iter()
                    .cloned()
                    .enumerate()
                    .map(|(i, v)| (ObjectId((c * quarter + i) as u64), v))
                    .collect();
                for chunk in objects.chunks(250) {
                    owner.insert_bulk(chunk).expect("insert");
                }
            });
        }
    });
    println!("\n— per-shard occupancy after 4 concurrent insert connections —");
    for i in 0..sharded.index().shard_count() {
        let len = sharded.index().shard(i).map_or(0, |s| s.len());
        println!("  shard {i}: {len} entries");
    }

    // Build the single-index twin (one connection suffices).
    let mut single_owner = connect_tcp(
        key.clone(),
        L1,
        single_handle.addr(),
        ClientConfig::distances(),
    )
    .expect("connect")
    .with_rng_seed(9);
    let objects: Vec<(ObjectId, Vector)> = data[..quarter * 4]
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v))
        .collect();
    for chunk in objects.chunks(1000) {
        single_owner.insert_bulk(chunk).expect("insert");
    }

    // Scatter-gather search through the unmodified client, checked
    // byte-for-byte against the single-index answer (collection-covering
    // candidate budget = the provably-identical regime).
    println!("\n— 30-NN through the unmodified client, sharded vs single —");
    let mut sharded_client = connect_tcp(key.clone(), L1, addr, ClientConfig::distances())
        .expect("connect")
        .with_rng_seed(11);
    let n = quarter * 4;
    let mut identical = 0;
    for qi in 0..10 {
        let q = &data[qi * 97 % n];
        let (a, costs) = sharded_client.knn_approx(q, 30, n).expect("sharded knn");
        let (b, _) = single_owner.knn_approx(q, 30, n).expect("single knn");
        assert_eq!(a, b, "sharded answer diverged for query {qi}");
        identical += 1;
        if qi == 0 {
            println!(
                "  query 0: {} candidates merged from 4 shards, {} decrypted",
                costs.candidates, costs.decrypted
            );
        }
    }
    println!("  {identical}/10 answers byte-identical to the single index");
    println!(
        "\nserver-side totals: {} (summed across shards)",
        sharded.total_search_stats()
    );

    drop(sharded_client);
    drop(single_owner);
    handle.shutdown();
    single_handle.shutdown();
}
