//! Property tests: every shipped metric satisfies the metric postulates the
//! paper relies on (§1): non-negativity, identity of indiscernibles,
//! symmetry, triangle inequality. Pruning rules in the M-Index are *only*
//! correct if these hold, so they are the foundational invariants.
//!
//! Case counts are pinned via `ProptestConfig::with_cases` and the proptest
//! harness seeds each test from a fixed constant hashed with the test name
//! (crates/shims/README.md), so CI runs are bit-identical to local runs.

use proptest::prelude::*;
use simcloud_metric::{
    permutation_from_distances, Angular, CombinedMetric, EditDistance, Hamming, Linf, Lp, Metric,
    Scaled, Vector, L1, L2,
};

const EPS: f64 = 1e-9;

fn vec_strategy(dim: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-1000.0f32..1000.0, dim).prop_map(Vector::new)
}

fn check_postulates<M: Metric<Vector>>(
    m: &M,
    a: &Vector,
    b: &Vector,
    c: &Vector,
) -> Result<(), TestCaseError> {
    let dab = m.distance(a, b);
    let dba = m.distance(b, a);
    let dac = m.distance(a, c);
    let dcb = m.distance(c, b);
    // non-negativity
    prop_assert!(dab >= 0.0);
    // symmetry
    prop_assert!((dab - dba).abs() <= EPS * (1.0 + dab.abs()));
    // identity
    prop_assert!(m.distance(a, a) <= EPS);
    // triangle inequality (allow fp slack proportional to magnitude)
    let slack = EPS * (1.0 + dac.abs() + dcb.abs());
    prop_assert!(dab <= dac + dcb + slack);
    Ok(())
}

macro_rules! postulate_tests {
    ($name:ident, $metric:expr, $dim:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]
            #[test]
            fn $name(a in vec_strategy($dim), b in vec_strategy($dim), c in vec_strategy($dim)) {
                check_postulates(&$metric, &a, &b, &c)?;
            }
        }
    };
}

postulate_tests!(l1_is_a_metric, L1, 17);
postulate_tests!(l2_is_a_metric, L2, 8);
postulate_tests!(linf_is_a_metric, Linf, 5);
postulate_tests!(l3_is_a_metric, Lp::new(3.0), 6);
postulate_tests!(hamming_is_a_metric, Hamming, 12);
postulate_tests!(scaled_l2_is_a_metric, Scaled::new(L2, 2.5), 5);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// Angular distance needs a slightly looser identity tolerance (acos
    /// near 1.0 is numerically sensitive) but must satisfy symmetry and the
    /// triangle inequality tightly.
    #[test]
    fn angular_is_a_metric(
        a in vec_strategy(6), b in vec_strategy(6), c in vec_strategy(6),
    ) {
        let m = Angular;
        let dab = m.distance(&a, &b);
        let dba = m.distance(&b, &a);
        let dac = m.distance(&a, &c);
        let dcb = m.distance(&c, &b);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&dab));
        prop_assert!((dab - dba).abs() <= 1e-9);
        prop_assert!(m.distance(&a, &a) <= 1e-4, "self distance {}", m.distance(&a, &a));
        prop_assert!(dab <= dac + dcb + 1e-7);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn combined_is_a_metric(
        a in vec_strategy(10),
        b in vec_strategy(10),
        c in vec_strategy(10),
    ) {
        let m = CombinedMetric::new(vec![
            simcloud_metric::DescriptorBlock { start: 0, len: 4, p: 1.0, weight: 2.0 },
            simcloud_metric::DescriptorBlock { start: 4, len: 3, p: 2.0, weight: 1.5 },
            simcloud_metric::DescriptorBlock { start: 7, len: 3, p: 1.0, weight: 0.25 },
        ]);
        check_postulates(&m, &a, &b, &c)?;
    }

    #[test]
    fn edit_distance_is_a_metric(
        a in "[a-c]{0,12}",
        b in "[a-c]{0,12}",
        c in "[a-c]{0,12}",
    ) {
        let m = EditDistance;
        let dab = Metric::<str>::distance(&m, &a, &b);
        let dba = Metric::<str>::distance(&m, &b, &a);
        let dac = Metric::<str>::distance(&m, &a, &c);
        let dcb = Metric::<str>::distance(&m, &c, &b);
        prop_assert!(dab >= 0.0);
        prop_assert_eq!(dab, dba);
        prop_assert_eq!(Metric::<str>::distance(&m, &a, &a), 0.0);
        prop_assert!(dab <= dac + dcb);
        // identity of indiscernibles: zero distance implies equality
        if dab == 0.0 { prop_assert_eq!(&a, &b); }
    }

    /// The permutation derived from distances must order pivots so that
    /// distances along the permutation are non-decreasing, and must be a
    /// valid permutation of indexes.
    #[test]
    fn permutation_is_sorted_and_complete(ds in proptest::collection::vec(0.0f64..100.0, 1..40)) {
        let p = permutation_from_distances(&ds);
        prop_assert_eq!(p.len(), ds.len());
        let mut seen = vec![false; ds.len()];
        for w in p.order().windows(2) {
            let (i, j) = (w[0] as usize, w[1] as usize);
            prop_assert!(ds[i] < ds[j] || (ds[i] == ds[j] && w[0] < w[1]));
        }
        for &i in p.order() {
            prop_assert!(!seen[i as usize], "duplicate index in permutation");
            seen[i as usize] = true;
        }
    }

    /// Lower-bound property that pivot filtering relies on (Alg. 3 line 6):
    /// for any pivot p, |d(q,p) − d(o,p)| ≤ d(q,o).
    #[test]
    fn pivot_filtering_lower_bound_holds(
        q in vec_strategy(9),
        o in vec_strategy(9),
        p in vec_strategy(9),
    ) {
        for m in [&L1 as &dyn Metric<Vector>, &L2, &Linf] {
            let lb = (m.distance(&q, &p) - m.distance(&o, &p)).abs();
            let d = m.distance(&q, &o);
            prop_assert!(lb <= d + EPS * (1.0 + d.abs()));
        }
    }
}
