//! Dense vector objects — the metric-space descriptors of the paper.
//!
//! All three evaluation datasets (YEAST 17-dim, HUMAN 96-dim, CoPhIR 280-dim)
//! are dense numeric vectors; we store components as `f32` (MPEG-7 visual
//! descriptors are small integers, gene-expression levels fit easily) and
//! compute distances in `f64` to avoid accumulation error.

use serde::{Deserialize, Serialize};

/// A dense metric-space object.
///
/// `Vector` is cheap to clone relative to distance computation and is the
/// payload type for the whole workspace: it is what clients encrypt, what the
/// datasets crate generates, and what metrics compare.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vector {
    components: Box<[f32]>,
}

impl Vector {
    /// Creates a vector from raw components.
    pub fn new(components: Vec<f32>) -> Self {
        Self {
            components: components.into_boxed_slice(),
        }
    }

    /// Creates the zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self::new(vec![0.0; dim])
    }

    /// Number of components.
    #[inline]
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// Read access to components.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.components
    }

    /// Mutable access to components (used by generators when post-processing
    /// e.g. quantizing descriptor blocks).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.components
    }

    /// Serialized size in bytes when encoded with [`Vector::encode`]:
    /// a `u32` length prefix plus 4 bytes per component.
    ///
    /// The paper's communication-cost tables count exact bytes on the wire;
    /// this is the plaintext size an MS object contributes before encryption
    /// padding.
    #[inline]
    pub fn encoded_len(&self) -> usize {
        4 + 4 * self.components.len()
    }

    /// Encodes into a compact little-endian byte representation, appending to
    /// `out`. Format: `u32` component count, then each component as `f32` LE.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.extend_from_slice(&(self.components.len() as u32).to_le_bytes());
        for c in self.components.iter() {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    /// Decodes a vector previously written by [`Vector::encode`]; returns the
    /// vector and the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), VectorDecodeError> {
        let Some((len_bytes, rest)) = buf.split_first_chunk::<4>() else {
            return Err(VectorDecodeError::Truncated);
        };
        let n = u32::from_le_bytes(*len_bytes) as usize;
        let Some(mut body) = 4usize.checked_mul(n).and_then(|need| rest.get(..need)) else {
            return Err(VectorDecodeError::Truncated);
        };
        let mut comps = Vec::with_capacity(n);
        while let Some((c, tail)) = body.split_first_chunk::<4>() {
            comps.push(f32::from_le_bytes(*c));
            body = tail;
        }
        Ok((Self::new(comps), 4 + 4 * n))
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        &self.components[i]
    }
}

impl From<Vec<f32>> for Vector {
    fn from(v: Vec<f32>) -> Self {
        Vector::new(v)
    }
}

impl From<&[f32]> for Vector {
    fn from(v: &[f32]) -> Self {
        Vector::new(v.to_vec())
    }
}

/// Errors decoding a [`Vector`] from bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorDecodeError {
    /// The buffer ended before the declared number of components.
    Truncated,
}

impl std::fmt::Display for VectorDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VectorDecodeError::Truncated => write!(f, "vector byte representation truncated"),
        }
    }
}

impl std::error::Error for VectorDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = Vector::new(vec![1.0, -2.5, 3.0]);
        assert_eq!(v.dim(), 3);
        assert_eq!(v[1], -2.5);
        assert_eq!(v.as_slice(), &[1.0, -2.5, 3.0]);
    }

    #[test]
    fn zeros_is_all_zero() {
        let v = Vector::zeros(5);
        assert_eq!(v.dim(), 5);
        assert!(v.as_slice().iter().all(|&c| c == 0.0));
    }

    #[test]
    fn encode_decode_round_trip() {
        let v = Vector::new(vec![0.25, -1.0, 42.0, f32::MIN_POSITIVE]);
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.encoded_len());
        let (back, used) = Vector::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, v);
    }

    #[test]
    fn decode_truncated_fails() {
        let v = Vector::new(vec![1.0, 2.0]);
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(
            Vector::decode(&buf[..buf.len() - 1]),
            Err(VectorDecodeError::Truncated)
        );
        assert_eq!(Vector::decode(&[1, 0]), Err(VectorDecodeError::Truncated));
    }

    #[test]
    fn decode_consumes_prefix_only() {
        let v = Vector::new(vec![7.0]);
        let mut buf = Vec::new();
        v.encode(&mut buf);
        buf.extend_from_slice(&[0xAB, 0xCD]);
        let (back, used) = Vector::decode(&buf).unwrap();
        assert_eq!(back, v);
        assert_eq!(used, buf.len() - 2);
    }

    #[test]
    fn mutation_via_slice() {
        let mut v = Vector::zeros(2);
        v.as_mut_slice()[0] = 9.0;
        assert_eq!(v[0], 9.0);
    }
}
