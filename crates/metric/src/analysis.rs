//! Distance-distribution analysis.
//!
//! Used to calibrate the synthetic stand-ins for the paper's datasets and to
//! sanity-check that an index's pruning has something to work with: a metric
//! space with high intrinsic dimensionality (concentrated distances) prunes
//! poorly regardless of index quality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metric;

/// Summary statistics of a sampled distance distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceStats {
    /// Number of sampled pairs.
    pub pairs: usize,
    /// Minimum sampled distance.
    pub min: f64,
    /// Maximum sampled distance.
    pub max: f64,
    /// Mean distance.
    pub mean: f64,
    /// Distance variance (population).
    pub variance: f64,
    /// Chávez et al. intrinsic dimensionality estimate `μ² / (2σ²)`.
    pub intrinsic_dim: f64,
}

/// Histogram of sampled pairwise distances with fixed-width bins.
#[derive(Debug, Clone)]
pub struct DistanceHistogram {
    bins: Vec<u64>,
    lo: f64,
    hi: f64,
    stats: DistanceStats,
}

impl DistanceHistogram {
    /// Samples `pairs` random object pairs (without replacement inside each
    /// pair) and builds a histogram with `bins` bins.
    pub fn sample<T, M: Metric<T>>(
        data: &[T],
        metric: &M,
        pairs: usize,
        bins: usize,
        seed: u64,
    ) -> Self {
        assert!(data.len() >= 2, "need at least two objects");
        assert!(bins >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let i = rng.gen_range(0..data.len());
            let mut j = rng.gen_range(0..data.len());
            while j == i {
                j = rng.gen_range(0..data.len());
            }
            ds.push(metric.distance(&data[i], &data[j]));
        }
        Self::from_distances(&ds, bins)
    }

    /// Builds a histogram from precomputed distances.
    pub fn from_distances(ds: &[f64], bins: usize) -> Self {
        assert!(!ds.is_empty());
        let lo = ds.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = ds.iter().sum::<f64>() / ds.len() as f64;
        let variance = ds.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / ds.len() as f64;
        let intrinsic_dim = if variance > 0.0 {
            mean * mean / (2.0 * variance)
        } else {
            f64::INFINITY
        };
        let mut hist = vec![0u64; bins];
        let width = if hi > lo {
            (hi - lo) / bins as f64
        } else {
            1.0
        };
        for &d in ds {
            let mut b = ((d - lo) / width) as usize;
            if b >= bins {
                b = bins - 1;
            }
            hist[b] += 1;
        }
        Self {
            bins: hist,
            lo,
            hi,
            stats: DistanceStats {
                pairs: ds.len(),
                min: lo,
                max: hi,
                mean,
                variance,
                intrinsic_dim,
            },
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Histogram range `[lo, hi]`.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Summary statistics.
    pub fn stats(&self) -> &DistanceStats {
        &self.stats
    }

    /// Empirical quantile (`q` in `[0,1]`) from the binned data — an
    /// approximation good enough for choosing query radii in experiments.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let total: u64 = self.bins.iter().sum();
        let target = (q * total as f64).round() as u64;
        let mut acc = 0u64;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.lo + width * (i as f64 + 0.5);
            }
        }
        self.hi
    }

    /// Renders a terminal-friendly sparkline of the distribution, used by the
    /// `repro` harness when describing datasets.
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(1).max(1);
        self.bins
            .iter()
            .map(|&c| GLYPHS[(c as usize * (GLYPHS.len() - 1)) / max as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{L1, L2};
    use crate::vector::Vector;

    #[test]
    fn stats_of_known_distances() {
        let h = DistanceHistogram::from_distances(&[1.0, 2.0, 3.0, 4.0], 4);
        let s = h.stats();
        assert_eq!(s.pairs, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert!((s.intrinsic_dim - 2.5f64.powi(2) / 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_cover_all_samples() {
        let ds: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = DistanceHistogram::from_distances(&ds, 10);
        assert_eq!(h.bins().iter().sum::<u64>(), 100);
        assert_eq!(h.bins().len(), 10);
        assert_eq!(h.range(), (0.0, 99.0));
    }

    #[test]
    fn sample_is_deterministic() {
        let data: Vec<Vector> = (0..50)
            .map(|i| Vector::new(vec![i as f32, (i % 7) as f32]))
            .collect();
        let a = DistanceHistogram::sample(&data, &L2, 200, 8, 9);
        let b = DistanceHistogram::sample(&data, &L2, 200, 8, 9);
        assert_eq!(a.bins(), b.bins());
    }

    #[test]
    fn quantile_is_monotone() {
        let ds: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let h = DistanceHistogram::from_distances(&ds, 32);
        let q1 = h.quantile(0.1);
        let q5 = h.quantile(0.5);
        let q9 = h.quantile(0.9);
        assert!(q1 <= q5 && q5 <= q9);
    }

    #[test]
    fn uniform_grid_has_higher_idim_in_higher_dims() {
        // Intrinsic dimensionality should grow with the true dimension of a
        // uniform sample — a basic sanity property of the estimator.
        let mut rng_vals = (0u32..).map(|i| (i.wrapping_mul(2654435761) % 1000) as f32 / 1000.0);
        let d1: Vec<Vector> = (0..200)
            .map(|_| Vector::new(vec![rng_vals.next().unwrap()]))
            .collect();
        let d8: Vec<Vector> = (0..200)
            .map(|_| Vector::new((0..8).map(|_| rng_vals.next().unwrap()).collect()))
            .collect();
        let h1 = DistanceHistogram::sample(&d1, &L1, 500, 16, 3);
        let h8 = DistanceHistogram::sample(&d8, &L1, 500, 16, 3);
        assert!(
            h8.stats().intrinsic_dim > h1.stats().intrinsic_dim,
            "idim 8d {} should exceed 1d {}",
            h8.stats().intrinsic_dim,
            h1.stats().intrinsic_dim
        );
    }

    #[test]
    fn sparkline_has_one_glyph_per_bin() {
        let h = DistanceHistogram::from_distances(&[1.0, 1.0, 2.0, 5.0], 5);
        assert_eq!(h.sparkline().chars().count(), 5);
    }
}
