//! Distance functions (metrics) over [`Vector`]s and strings.
//!
//! The paper treats the data space as a metric space `(D, d)` with `d`
//! satisfying non-negativity, identity, symmetry and the triangle inequality
//! (§1). The evaluation uses:
//!
//! * `L1` for the YEAST and HUMAN gene-expression matrices,
//! * a weighted **combination of Lp distances** over five MPEG-7 descriptor
//!   blocks for CoPhIR ([`CombinedMetric`]).
//!
//! [`EditDistance`] is included to demonstrate that nothing in the index is
//! specific to vectors (the paper stresses generality of the metric
//! approach: "gene sequences or other biomedical data").

use crate::vector::Vector;

/// A metric distance function over objects of type `T`.
///
/// Implementations must satisfy the metric postulates; the crate's property
/// tests (`tests/metric_postulates.rs`) check them on random inputs for every
/// shipped metric.
pub trait Metric<T: ?Sized>: Send + Sync {
    /// Distance between `a` and `b`. Must be finite and `>= 0`.
    fn distance(&self, a: &T, b: &T) -> f64;

    /// An upper bound on any distance this metric can produce over its
    /// intended domain, if one is known.
    ///
    /// The M-Index normalizes distances into `[0, 1)` when building scalar
    /// keys; callers fall back to an empirical maximum when `None`.
    fn max_distance(&self) -> Option<f64> {
        None
    }

    /// Short human-readable name used in experiment reports.
    fn name(&self) -> String;
}

/// Blanket impl so `&M`, `Box<M>`, `Arc<M>` can be used wherever a metric is
/// expected.
impl<T: ?Sized, M: Metric<T> + ?Sized> Metric<T> for &M {
    fn distance(&self, a: &T, b: &T) -> f64 {
        (**self).distance(a, b)
    }
    fn max_distance(&self) -> Option<f64> {
        (**self).max_distance()
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl<T: ?Sized, M: Metric<T> + ?Sized> Metric<T> for std::sync::Arc<M> {
    fn distance(&self, a: &T, b: &T) -> f64 {
        (**self).distance(a, b)
    }
    fn max_distance(&self) -> Option<f64> {
        (**self).max_distance()
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

fn check_dims(a: &Vector, b: &Vector) {
    assert_eq!(
        a.dim(),
        b.dim(),
        "metric applied to vectors of different dimensionality ({} vs {})",
        a.dim(),
        b.dim()
    );
}

/// Manhattan distance `Σ |a_i − b_i|` — the metric of the YEAST and HUMAN
/// datasets (paper Table 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct L1;

impl Metric<Vector> for L1 {
    #[inline]
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        check_dims(a, b);
        let mut sum = 0.0f64;
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            sum += (*x as f64 - *y as f64).abs();
        }
        sum
    }
    fn name(&self) -> String {
        "L1".into()
    }
}

/// Euclidean distance `sqrt(Σ (a_i − b_i)^2)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct L2;

impl Metric<Vector> for L2 {
    #[inline]
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        check_dims(a, b);
        let mut sum = 0.0f64;
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            let d = *x as f64 - *y as f64;
            sum += d * d;
        }
        sum.sqrt()
    }
    fn name(&self) -> String {
        "L2".into()
    }
}

/// Chebyshev distance `max |a_i − b_i|` (the `p → ∞` member of the Lp family).
#[derive(Debug, Clone, Copy, Default)]
pub struct Linf;

impl Metric<Vector> for Linf {
    #[inline]
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        check_dims(a, b);
        let mut m = 0.0f64;
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            m = m.max((*x as f64 - *y as f64).abs());
        }
        m
    }
    fn name(&self) -> String {
        "Linf".into()
    }
}

/// Minkowski distance of order `p >= 1`: `(Σ |a_i − b_i|^p)^(1/p)`.
///
/// `p < 1` does not satisfy the triangle inequality and is rejected.
#[derive(Debug, Clone, Copy)]
pub struct Lp {
    p: f64,
}

impl Lp {
    /// Creates an Lp metric. Panics if `p < 1` (not a metric).
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0, "Lp with p = {p} violates the triangle inequality");
        Self { p }
    }

    /// The order `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Metric<Vector> for Lp {
    #[inline]
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        check_dims(a, b);
        if self.p == 1.0 {
            return L1.distance(a, b);
        }
        if self.p == 2.0 {
            return L2.distance(a, b);
        }
        let mut sum = 0.0f64;
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            sum += (*x as f64 - *y as f64).abs().powf(self.p);
        }
        sum.powf(1.0 / self.p)
    }
    fn name(&self) -> String {
        format!("L{}", self.p)
    }
}

/// One descriptor block inside a [`CombinedMetric`]: a contiguous component
/// range compared by its own Lp order and scaled by a weight.
#[derive(Debug, Clone, Copy)]
pub struct DescriptorBlock {
    /// First component index of the block.
    pub start: usize,
    /// Number of components in the block.
    pub len: usize,
    /// Minkowski order used inside the block (`1.0` or `2.0` typically).
    pub p: f64,
    /// Weight multiplying the block distance in the aggregate.
    pub weight: f64,
}

/// CoPhIR-style aggregate metric: "five MPEG-7 visual descriptors were
/// extracted and the distance combines them" (paper §5.1).
///
/// The aggregate is a weighted sum of per-block Lp distances. A weighted sum
/// of metrics is again a metric, so all pruning rules remain valid.
/// Evaluating it is deliberately expensive — the paper's CoPhIR results are
/// dominated by this cost, which is what makes the client-side refinement
/// visible in Tables 3 and 6.
#[derive(Debug, Clone)]
pub struct CombinedMetric {
    blocks: Vec<DescriptorBlock>,
    total_dim: usize,
}

impl CombinedMetric {
    /// Builds a combined metric; blocks must tile `[0, total_dim)` without
    /// overlap (checked).
    pub fn new(blocks: Vec<DescriptorBlock>) -> Self {
        assert!(
            !blocks.is_empty(),
            "combined metric needs at least one block"
        );
        let mut covered = 0usize;
        for b in &blocks {
            assert_eq!(
                b.start, covered,
                "descriptor blocks must be contiguous and ordered"
            );
            assert!(b.len > 0, "empty descriptor block");
            assert!(b.p >= 1.0, "block Lp order must be >= 1");
            assert!(b.weight > 0.0, "block weight must be positive");
            covered += b.len;
        }
        Self {
            blocks,
            total_dim: covered,
        }
    }

    /// The MPEG-7 layout used by the CoPhIR evaluation stand-in:
    /// ScalableColor(64, L1), ColorStructure(64, L1), ColorLayout(12, L2),
    /// EdgeHistogram(80, L1), HomogeneousTexture(62, L2) — 282 dims total,
    /// with weights resembling the CoPhIR aggregate.
    pub fn cophir_default() -> Self {
        let spec: [(usize, f64, f64); 5] = [
            (64, 1.0, 2.0), // ScalableColor
            (64, 1.0, 3.0), // ColorStructure
            (12, 2.0, 2.0), // ColorLayout
            (80, 1.0, 4.0), // EdgeHistogram
            (62, 2.0, 0.5), // HomogeneousTexture
        ];
        let mut blocks = Vec::with_capacity(spec.len());
        let mut start = 0;
        for (len, p, weight) in spec {
            blocks.push(DescriptorBlock {
                start,
                len,
                p,
                weight,
            });
            start += len;
        }
        Self::new(blocks)
    }

    /// Total dimensionality the metric expects.
    pub fn dim(&self) -> usize {
        self.total_dim
    }

    /// The configured blocks.
    pub fn blocks(&self) -> &[DescriptorBlock] {
        &self.blocks
    }
}

impl Metric<Vector> for CombinedMetric {
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        assert_eq!(
            a.dim(),
            self.total_dim,
            "vector does not match metric layout"
        );
        check_dims(a, b);
        let xs = a.as_slice();
        let ys = b.as_slice();
        let mut total = 0.0f64;
        for blk in &self.blocks {
            let xr = &xs[blk.start..blk.start + blk.len];
            let yr = &ys[blk.start..blk.start + blk.len];
            let d = if blk.p == 1.0 {
                let mut s = 0.0f64;
                for (x, y) in xr.iter().zip(yr) {
                    s += (*x as f64 - *y as f64).abs();
                }
                s
            } else if blk.p == 2.0 {
                let mut s = 0.0f64;
                for (x, y) in xr.iter().zip(yr) {
                    let d = *x as f64 - *y as f64;
                    s += d * d;
                }
                s.sqrt()
            } else {
                let mut s = 0.0f64;
                for (x, y) in xr.iter().zip(yr) {
                    s += (*x as f64 - *y as f64).abs().powf(blk.p);
                }
                s.powf(1.0 / blk.p)
            };
            total += blk.weight * d;
        }
        total
    }

    fn name(&self) -> String {
        format!("Combined({} blocks)", self.blocks.len())
    }
}

/// Levenshtein edit distance over strings — demonstrates the index on
/// non-vector data (sequences), as the paper's generality claim requires.
#[derive(Debug, Clone, Copy, Default)]
pub struct EditDistance;

impl Metric<str> for EditDistance {
    fn distance(&self, a: &str, b: &str) -> f64 {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        if a.is_empty() {
            return b.len() as f64;
        }
        if b.is_empty() {
            return a.len() as f64;
        }
        // Single-row dynamic program; O(|a|·|b|) time, O(|b|) space.
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        let mut cur = vec![0usize; b.len() + 1];
        for (i, ca) in a.iter().enumerate() {
            cur[0] = i + 1;
            for (j, cb) in b.iter().enumerate() {
                let sub = prev[j] + usize::from(ca != cb);
                cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()] as f64
    }

    fn name(&self) -> String {
        "Edit".into()
    }
}

impl Metric<String> for EditDistance {
    fn distance(&self, a: &String, b: &String) -> f64 {
        Metric::<str>::distance(self, a.as_str(), b.as_str())
    }
    fn name(&self) -> String {
        "Edit".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: &[f32]) -> Vector {
        Vector::from(c)
    }

    #[test]
    fn l1_known_values() {
        assert_eq!(L1.distance(&v(&[0.0, 0.0]), &v(&[3.0, 4.0])), 7.0);
        assert_eq!(L1.distance(&v(&[1.0]), &v(&[1.0])), 0.0);
    }

    #[test]
    fn l2_known_values() {
        assert_eq!(L2.distance(&v(&[0.0, 0.0]), &v(&[3.0, 4.0])), 5.0);
    }

    #[test]
    fn linf_known_values() {
        assert_eq!(Linf.distance(&v(&[0.0, 0.0]), &v(&[3.0, 4.0])), 4.0);
    }

    #[test]
    fn lp_specializes_to_l1_l2() {
        let a = v(&[1.0, -2.0, 0.5]);
        let b = v(&[0.0, 3.0, 2.5]);
        assert_eq!(Lp::new(1.0).distance(&a, &b), L1.distance(&a, &b));
        assert_eq!(Lp::new(2.0).distance(&a, &b), L2.distance(&a, &b));
        let d3 = Lp::new(3.0).distance(&a, &b);
        assert!(d3 > Linf.distance(&a, &b));
        assert!(d3 < L1.distance(&a, &b));
    }

    #[test]
    #[should_panic(expected = "triangle inequality")]
    fn lp_rejects_sub_one() {
        let _ = Lp::new(0.5);
    }

    #[test]
    #[should_panic(expected = "different dimensionality")]
    fn dim_mismatch_panics() {
        let _ = L1.distance(&v(&[1.0]), &v(&[1.0, 2.0]));
    }

    #[test]
    fn combined_metric_matches_manual_sum() {
        let m = CombinedMetric::new(vec![
            DescriptorBlock {
                start: 0,
                len: 2,
                p: 1.0,
                weight: 2.0,
            },
            DescriptorBlock {
                start: 2,
                len: 2,
                p: 2.0,
                weight: 0.5,
            },
        ]);
        let a = v(&[0.0, 0.0, 0.0, 0.0]);
        let b = v(&[1.0, 2.0, 3.0, 4.0]);
        let expect = 2.0 * 3.0 + 0.5 * 5.0;
        assert!((m.distance(&a, &b) - expect).abs() < 1e-12);
        assert_eq!(m.dim(), 4);
    }

    #[test]
    fn cophir_default_layout() {
        let m = CombinedMetric::cophir_default();
        assert_eq!(m.dim(), 64 + 64 + 12 + 80 + 62);
        assert_eq!(m.blocks().len(), 5);
        let a = Vector::zeros(m.dim());
        assert_eq!(m.distance(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn combined_rejects_gaps() {
        let _ = CombinedMetric::new(vec![DescriptorBlock {
            start: 1,
            len: 2,
            p: 1.0,
            weight: 1.0,
        }]);
    }

    #[test]
    fn edit_distance_known_values() {
        let m = EditDistance;
        assert_eq!(Metric::<str>::distance(&m, "kitten", "sitting"), 3.0);
        assert_eq!(Metric::<str>::distance(&m, "", "abc"), 3.0);
        assert_eq!(Metric::<str>::distance(&m, "abc", ""), 3.0);
        assert_eq!(Metric::<str>::distance(&m, "same", "same"), 0.0);
        assert_eq!(Metric::<str>::distance(&m, "flaw", "lawn"), 2.0);
    }

    #[test]
    fn metric_usable_through_references() {
        let m = L1;
        let r: &dyn Metric<Vector> = &m;
        assert_eq!(r.distance(&v(&[1.0]), &v(&[4.0])), 3.0);
        let arc = std::sync::Arc::new(L2);
        assert_eq!(arc.distance(&v(&[0.0]), &v(&[2.0])), 2.0);
        assert_eq!(arc.name(), "L2");
    }
}
