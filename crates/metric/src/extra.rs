//! Additional metrics beyond the paper's evaluation set.
//!
//! The Encrypted M-Index works for *any* metric (its server never evaluates
//! `d`), so the library ships the other distance functions common in
//! similarity-search practice: angular distance (the metric form of cosine
//! similarity), Hamming distance over quantized/binary descriptors, and a
//! scaling wrapper for unit normalization.

use crate::metrics::Metric;
use crate::vector::Vector;

/// Angular distance: `arccos(cos_sim(a, b))` in radians.
///
/// Unlike raw cosine "distance" (`1 − cos`), the angle satisfies the
/// triangle inequality (it is the geodesic distance on the unit sphere), so
/// all pruning rules remain valid. Zero vectors are at distance `π/2` from
/// everything by convention (orthogonal-like), and `0` from another zero
/// vector, preserving identity.
#[derive(Debug, Clone, Copy, Default)]
pub struct Angular;

impl Metric<Vector> for Angular {
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        assert_eq!(a.dim(), b.dim(), "angular distance needs equal dims");
        let mut dot = 0.0f64;
        let mut na = 0.0f64;
        let mut nb = 0.0f64;
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            dot += *x as f64 * *y as f64;
            na += (*x as f64) * (*x as f64);
            nb += (*y as f64) * (*y as f64);
        }
        if na == 0.0 && nb == 0.0 {
            return 0.0;
        }
        if na == 0.0 || nb == 0.0 {
            return std::f64::consts::FRAC_PI_2;
        }
        let cos = (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0);
        cos.acos()
    }

    fn max_distance(&self) -> Option<f64> {
        Some(std::f64::consts::PI)
    }

    fn name(&self) -> String {
        "Angular".into()
    }
}

/// Hamming distance over component-wise equality — the metric for binary
/// or coarsely quantized descriptor vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hamming;

impl Metric<Vector> for Hamming {
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        assert_eq!(a.dim(), b.dim(), "hamming distance needs equal dims");
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .filter(|(x, y)| x != y)
            .count() as f64
    }

    fn name(&self) -> String {
        "Hamming".into()
    }
}

/// Scales another metric by a positive constant (e.g. to normalize into
/// `[0, 1]` for scalar-key construction). A positive scaling of a metric is
/// a metric.
#[derive(Debug, Clone, Copy)]
pub struct Scaled<M> {
    inner: M,
    factor: f64,
}

impl<M> Scaled<M> {
    /// Wraps `inner`, multiplying every distance by `factor > 0`.
    pub fn new(inner: M, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self { inner, factor }
    }
}

impl<M: Metric<Vector>> Metric<Vector> for Scaled<M> {
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        self.factor * self.inner.distance(a, b)
    }
    fn max_distance(&self) -> Option<f64> {
        self.inner.max_distance().map(|m| m * self.factor)
    }
    fn name(&self) -> String {
        format!("{}×{}", self.factor, self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::L2;

    fn v(c: &[f32]) -> Vector {
        Vector::from(c)
    }

    #[test]
    fn angular_known_values() {
        let a = v(&[1.0, 0.0]);
        let b = v(&[0.0, 1.0]);
        let c = v(&[-1.0, 0.0]);
        assert!((Angular.distance(&a, &b) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((Angular.distance(&a, &c) - std::f64::consts::PI).abs() < 1e-12);
        assert!(Angular.distance(&a, &a) < 1e-12);
        // scale invariance
        let a2 = v(&[5.0, 0.0]);
        assert!(Angular.distance(&a2, &b) - Angular.distance(&a, &b) < 1e-12);
    }

    #[test]
    fn angular_zero_vector_conventions() {
        let z = v(&[0.0, 0.0]);
        let a = v(&[1.0, 1.0]);
        assert_eq!(Angular.distance(&z, &z), 0.0);
        assert!((Angular.distance(&z, &a) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(Angular.max_distance(), Some(std::f64::consts::PI));
    }

    #[test]
    fn hamming_counts_mismatches() {
        let a = v(&[1.0, 2.0, 3.0, 4.0]);
        let b = v(&[1.0, 0.0, 3.0, 0.0]);
        assert_eq!(Hamming.distance(&a, &b), 2.0);
        assert_eq!(Hamming.distance(&a, &a), 0.0);
    }

    #[test]
    fn scaled_metric_scales() {
        let m = Scaled::new(L2, 0.5);
        let a = v(&[0.0]);
        let b = v(&[4.0]);
        assert_eq!(m.distance(&a, &b), 2.0);
        assert!(m.name().contains("L2"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_nonpositive() {
        let _ = Scaled::new(L2, 0.0);
    }
}
