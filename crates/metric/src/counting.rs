//! Distance-computation counting.
//!
//! The paper reports "Dist. comp. time" as a separate cost component in every
//! table. [`CountingMetric`] wraps any [`Metric`] and counts invocations with
//! a relaxed atomic, so both the client and server sides can report how many
//! distance evaluations a phase performed (and, scaled by a measured
//! per-distance cost, the time attributable to them).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::Metric;

/// Wraps a metric and counts every `distance` call.
///
/// Cloning is intentionally not provided: share via `Arc` to keep a single
/// counter, or create separate wrappers for separate phases.
#[derive(Debug, Default)]
pub struct CountingMetric<M> {
    inner: M,
    count: AtomicU64,
}

impl<M> CountingMetric<M> {
    /// Wraps `inner` with a fresh zero counter.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            count: AtomicU64::new(0),
        }
    }

    /// Number of distance computations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.count.swap(0, Ordering::Relaxed)
    }

    /// Access to the wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<T: ?Sized, M: Metric<T>> Metric<T> for CountingMetric<M> {
    #[inline]
    fn distance(&self, a: &T, b: &T) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.distance(a, b)
    }
    fn max_distance(&self) -> Option<f64> {
        self.inner.max_distance()
    }
    fn name(&self) -> String {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::L1;
    use crate::vector::Vector;

    #[test]
    fn counts_and_resets() {
        let m = CountingMetric::new(L1);
        let a = Vector::from(&[1.0f32, 2.0][..]);
        let b = Vector::from(&[0.0f32, 0.0][..]);
        assert_eq!(m.count(), 0);
        let _ = m.distance(&a, &b);
        let _ = m.distance(&a, &b);
        assert_eq!(m.count(), 2);
        assert_eq!(m.reset(), 2);
        assert_eq!(m.count(), 0);
        assert_eq!(m.name(), "L1");
    }

    #[test]
    fn counting_is_thread_safe() {
        use std::sync::Arc;
        let m = Arc::new(CountingMetric::new(L1));
        let a = Vector::from(&[1.0f32][..]);
        let b = Vector::from(&[3.0f32][..]);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                let (a, b) = (a.clone(), b.clone());
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let _ = m.distance(&a, &b);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.count(), 400);
    }
}
