//! Pivot (reference object) selection.
//!
//! The paper selects pivots "at random from within the data set" (§5.1);
//! [`PivotSelection::Random`] reproduces that. Two standard alternatives are
//! provided for the ablation benches: farthest-first traversal (max-min
//! separation, a common MESSIF choice) and a greedy variance maximizer.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::metrics::Metric;

/// Strategy for choosing pivots from a sample of the data set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotSelection {
    /// Uniformly random distinct objects — the paper's setting.
    Random,
    /// Farthest-first traversal: first pivot random, each next pivot
    /// maximizes its minimum distance to already chosen pivots.
    FarthestFirst,
    /// Greedy pick maximizing the variance of distances to a random probe
    /// sample; favours pivots that discriminate well.
    MaxVariance,
}

impl std::fmt::Display for PivotSelection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PivotSelection::Random => "random",
            PivotSelection::FarthestFirst => "farthest-first",
            PivotSelection::MaxVariance => "max-variance",
        };
        f.write_str(s)
    }
}

/// Selects `n` pivots from `data` with the given strategy and seed.
///
/// Panics if `data.len() < n` — an index cannot have more pivots than
/// objects. Returned pivots are clones of data objects (pivots become part of
/// the *secret key* in the encrypted setting, so they must be owned).
pub fn select_pivots<T, M>(
    data: &[T],
    n: usize,
    metric: &M,
    strategy: PivotSelection,
    seed: u64,
) -> Vec<T>
where
    T: Clone,
    M: Metric<T>,
{
    assert!(
        data.len() >= n,
        "cannot select {n} pivots from {} objects",
        data.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    match strategy {
        PivotSelection::Random => {
            let mut idx: Vec<usize> = (0..data.len()).collect();
            idx.shuffle(&mut rng);
            idx.truncate(n);
            idx.into_iter().map(|i| data[i].clone()).collect()
        }
        PivotSelection::FarthestFirst => farthest_first(data, n, metric, &mut rng),
        PivotSelection::MaxVariance => max_variance(data, n, metric, &mut rng),
    }
}

fn farthest_first<T: Clone, M: Metric<T>>(
    data: &[T],
    n: usize,
    metric: &M,
    rng: &mut StdRng,
) -> Vec<T> {
    let first = rng.gen_range(0..data.len());
    let mut chosen = vec![first];
    // min distance from each object to the chosen set
    let mut min_d: Vec<f64> = data
        .iter()
        .map(|o| metric.distance(o, &data[first]))
        .collect();
    while chosen.len() < n {
        let (best, _) = min_d
            .iter()
            .enumerate()
            .filter(|(i, _)| !chosen.contains(i))
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("data exhausted");
        chosen.push(best);
        for (i, slot) in min_d.iter_mut().enumerate() {
            let d = metric.distance(&data[i], &data[best]);
            if d < *slot {
                *slot = d;
            }
        }
    }
    chosen.into_iter().map(|i| data[i].clone()).collect()
}

fn max_variance<T: Clone, M: Metric<T>>(
    data: &[T],
    n: usize,
    metric: &M,
    rng: &mut StdRng,
) -> Vec<T> {
    // Probe sample bounds the cost on large datasets.
    let probes: Vec<usize> = (0..data.len().min(64))
        .map(|_| rng.gen_range(0..data.len()))
        .collect();
    // Candidate pool: random subset, 4x oversampled.
    let mut pool: Vec<usize> = (0..data.len()).collect();
    pool.shuffle(rng);
    pool.truncate((4 * n).min(data.len()));
    let mut scored: Vec<(f64, usize)> = pool
        .into_iter()
        .map(|c| {
            let ds: Vec<f64> = probes
                .iter()
                .map(|&p| metric.distance(&data[c], &data[p]))
                .collect();
            let mean = ds.iter().sum::<f64>() / ds.len() as f64;
            let var = ds.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / ds.len() as f64;
            (var, c)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    scored.truncate(n);
    scored.into_iter().map(|(_, i)| data[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::L2;
    use crate::vector::Vector;

    fn grid(n: usize) -> Vec<Vector> {
        (0..n)
            .map(|i| Vector::new(vec![i as f32, (i * i % 17) as f32]))
            .collect()
    }

    #[test]
    fn random_selection_is_deterministic_per_seed() {
        let data = grid(50);
        let a = select_pivots(&data, 5, &L2, PivotSelection::Random, 42);
        let b = select_pivots(&data, 5, &L2, PivotSelection::Random, 42);
        let c = select_pivots(&data, 5, &L2, PivotSelection::Random, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn random_selection_has_no_duplicates() {
        let data = grid(30);
        let p = select_pivots(&data, 30, &L2, PivotSelection::Random, 7);
        for i in 0..p.len() {
            for j in i + 1..p.len() {
                assert_ne!(p[i], p[j], "duplicate pivot selected");
            }
        }
    }

    #[test]
    fn farthest_first_spreads_pivots() {
        // A line of points: whatever the random start pivot s, the second
        // pivot is the extreme farther from s, so the spread is at least
        // max(s, 99-s) >= half the diameter. (Both extremes appear only when
        // s is central — that is start-dependent, so it is not asserted.)
        let data: Vec<Vector> = (0..100).map(|i| Vector::new(vec![i as f32])).collect();
        for seed in 0..8 {
            let p = select_pivots(&data, 3, &L2, PivotSelection::FarthestFirst, seed);
            let xs: Vec<f32> = p.iter().map(|v| v[0]).collect();
            assert!(
                xs.contains(&0.0) || xs.contains(&99.0),
                "no extreme among pivots {xs:?} (seed {seed})"
            );
            let spread = xs.iter().cloned().fold(f32::MIN, f32::max)
                - xs.iter().cloned().fold(f32::MAX, f32::min);
            assert!(spread >= 49.5, "spread {spread} too small (seed {seed})");
            assert_eq!(xs.len(), 3);
            assert!(
                xs[0] != xs[1] && xs[1] != xs[2] && xs[0] != xs[2],
                "duplicate pivots"
            );
        }
    }

    #[test]
    fn max_variance_returns_requested_count() {
        let data = grid(40);
        let p = select_pivots(&data, 6, &L2, PivotSelection::MaxVariance, 5);
        assert_eq!(p.len(), 6);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn selecting_too_many_panics() {
        let data = grid(3);
        let _ = select_pivots(&data, 4, &L2, PivotSelection::Random, 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(PivotSelection::Random.to_string(), "random");
        assert_eq!(PivotSelection::FarthestFirst.to_string(), "farthest-first");
        assert_eq!(PivotSelection::MaxVariance.to_string(), "max-variance");
    }
}
