//! # simcloud-metric — metric-space toolkit
//!
//! Foundations for metric similarity search, reproducing the metric layer of
//! the MESSIF framework that the Encrypted M-Index paper (Kozák, Novak,
//! Zezula, SDM@VLDB 2012) builds on.
//!
//! The crate provides:
//!
//! * [`Vector`] — the metric-space object used throughout the workspace
//!   (dense `f32` vectors; gene-expression rows and MPEG-7 descriptors in the
//!   paper's evaluation are both of this shape);
//! * the [`Metric`] trait with the distance functions used by the paper's
//!   datasets: [`L1`], [`L2`], [`Lp`], [`Linf`] and the CoPhIR-style
//!   [`CombinedMetric`] that aggregates per-descriptor-block `Lp` distances
//!   with weights;
//! * [`CountingMetric`], a wrapper that counts distance computations — the
//!   paper reports "distance computation time" as a first-class cost;
//! * pivot machinery: [`select_pivots`] (random / farthest-first /
//!   variance-greedy) and [`PivotPermutation`] (the ordering of pivots by
//!   distance that the M-Index uses as its only indexing information);
//! * distance-distribution [`analysis`] utilities (histograms, intrinsic
//!   dimensionality) used when calibrating synthetic datasets.
//!
//! Everything is deterministic given explicit seeds; no global RNG state.

#![warn(missing_docs)]

pub mod analysis;
pub mod counting;
pub mod extra;
pub mod metrics;
pub mod permutation;
pub mod pivots;
pub mod vector;

pub use counting::CountingMetric;
pub use extra::{Angular, Hamming, Scaled};
pub use metrics::{CombinedMetric, DescriptorBlock, EditDistance, Linf, Lp, Metric, L1, L2};
pub use permutation::{permutation_from_distances, PivotPermutation};
pub use pivots::{select_pivots, PivotSelection};
pub use vector::Vector;

/// Identifier of an indexed object. The similarity cloud returns IDs of
/// relevant objects; the raw-data storage resolves them to original content
/// (paper §2.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_display_and_order() {
        let a = ObjectId(3);
        let b = ObjectId(10);
        assert!(a < b);
        assert_eq!(a.to_string(), "#3");
        assert_eq!(ObjectId::from(7u64), ObjectId(7));
    }
}
