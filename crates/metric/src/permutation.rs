//! Pivot permutations — the only indexing information the server ever sees.
//!
//! For an object `o` and pivots `p_1 … p_n`, the pivot permutation orders
//! pivot *indexes* by increasing distance `d(p_i, o)`, breaking ties by the
//! smaller index (paper §4.1):
//!
//! ```text
//! (i)_o < (j)_o  ⇔  d(p_(i)_o, o) < d(p_(j)_o, o)
//!                    ∨ (d(p_(i)_o, o) = d(p_(j)_o, o) ∧ i < j)
//! ```
//!
//! The M-Index uses *prefixes* of this permutation for routing; the Encrypted
//! M-Index sends exactly this permutation (or the raw distances) to the
//! untrusted server.

use serde::{Deserialize, Serialize};

/// A (prefix of a) pivot permutation: `order[k]` is the index of the
/// `(k+1)`-th closest pivot.
///
/// Pivot indexes are stored as `u16` — pivot sets above 65 535 pivots are far
/// beyond any permutation index in the literature (the paper uses 30–100).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PivotPermutation {
    order: Vec<u16>,
}

impl PivotPermutation {
    /// Creates a permutation from an explicit order. Validates that entries
    /// are unique.
    pub fn new(order: Vec<u16>) -> Self {
        debug_assert!(
            {
                let mut s = order.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "pivot permutation contains duplicate indexes"
        );
        Self { order }
    }

    /// The full stored order.
    #[inline]
    pub fn order(&self) -> &[u16] {
        &self.order
    }

    /// Length of the stored (possibly truncated) permutation.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if no pivots are recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The index of the closest pivot, if any.
    #[inline]
    pub fn closest(&self) -> Option<u16> {
        self.order.first().copied()
    }

    /// The first `l` entries (or fewer if the permutation is shorter) — the
    /// prefix the M-Index routes on.
    #[inline]
    pub fn prefix(&self, l: usize) -> &[u16] {
        &self.order[..l.min(self.order.len())]
    }

    /// Truncates in place to at most `l` entries; used when the client only
    /// ships the routing prefix to reduce leakage and bytes.
    pub fn truncate(&mut self, l: usize) {
        self.order.truncate(l);
    }

    /// Position of pivot `pivot` in this permutation (its rank), if present.
    pub fn rank_of(&self, pivot: u16) -> Option<usize> {
        self.order.iter().position(|&p| p == pivot)
    }

    /// Spearman footrule distance between two permutations of equal length:
    /// `Σ_p |rank_a(p) − rank_b(p)|`. A standard measure of how different two
    /// pivot views are; used by permutation-based candidate ranking.
    pub fn footrule(&self, other: &Self) -> u64 {
        assert_eq!(self.len(), other.len(), "footrule needs equal lengths");
        let n = self.len();
        let mut rank_other = vec![u16::MAX; n.max(1)];
        // rank_other indexed by pivot id requires max pivot id < n for full
        // permutations; build a map for the general case.
        let mut map = std::collections::HashMap::with_capacity(n);
        for (r, &p) in other.order.iter().enumerate() {
            map.insert(p, r);
        }
        let _ = &mut rank_other;
        let mut sum = 0u64;
        for (r, &p) in self.order.iter().enumerate() {
            let ro = *map.get(&p).expect("permutations over different pivot sets");
            sum += (r as i64 - ro as i64).unsigned_abs();
        }
        sum
    }

    /// Compact byte encoding: `u16` length + big-endian `u16` entries.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.order.len() as u16).to_le_bytes());
        for &p in &self.order {
            out.extend_from_slice(&p.to_le_bytes());
        }
    }

    /// Size of [`PivotPermutation::encode`] output in bytes.
    pub fn encoded_len(&self) -> usize {
        2 + 2 * self.order.len()
    }

    /// Decodes a permutation; returns it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        let (len_bytes, rest) = buf.split_first_chunk::<2>()?;
        let n = u16::from_le_bytes(*len_bytes) as usize;
        let mut body = rest.get(..2 * n)?;
        let mut order = Vec::with_capacity(n);
        while let Some((c, tail)) = body.split_first_chunk::<2>() {
            order.push(u16::from_le_bytes(*c));
            body = tail;
        }
        Some((Self { order }, 2 + 2 * n))
    }
}

/// Computes the pivot permutation from a vector of object–pivot distances,
/// with the paper's tie-break (equal distances ⇒ smaller pivot index first).
pub fn permutation_from_distances(distances: &[f64]) -> PivotPermutation {
    assert!(
        distances.len() <= u16::MAX as usize,
        "too many pivots for u16 permutation entries"
    );
    let mut idx: Vec<u16> = (0..distances.len() as u16).collect();
    // `total_cmp` keeps the sort well-defined even for NaN distances, which
    // can arrive over the wire inside `Routing::Distances` — a malformed
    // float must not abort the server.
    idx.sort_by(|&a, &b| {
        distances[a as usize]
            .total_cmp(&distances[b as usize])
            .then(a.cmp(&b))
    });
    PivotPermutation::new(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_orders_by_distance() {
        let p = permutation_from_distances(&[0.5, 0.1, 0.9, 0.3]);
        assert_eq!(p.order(), &[1, 3, 0, 2]);
        assert_eq!(p.closest(), Some(1));
    }

    #[test]
    fn ties_break_by_smaller_index() {
        let p = permutation_from_distances(&[0.7, 0.2, 0.2, 0.2]);
        assert_eq!(p.order(), &[1, 2, 3, 0]);
    }

    #[test]
    fn prefix_and_truncate() {
        let mut p = permutation_from_distances(&[3.0, 1.0, 2.0]);
        assert_eq!(p.prefix(2), &[1, 2]);
        assert_eq!(p.prefix(10), &[1, 2, 0]);
        p.truncate(1);
        assert_eq!(p.order(), &[1]);
        assert!(!p.is_empty());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn rank_of_finds_positions() {
        let p = permutation_from_distances(&[0.5, 0.1, 0.9]);
        assert_eq!(p.rank_of(1), Some(0));
        assert_eq!(p.rank_of(0), Some(1));
        assert_eq!(p.rank_of(2), Some(2));
        assert_eq!(p.rank_of(9), None);
    }

    #[test]
    fn footrule_distance() {
        let a = PivotPermutation::new(vec![0, 1, 2, 3]);
        let b = PivotPermutation::new(vec![3, 2, 1, 0]);
        // displacements: 3+1+1+3 = 8
        assert_eq!(a.footrule(&b), 8);
        assert_eq!(a.footrule(&a), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = permutation_from_distances(&[0.4, 0.2, 0.6, 0.1, 0.5]);
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), p.encoded_len());
        let (back, used) = PivotPermutation::decode(&buf).unwrap();
        assert_eq!(back, p);
        assert_eq!(used, buf.len());
        assert!(PivotPermutation::decode(&buf[..buf.len() - 1]).is_none());
    }

    #[test]
    fn empty_permutation() {
        let p = permutation_from_distances(&[]);
        assert!(p.is_empty());
        assert_eq!(p.closest(), None);
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let (back, _) = PivotPermutation::decode(&buf).unwrap();
        assert!(back.is_empty());
    }
}
