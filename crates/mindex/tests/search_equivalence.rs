//! Property tests: the M-Index's pruned searches are *safe* — they never
//! lose a true result — across random data sets, configurations and queries.
//! These are the invariants that make Alg. 3's candidate set sufficient for
//! client-side refinement in the encrypted deployment.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_metric::{select_pivots, ObjectId, PivotSelection, Vector, L1, L2};
use simcloud_mindex::{recall, MIndexConfig, PlainMIndex, RoutingStrategy};
use simcloud_storage::MemoryStore;

fn random_data(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Vector::new((0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect()))
        .collect()
}

fn build_l2(
    data: &[Vector],
    pivots: usize,
    max_level: usize,
    cap: usize,
    seed: u64,
) -> PlainMIndex<L2, MemoryStore> {
    let cfg = MIndexConfig {
        num_pivots: pivots,
        max_level,
        bucket_capacity: cap,
        strategy: RoutingStrategy::Distances,
    };
    let pv = select_pivots(data, pivots, &L2, PivotSelection::Random, seed);
    let mut idx = PlainMIndex::new(cfg, pv, L2, MemoryStore::new()).unwrap();
    for (i, v) in data.iter().enumerate() {
        idx.insert(ObjectId(i as u64), v).unwrap();
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Range search through the pruned tree returns exactly the brute-force
    /// answer, for arbitrary data/seeds/radii and tree shapes.
    #[test]
    fn range_search_is_exact(
        seed in 0u64..5000,
        n in 20usize..200,
        dim in 1usize..6,
        pivots in 2usize..10,
        max_level in 1usize..3,
        cap in 2usize..32,
        radius in 0.0f64..8.0,
    ) {
        let pivots = pivots.min(n);
        let max_level = max_level.min(pivots);
        let data = random_data(n, dim, seed);
        let idx = build_l2(&data, pivots, max_level, cap, seed ^ 0xabc);
        let q = &data[seed as usize % n];
        let (got, _) = idx.range(q, radius).unwrap();
        let want = idx.brute_force_range(q, radius).unwrap();
        prop_assert_eq!(got, want);
    }

    /// Precise k-NN (approximate seed + range completion) equals brute force
    /// in distances.
    #[test]
    fn precise_knn_is_exact(
        seed in 0u64..5000,
        n in 20usize..150,
        k in 1usize..12,
    ) {
        let data = random_data(n, 3, seed);
        let idx = build_l2(&data, 6.min(n), 2, 8, seed ^ 0x77);
        let q = &data[(seed as usize * 7) % n];
        let (got, _) = idx.knn_precise(q, k).unwrap();
        let want = idx.brute_force_knn(q, k).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.1 - w.1).abs() < 1e-9,
                "distance mismatch {} vs {}", g.1, w.1);
        }
    }

    /// Approximate k-NN with the full collection as candidate set is exact
    /// (recall 100%) — the approximation error comes only from candidate
    /// truncation.
    #[test]
    fn approx_knn_with_full_candidates_is_exact(
        seed in 0u64..5000,
        n in 10usize..100,
        k in 1usize..8,
    ) {
        let data = random_data(n, 2, seed);
        let idx = build_l2(&data, 4.min(n), 2, 8, seed ^ 0x3);
        let q = &data[(seed as usize * 3) % n];
        let (approx, _) = idx.knn_approx(q, k, n).unwrap();
        let truth = idx.brute_force_knn(q, k).unwrap();
        prop_assert!((recall(&approx, &truth) - 100.0).abs() < 1e-9);
    }

    /// L1 metric variant: the same exactness holds (pruning rules are
    /// metric-agnostic).
    #[test]
    fn range_search_exact_under_l1(
        seed in 0u64..2000,
        radius in 0.0f64..10.0,
    ) {
        let data = random_data(80, 4, seed);
        let cfg = MIndexConfig {
            num_pivots: 5,
            max_level: 2,
            bucket_capacity: 10,
            strategy: RoutingStrategy::Distances,
        };
        let pv = select_pivots(&data, 5, &L1, PivotSelection::Random, seed);
        let mut idx = PlainMIndex::new(cfg, pv, L1, MemoryStore::new()).unwrap();
        for (i, v) in data.iter().enumerate() {
            idx.insert(ObjectId(i as u64), v).unwrap();
        }
        let q = &data[seed as usize % 80];
        let (got, _) = idx.range(q, radius).unwrap();
        let want = idx.brute_force_range(q, radius).unwrap();
        prop_assert_eq!(got, want);
    }
}

/// Regression (found by the `precise_knn_is_exact` property): leaf distance
/// bounds are stored `f32`-rounded, so a range query at an exact boundary
/// radius (the ρ_k completion radius of precise k-NN) used to prune the
/// leaf holding the true neighbor. seed=724, n=34, k=1 reproduced it.
#[test]
fn precise_knn_boundary_radius_regression() {
    let (seed, n, k) = (724u64, 34usize, 1usize);
    let data = random_data(n, 3, seed);
    let idx = build_l2(&data, 6.min(n), 2, 8, seed ^ 0x77);
    let q = &data[(seed as usize * 7) % n];
    let (got, _) = idx.knn_precise(q, k).unwrap();
    let want = idx.brute_force_knn(q, k).unwrap();
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert!((g.1 - w.1).abs() < 1e-9);
    }
}

/// Duplicate objects: all duplicates fall into one cell and are all found.
#[test]
fn duplicates_are_preserved() {
    let v = Vector::new(vec![1.0, 2.0]);
    let data: Vec<Vector> = (0..20).map(|_| v.clone()).collect();
    let idx = build_l2(&data, 2, 2, 4, 99);
    let (res, _) = idx.range(&v, 0.0).unwrap();
    assert_eq!(res.len(), 20, "all duplicates must be returned");
}

/// Split correctness under adversarial insert order: ascending, descending,
/// interleaved — range results stay exact.
#[test]
fn insert_order_does_not_change_results() {
    let data = random_data(120, 3, 5);
    let mut orders: Vec<Vec<usize>> = vec![(0..120).collect(), (0..120).rev().collect()];
    let mut interleaved: Vec<usize> = Vec::new();
    for i in 0..60 {
        interleaved.push(i);
        interleaved.push(119 - i);
    }
    orders.push(interleaved);

    let cfg = MIndexConfig {
        num_pivots: 6,
        max_level: 2,
        bucket_capacity: 8,
        strategy: RoutingStrategy::Distances,
    };
    let pv = select_pivots(&data, 6, &L2, PivotSelection::Random, 42);
    let q = &data[17];
    let mut answers = Vec::new();
    for order in &orders {
        let mut idx = PlainMIndex::new(cfg, pv.clone(), L2, MemoryStore::new()).unwrap();
        for &i in order {
            idx.insert(ObjectId(i as u64), &data[i]).unwrap();
        }
        let (res, _) = idx.range(q, 4.0).unwrap();
        answers.push(res);
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[0], answers[2]);
}
