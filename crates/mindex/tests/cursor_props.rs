//! Property tests for the lazy [`CandidateCursor`]: streaming must be
//! invisible. Every cursor — both routing strategies, k-NN and range —
//! yields candidates in **nondecreasing bound order**, `peek_bound` always
//! names the next yield without decoding it, and draining a cursor
//! reproduces the eager candidate functions **byte for byte** (ids,
//! payloads, bound bits, and the full `SearchStats`), since the eager
//! functions are the wire the encrypted client was built against.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_metric::{select_pivots, Metric, PivotSelection, Vector, L2};
use simcloud_mindex::{
    CandidateCursor, IndexEntry, MIndex, MIndexConfig, PromiseEvaluator, Routing, RoutingStrategy,
    SearchStats,
};
use simcloud_storage::MemoryStore;

fn random_data(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Vector::new((0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect()))
        .collect()
}

struct Built {
    idx: MIndex<MemoryStore>,
    pivots: Vec<Vector>,
    data: Vec<Vector>,
}

fn build(
    n: usize,
    dim: usize,
    num_pivots: usize,
    max_level: usize,
    cap: usize,
    seed: u64,
    strategy: RoutingStrategy,
) -> Built {
    let data = random_data(n, dim, seed);
    let pivots = select_pivots(&data, num_pivots, &L2, PivotSelection::Random, seed ^ 0xc0);
    let cfg = MIndexConfig {
        num_pivots: pivots.len(),
        max_level: max_level.min(pivots.len()),
        bucket_capacity: cap,
        strategy,
    };
    let mut idx = MIndex::new(cfg, MemoryStore::new()).unwrap();
    for (i, v) in data.iter().enumerate() {
        let ds: Vec<f64> = pivots.iter().map(|p| L2.distance(v, p)).collect();
        let routing = match strategy {
            RoutingStrategy::Distances => Routing::from_distances(&ds),
            RoutingStrategy::Permutation => Routing::permutation_prefix(&ds, ds.len()),
        };
        idx.insert(IndexEntry::new(i as u64, routing, vec![i as u8; 4]))
            .unwrap();
    }
    Built { idx, pivots, data }
}

fn query_distances(b: &Built, seed: u64) -> Vec<f64> {
    let q = &b.data[seed as usize % b.data.len()];
    b.pivots.iter().map(|p| L2.distance(q, p)).collect()
}

fn evaluator(strategy: RoutingStrategy, ds: &[f64]) -> PromiseEvaluator {
    match strategy {
        RoutingStrategy::Distances => PromiseEvaluator::from_distances(ds.to_vec()),
        RoutingStrategy::Permutation => {
            match Routing::permutation_prefix(ds, ds.len()) {
                Routing::Permutation(p) => PromiseEvaluator::from_permutation(p),
                // permutation_prefix always builds a permutation routing.
                Routing::Distances(_) => unreachable!("permutation_prefix built distances"),
            }
        }
    }
}

/// Streams a cursor to at most `cap` candidates, checking on every pull
/// that `peek_bound` predicted the yielded bound (bit-exact, without
/// decoding) and that `remaining` counts down. Returns the drained list
/// and the cursor's final stats with `candidates` set like
/// `collect_up_to` sets it.
fn stream_checked(
    mut cursor: CandidateCursor,
    cap: Option<usize>,
) -> Result<(Vec<(IndexEntry, f64)>, SearchStats), TestCaseError> {
    let mut out = Vec::new();
    loop {
        if let Some(c) = cap {
            if out.len() >= c {
                break;
            }
        }
        let predicted = cursor.peek_bound();
        let before = cursor.remaining();
        match cursor.next_candidate().unwrap() {
            Some((entry, bound)) => {
                // peek_bound must name the next yield, bit-exact.
                prop_assert_eq!(predicted.map(f64::to_bits), Some(bound.to_bits()));
                prop_assert_eq!(cursor.remaining(), before - 1);
                out.push((entry, bound));
            }
            None => {
                prop_assert!(predicted.is_none(), "peek on an exhausted cursor");
                prop_assert_eq!(before, 0);
                break;
            }
        }
    }
    let mut stats = cursor.stats();
    stats.candidates = out.len() as u64;
    Ok((out, stats))
}

fn assert_identical(
    streamed: &[(IndexEntry, f64)],
    eager: &[(IndexEntry, f64)],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(streamed.len(), eager.len());
    for ((se, sb), (ee, eb)) in streamed.iter().zip(eager) {
        prop_assert_eq!(se.id, ee.id);
        prop_assert_eq!(&se.payload, &ee.payload);
        prop_assert_eq!(&se.routing, &ee.routing);
        prop_assert_eq!(sb.to_bits(), eb.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// k-NN cursors yield nondecreasing bounds and reproduce the eager
    /// `knn_candidates` list byte for byte — under both routing strategies
    /// and arbitrary tree shapes, including the `FIRST_CELL_ONLY`
    /// sentinel (`cand_size = 0`).
    #[test]
    fn knn_cursor_streams_eager_list_in_bound_order(
        seed in 0u64..5000,
        n in 20usize..160,
        dim in 1usize..5,
        pivots in 2usize..9,
        max_level in 1usize..3,
        cap in 2usize..24,
        cand_size in 0usize..64,
        permutation in 0u8..2,
    ) {
        let strategy = if permutation == 1 {
            RoutingStrategy::Permutation
        } else {
            RoutingStrategy::Distances
        };
        let b = build(n, dim, pivots.min(n), max_level, cap, seed, strategy);
        let ds = query_distances(&b, seed.wrapping_mul(31));
        let ev = evaluator(strategy, &ds);

        let (eager, eager_stats) = b.idx.knn_candidates(&ev, cand_size).unwrap();
        prop_assert!(
            eager.windows(2).all(|w| w[0].1 <= w[1].1),
            "eager list must be bound-sorted"
        );

        // Same cap rule as the eager wrapper: 0 = FIRST_CELL_ONLY drains
        // the whole staged cell.
        let pull_cap = if cand_size == 0 { None } else { Some(cand_size) };
        let cursor = b.idx.knn_cursor(&ev, cand_size).unwrap();
        let (streamed, streamed_stats) = stream_checked(cursor, pull_cap)?;
        prop_assert!(streamed.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_identical(&streamed, &eager)?;
        prop_assert_eq!(streamed_stats, eager_stats);
    }

    /// Range cursors yield nondecreasing bounds and reproduce the eager
    /// `range_candidates` list byte for byte.
    #[test]
    fn range_cursor_streams_eager_list_in_bound_order(
        seed in 0u64..5000,
        n in 20usize..160,
        dim in 1usize..5,
        pivots in 2usize..9,
        max_level in 1usize..3,
        cap in 2usize..24,
        radius in 0.0f64..6.0,
    ) {
        let b = build(n, dim, pivots.min(n), max_level, cap, seed, RoutingStrategy::Distances);
        let ds = query_distances(&b, seed.wrapping_mul(17));

        let (eager, eager_stats) = b.idx.range_candidates(&ds, radius).unwrap();
        prop_assert!(
            eager.windows(2).all(|w| w[0].1 <= w[1].1),
            "eager list must be bound-sorted"
        );

        let cursor = b.idx.range_cursor(&ds, radius).unwrap();
        let (streamed, streamed_stats) = stream_checked(cursor, None)?;
        prop_assert!(streamed.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_identical(&streamed, &eager)?;
        prop_assert_eq!(streamed_stats, eager_stats);
    }

    /// The lazy contract: a capped pull decodes at most one prefetch chunk
    /// beyond what was pulled — never the whole staged universe.
    #[test]
    fn capped_pull_decodes_at_most_one_chunk_over(
        seed in 0u64..5000,
        n in 64usize..200,
        pulled in 1usize..16,
    ) {
        let b = build(n, 3, 4, 2, 8, seed, RoutingStrategy::Distances);
        let ds = query_distances(&b, seed.wrapping_mul(13));
        let ev = PromiseEvaluator::from_distances(ds);
        let mut cursor = b.idx.knn_cursor(&ev, n).unwrap();
        let staged = cursor.remaining();
        for _ in 0..pulled {
            cursor.next_candidate().unwrap();
        }
        // Decode-chunk size is 32; generation may round up to it.
        let generated = cursor.stats().candidates_generated as usize;
        prop_assert!(
            generated <= pulled.min(staged) + 32,
            "{generated} decoded for {pulled} pulls over {staged} staged"
        );
    }
}
