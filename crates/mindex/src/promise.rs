//! Cell "promise" ranking for approximate k-NN (paper Alg. 4 line 3:
//! "next promising Voronoi cell from the index").
//!
//! A cell's promise is a penalty — lower is more promising. Two variants
//! match the two query encodings of Alg. 2:
//!
//! * **from distances** (precise strategy): the penalty of prefix
//!   `(i_1 … i_l)` is `Σ_k w_k · (d(q, p_{i_k}) − d_min(q))` with
//!   `w_k = 2^{-(k-1)}` — cells led by pivots close to the query rank first,
//!   deeper prefix entries matter geometrically less. This is the M-Index
//!   heuristic's behaviour: the first permutation position dominates.
//! * **from the query permutation** (approximate strategy): the penalty is
//!   `Σ_k w_k · |rank_q(i_k) − (k−1)|` — a weighted Spearman-footrule
//!   between the cell prefix and the query's pivot ranking, as used by
//!   permutation-prefix indexes (Esuli's PP-Index, Chávez et al.).
//!
//! Both penalties are *monotone in prefix extension* (appending a level adds
//! a non-negative term), so a best-first traversal that expands the cheapest
//! node first enumerates leaves in exact penalty order.

use simcloud_metric::PivotPermutation;

/// Weight of prefix level `k` (0-based): `2^-k`.
#[inline]
fn level_weight(k: usize) -> f64 {
    // beyond 52 levels the weight underflows; prefixes are ≤ num_pivots and
    // practically ≤ 4, so this is plenty
    (0.5f64).powi(k as i32)
}

/// Penalty contribution of choosing pivot `pivot` at 0-based level `k`,
/// given the query–pivot distances and their minimum.
#[inline]
pub fn distance_penalty_step(query_distances: &[f64], d_min: f64, pivot: u16, k: usize) -> f64 {
    level_weight(k) * (query_distances[pivot as usize] - d_min).max(0.0)
}

/// Penalty contribution from the query permutation: the displacement of
/// `pivot` between the cell prefix position `k` and its rank in the query
/// permutation. Pivots missing from a truncated query permutation get the
/// maximal displacement `perm.len()`.
#[inline]
pub fn permutation_penalty_step(query_perm: &PivotPermutation, pivot: u16, k: usize) -> f64 {
    let rank = query_perm.rank_of(pivot).unwrap_or(query_perm.len());
    level_weight(k) * (rank as f64 - k as f64).abs()
}

/// Query-side promise evaluator: precomputed state for ranking cells.
#[derive(Debug, Clone)]
pub enum PromiseEvaluator {
    /// Built from query–pivot distances.
    Distances {
        /// Query–pivot distances.
        distances: Vec<f64>,
        /// Minimum of `distances`.
        d_min: f64,
    },
    /// Built from the query pivot permutation.
    Permutation(PivotPermutation),
}

impl PromiseEvaluator {
    /// From query–pivot distances.
    pub fn from_distances(distances: Vec<f64>) -> Self {
        let d_min = distances.iter().cloned().fold(f64::INFINITY, f64::min);
        PromiseEvaluator::Distances { distances, d_min }
    }

    /// From the query pivot permutation.
    pub fn from_permutation(perm: PivotPermutation) -> Self {
        PromiseEvaluator::Permutation(perm)
    }

    /// Penalty added when a prefix is extended with `pivot` at level `k`
    /// (0-based).
    pub fn step(&self, pivot: u16, k: usize) -> f64 {
        match self {
            PromiseEvaluator::Distances { distances, d_min } => {
                distance_penalty_step(distances, *d_min, pivot, k)
            }
            PromiseEvaluator::Permutation(p) => permutation_penalty_step(p, pivot, k),
        }
    }

    /// Penalty of a whole prefix.
    pub fn prefix_penalty(&self, prefix: &[u16]) -> f64 {
        prefix
            .iter()
            .enumerate()
            .map(|(k, &p)| self.step(p, k))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud_metric::permutation_from_distances;

    #[test]
    fn closest_pivot_cell_has_zero_first_step() {
        let d = vec![0.9, 0.2, 0.5];
        let ev = PromiseEvaluator::from_distances(d);
        assert_eq!(ev.step(1, 0), 0.0, "closest pivot costs nothing");
        assert!(ev.step(0, 0) > ev.step(2, 0));
    }

    #[test]
    fn distance_penalty_orders_cells_by_query_proximity() {
        let d = vec![3.0, 1.0, 2.0];
        let ev = PromiseEvaluator::from_distances(d);
        let p1 = ev.prefix_penalty(&[1, 2]);
        let p2 = ev.prefix_penalty(&[2, 1]);
        let p3 = ev.prefix_penalty(&[0, 1]);
        assert!(p1 < p2, "cell led by closest pivot ranks first");
        assert!(p2 < p3);
    }

    #[test]
    fn deeper_levels_weigh_less() {
        let d = vec![0.0, 10.0];
        let ev = PromiseEvaluator::from_distances(d);
        let shallow = ev.step(1, 0);
        let deep = ev.step(1, 3);
        assert!(deep < shallow);
        assert!((shallow / deep - 8.0).abs() < 1e-9, "w_0/w_3 = 8");
    }

    #[test]
    fn penalty_is_monotone_in_prefix_extension() {
        let ev = PromiseEvaluator::from_distances(vec![0.3, 0.8, 0.1, 0.5]);
        let base = ev.prefix_penalty(&[2]);
        for next in [0u16, 1, 3] {
            assert!(ev.prefix_penalty(&[2, next]) >= base);
        }
    }

    #[test]
    fn permutation_penalty_zero_for_matching_prefix() {
        let q = permutation_from_distances(&[0.4, 0.1, 0.9, 0.2]);
        // q order: [1, 3, 0, 2]
        let ev = PromiseEvaluator::from_permutation(q);
        assert_eq!(ev.prefix_penalty(&[1, 3]), 0.0);
        assert!(ev.prefix_penalty(&[3, 1]) > 0.0);
        assert!(ev.prefix_penalty(&[2]) > ev.prefix_penalty(&[0]) - 1e-12);
    }

    #[test]
    fn truncated_query_permutation_penalizes_missing_pivots() {
        let mut q = permutation_from_distances(&[0.4, 0.1, 0.9, 0.2]);
        q.truncate(2); // keeps [1, 3]
        let ev = PromiseEvaluator::from_permutation(q);
        let missing = ev.step(2, 0);
        let present = ev.step(3, 0);
        assert!(missing > present);
        assert_eq!(missing, 2.0, "missing rank = perm length");
    }
}
