//! The dynamic Voronoi cell tree (paper §4.1, Figures 2 and 3).
//!
//! Level 1 partitions the space into one cell per closest pivot; a cell
//! whose bucket exceeds capacity splits one level deeper, re-partitioning
//! its objects by the *next* pivot in their permutation — the recursive
//! Voronoi partitioning. Leaves own storage buckets; internal nodes route
//! by permutation prefix.

use std::collections::BTreeMap;

use simcloud_storage::BucketId;

/// A node of the cell tree. Children are keyed by pivot index (the next
/// entry of the permutation prefix); `BTreeMap` keeps traversal order
/// deterministic.
#[derive(Debug)]
pub enum Node {
    /// Inner cell that has been split (paper Fig. 3: e.g. `C_1` split into
    /// `C_1,2 … C_1,n`).
    Internal {
        /// Children keyed by next pivot index.
        children: BTreeMap<u16, Node>,
    },
    /// Leaf cell holding a bucket of records.
    Leaf(LeafCell),
}

/// Leaf metadata. Distance bounds are maintained only under the
/// distance-routing strategy; they power the range-pivot pruning rule.
#[derive(Debug, Clone)]
pub struct LeafCell {
    /// Bucket owning this cell's records.
    pub bucket: BucketId,
    /// Number of records in the bucket (cached).
    pub count: usize,
    /// Depth of this leaf = length of its permutation prefix.
    pub level: usize,
    /// Per-prefix-level (min, max) of `d(o, p_prefix[k])` over stored
    /// objects; empty when the index stores permutations only.
    pub dist_bounds: Vec<(f64, f64)>,
}

impl LeafCell {
    fn new(bucket: BucketId, level: usize) -> Self {
        Self {
            bucket,
            count: 0,
            level,
            dist_bounds: Vec::new(),
        }
    }

    /// Folds an object's prefix distances into the bounds.
    pub fn update_bounds(&mut self, prefix_distances: &[f64]) {
        if self.dist_bounds.is_empty() {
            self.dist_bounds = prefix_distances.iter().map(|&d| (d, d)).collect();
        } else {
            for (slot, &d) in self.dist_bounds.iter_mut().zip(prefix_distances) {
                if d < slot.0 {
                    slot.0 = d;
                }
                if d > slot.1 {
                    slot.1 = d;
                }
            }
        }
    }
}

/// The cell tree: a forest rooted at level-1 Voronoi cells, plus the bucket
/// id allocator.
#[derive(Debug)]
pub struct CellTree {
    /// Level-1 cells keyed by closest-pivot index.
    roots: BTreeMap<u16, Node>,
    next_bucket: u64,
}

/// Statistics of the tree shape (reported by experiment harnesses; the
/// shape determines candidate-set granularity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeShape {
    /// Number of leaf cells.
    pub leaves: usize,
    /// Number of internal (split) cells.
    pub internal: usize,
    /// Maximum leaf depth.
    pub max_depth: usize,
    /// Total records across leaves.
    pub records: usize,
}

impl Default for CellTree {
    fn default() -> Self {
        Self::new()
    }
}

impl CellTree {
    /// Empty tree.
    pub fn new() -> Self {
        Self {
            roots: BTreeMap::new(),
            next_bucket: 1,
        }
    }

    /// Allocates a fresh bucket id.
    pub fn alloc_bucket(&mut self) -> BucketId {
        let id = BucketId(self.next_bucket);
        self.next_bucket += 1;
        id
    }

    /// Locates the leaf for a permutation prefix, creating the level-1 cell
    /// on first touch. Returns the leaf and its prefix depth.
    ///
    /// `prefix` must be at least as long as the deepest existing cell on the
    /// routing path (enforced by the index configuration's `max_level`).
    pub fn locate_mut(&mut self, prefix: &[u16]) -> &mut LeafCell {
        assert!(!prefix.is_empty(), "empty permutation prefix");
        fn alloc(next: &mut u64) -> BucketId {
            let id = BucketId(*next);
            *next += 1;
            id
        }
        let roots = &mut self.roots;
        let next_bucket = &mut self.next_bucket;
        let first = prefix[0];
        let mut node = roots
            .entry(first)
            .or_insert_with(|| Node::Leaf(LeafCell::new(alloc(next_bucket), 1)));
        let mut depth = 1;
        loop {
            match node {
                Node::Leaf(leaf) => return leaf,
                Node::Internal { children } => {
                    let key = *prefix.get(depth).unwrap_or_else(|| {
                        panic!(
                            "permutation prefix of length {} too short for tree depth {}",
                            prefix.len(),
                            depth + 1
                        )
                    });
                    depth += 1;
                    node = children
                        .entry(key)
                        .or_insert_with(|| Node::Leaf(LeafCell::new(alloc(next_bucket), depth)));
                }
            }
        }
    }

    fn descend_mut<'a>(mut node: &'a mut Node, prefix: &[u16]) -> &'a mut Node {
        let mut depth = 1;
        loop {
            match node {
                Node::Leaf(_) => return node,
                Node::Internal { children } => {
                    let key = prefix[depth];
                    depth += 1;
                    node = children.get_mut(&key).expect("path exists");
                }
            }
        }
    }

    /// Replaces the leaf at `prefix` with an internal node and returns the
    /// replaced leaf (the index re-inserts its records one level deeper).
    pub fn split_leaf(&mut self, prefix: &[u16]) -> LeafCell {
        let first = prefix[0];
        let node = Self::descend_mut(self.roots.get_mut(&first).expect("root exists"), prefix);
        match std::mem::replace(
            node,
            Node::Internal {
                children: BTreeMap::new(),
            },
        ) {
            Node::Leaf(leaf) => leaf,
            Node::Internal { .. } => unreachable!("split target must be a leaf"),
        }
    }

    /// Level-1 cells keyed by closest-pivot index (read access for query
    /// traversals).
    pub fn roots(&self) -> &BTreeMap<u16, Node> {
        &self.roots
    }

    /// Visits every leaf with its permutation prefix.
    pub fn for_each_leaf<'a>(&'a self, mut f: impl FnMut(&[u16], &'a LeafCell)) {
        let mut prefix = Vec::new();
        for (&k, node) in &self.roots {
            prefix.push(k);
            Self::walk(node, &mut prefix, &mut f);
            prefix.pop();
        }
    }

    fn walk<'a>(node: &'a Node, prefix: &mut Vec<u16>, f: &mut impl FnMut(&[u16], &'a LeafCell)) {
        match node {
            Node::Leaf(leaf) => f(prefix, leaf),
            Node::Internal { children } => {
                for (&k, child) in children {
                    prefix.push(k);
                    Self::walk(child, prefix, f);
                    prefix.pop();
                }
            }
        }
    }

    /// Tree shape statistics.
    pub fn shape(&self) -> TreeShape {
        let mut shape = TreeShape::default();
        let mut stack: Vec<&Node> = self.roots.values().collect();
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf(l) => {
                    shape.leaves += 1;
                    shape.records += l.count;
                    shape.max_depth = shape.max_depth.max(l.level);
                }
                Node::Internal { children } => {
                    shape.internal += 1;
                    stack.extend(children.values());
                }
            }
        }
        shape
    }

    /// Renders an ASCII sketch of the tree (used by `examples/voronoi_demo`
    /// to reproduce the paper's Figure 3).
    pub fn render(&self, pivot_labels: bool) -> String {
        let mut out = String::new();
        self.for_each_leaf(|prefix, leaf| {
            let path: Vec<String> = prefix
                .iter()
                .map(|p| {
                    if pivot_labels {
                        format!("p{}", p + 1)
                    } else {
                        (p + 1).to_string()
                    }
                })
                .collect();
            out.push_str(&format!(
                "C_{{{}}} (level {}, {} objects)\n",
                path.join(","),
                leaf.level,
                leaf.count
            ));
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_creates_level1_cells() {
        let mut t = CellTree::new();
        let l = t.locate_mut(&[3, 1, 2]);
        assert_eq!(l.level, 1);
        l.count = 5;
        let l2 = t.locate_mut(&[3, 0, 1]);
        assert_eq!(l2.count, 5, "same level-1 cell (closest pivot 3)");
        let l3 = t.locate_mut(&[1, 3, 2]);
        assert_eq!(l3.count, 0, "different closest pivot, different cell");
        assert_eq!(t.shape().leaves, 2);
    }

    #[test]
    fn distinct_buckets_per_cell() {
        let mut t = CellTree::new();
        let b1 = t.locate_mut(&[0, 1]).bucket;
        let b2 = t.locate_mut(&[1, 0]).bucket;
        assert_ne!(b1, b2);
    }

    #[test]
    fn split_replaces_leaf_and_routes_deeper() {
        let mut t = CellTree::new();
        t.locate_mut(&[2, 0, 1]).count = 10;
        let old = t.split_leaf(&[2]);
        assert_eq!(old.count, 10);
        assert_eq!(old.level, 1);
        // After the split, routing descends to level 2 children.
        let l = t.locate_mut(&[2, 0, 1]);
        assert_eq!(l.level, 2);
        assert_eq!(l.count, 0);
        let l2 = t.locate_mut(&[2, 1, 0]);
        assert_eq!(l2.level, 2);
        let shape = t.shape();
        assert_eq!(shape.internal, 1);
        assert_eq!(shape.leaves, 2);
        assert_eq!(shape.max_depth, 2);
    }

    #[test]
    fn nested_splits() {
        let mut t = CellTree::new();
        t.locate_mut(&[0, 1, 2]);
        t.split_leaf(&[0]);
        t.locate_mut(&[0, 1, 2]);
        t.split_leaf(&[0, 1]);
        let l = t.locate_mut(&[0, 1, 2]);
        assert_eq!(l.level, 3);
        assert_eq!(t.shape().max_depth, 3);
        assert_eq!(t.shape().internal, 2);
    }

    #[test]
    fn for_each_leaf_reports_prefixes() {
        let mut t = CellTree::new();
        t.locate_mut(&[1, 0]);
        t.locate_mut(&[0, 1]);
        t.split_leaf(&[0]);
        t.locate_mut(&[0, 1]);
        t.locate_mut(&[0, 2]);
        let mut seen = Vec::new();
        t.for_each_leaf(|prefix, _| seen.push(prefix.to_vec()));
        assert!(seen.contains(&vec![1]));
        assert!(seen.contains(&vec![0, 1]));
        assert!(seen.contains(&vec![0, 2]));
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn bounds_updates() {
        let mut leaf = LeafCell::new(BucketId(1), 2);
        leaf.update_bounds(&[1.0, 5.0]);
        leaf.update_bounds(&[3.0, 2.0]);
        assert_eq!(leaf.dist_bounds, vec![(1.0, 3.0), (2.0, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_prefix_panics_after_split() {
        let mut t = CellTree::new();
        t.locate_mut(&[0, 1]);
        t.split_leaf(&[0]);
        let _ = t.locate_mut(&[0]); // needs depth 2 now
    }

    #[test]
    fn render_mentions_cells() {
        let mut t = CellTree::new();
        t.locate_mut(&[1, 0]).count = 3;
        let s = t.render(true);
        assert!(s.contains("C_{p2}"), "render output: {s}");
        assert!(s.contains("3 objects"));
    }
}
