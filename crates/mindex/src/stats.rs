//! Search and index statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-query search statistics — the server-side cost drivers the paper's
/// analysis discusses (cells accessed, filtering effectiveness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Leaf cells whose buckets were read.
    pub cells_visited: u64,
    /// Cells (subtrees) pruned by the double-pivot constraint.
    pub pruned_hyperplane: u64,
    /// Leaves pruned by the range-pivot constraint.
    pub pruned_range_pivot: u64,
    /// Entries read from visited buckets.
    pub entries_scanned: u64,
    /// Entries discarded by object pivot filtering (Alg. 3 lines 5–7).
    pub entries_filtered: u64,
    /// Entries returned in the candidate set.
    pub candidates: u64,
    /// Entries actually *materialized* (payload decoded) by candidate
    /// cursors. With the eager path this equals the gathered-set size;
    /// with the streaming frontier a coordinator stops pulling at the
    /// global budget, so the per-shard sum directly measures work
    /// amplification — the quantity the shard bench asserts stays
    /// sub-linear in the shard count.
    pub candidates_generated: u64,
}

impl SearchStats {
    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.cells_visited += other.cells_visited;
        self.pruned_hyperplane += other.pruned_hyperplane;
        self.pruned_range_pivot += other.pruned_range_pivot;
        self.entries_scanned += other.entries_scanned;
        self.entries_filtered += other.entries_filtered;
        self.candidates += other.candidates;
        self.candidates_generated += other.candidates_generated;
    }

    /// Folds one *fan-out sub-query's* stats in — the aggregation a
    /// scatter-gather search needs when several shards answer **one**
    /// query. All cost counters (bucket reads, pruning, filtering) sum;
    /// `candidates` deliberately does **not**: the per-shard candidate
    /// lists are merged and capped afterwards, so the caller sets
    /// `candidates` from the merged list's length. Summing it here would
    /// report up to `shards × cand_size` candidates for a query whose
    /// answer carries `cand_size`.
    ///
    /// `candidates_generated` *does* sum: it is a work counter (entries a
    /// shard actually materialized), not a result-set size, and its whole
    /// point is exposing the aggregate generation cost of a fan-out.
    pub fn merge_from(&mut self, shard: &SearchStats) {
        self.cells_visited += shard.cells_visited;
        self.pruned_hyperplane += shard.pruned_hyperplane;
        self.pruned_range_pivot += shard.pruned_range_pivot;
        self.entries_scanned += shard.entries_scanned;
        self.entries_filtered += shard.entries_filtered;
        self.candidates_generated += shard.candidates_generated;
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cells visited ({} pruned hyperplane, {} pruned range), {} scanned, {} filtered, {} candidates ({} generated)",
            self.cells_visited,
            self.pruned_hyperplane,
            self.pruned_range_pivot,
            self.entries_scanned,
            self.entries_filtered,
            self.candidates,
            self.candidates_generated
        )
    }
}

/// Thread-safe accumulator of [`SearchStats`] — the shape a *concurrent*
/// server needs: many query threads fold their per-query stats in without a
/// lock, accounting readers take a consistent-enough snapshot.
///
/// Each counter is an independent `AtomicU64` with relaxed ordering: sums
/// are exact once all writers are quiescent (what the tests and the cost
/// tables rely on), while a mid-flight snapshot may mix counters from
/// different in-progress queries — acceptable for monitoring.
#[derive(Debug, Default)]
pub struct SharedSearchStats {
    cells_visited: AtomicU64,
    pruned_hyperplane: AtomicU64,
    pruned_range_pivot: AtomicU64,
    entries_scanned: AtomicU64,
    entries_filtered: AtomicU64,
    candidates: AtomicU64,
    candidates_generated: AtomicU64,
}

impl SharedSearchStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one query's stats in (lock-free).
    pub fn add(&self, s: &SearchStats) {
        self.cells_visited
            .fetch_add(s.cells_visited, Ordering::Relaxed);
        self.pruned_hyperplane
            .fetch_add(s.pruned_hyperplane, Ordering::Relaxed);
        self.pruned_range_pivot
            .fetch_add(s.pruned_range_pivot, Ordering::Relaxed);
        self.entries_scanned
            .fetch_add(s.entries_scanned, Ordering::Relaxed);
        self.entries_filtered
            .fetch_add(s.entries_filtered, Ordering::Relaxed);
        self.candidates.fetch_add(s.candidates, Ordering::Relaxed);
        self.candidates_generated
            .fetch_add(s.candidates_generated, Ordering::Relaxed);
    }

    /// Point-in-time snapshot as a plain stats block.
    pub fn snapshot(&self) -> SearchStats {
        SearchStats {
            cells_visited: self.cells_visited.load(Ordering::Relaxed),
            pruned_hyperplane: self.pruned_hyperplane.load(Ordering::Relaxed),
            pruned_range_pivot: self.pruned_range_pivot.load(Ordering::Relaxed),
            entries_scanned: self.entries_scanned.load(Ordering::Relaxed),
            entries_filtered: self.entries_filtered.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            candidates_generated: self.candidates_generated.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_stats_accumulate_across_threads() {
        let shared = SharedSearchStats::new();
        let one = SearchStats {
            cells_visited: 1,
            pruned_hyperplane: 2,
            pruned_range_pivot: 3,
            entries_scanned: 4,
            entries_filtered: 5,
            candidates: 6,
            candidates_generated: 7,
        };
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        shared.add(&one);
                    }
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.cells_visited, 400);
        assert_eq!(snap.candidates, 2400);
        assert_eq!(snap.candidates_generated, 2800);
    }

    /// The fan-out helper sums every per-shard cost counter but leaves
    /// `candidates` to the merge step that caps the combined list — the
    /// regression this guards: a sharded query must not report only the
    /// last shard's bucket reads, nor the uncapped candidate sum.
    #[test]
    fn merge_from_sums_costs_but_not_candidates() {
        let mut merged = SearchStats::default();
        for shard in [
            SearchStats {
                cells_visited: 2,
                pruned_hyperplane: 1,
                pruned_range_pivot: 0,
                entries_scanned: 40,
                entries_filtered: 10,
                candidates: 30,
                candidates_generated: 12,
            },
            SearchStats {
                cells_visited: 3,
                pruned_hyperplane: 4,
                pruned_range_pivot: 2,
                entries_scanned: 60,
                entries_filtered: 20,
                candidates: 30,
                candidates_generated: 8,
            },
        ] {
            merged.merge_from(&shard);
        }
        assert_eq!(merged.cells_visited, 5);
        assert_eq!(merged.pruned_hyperplane, 5);
        assert_eq!(merged.pruned_range_pivot, 2);
        assert_eq!(merged.entries_scanned, 100, "bucket reads must sum");
        assert_eq!(merged.entries_filtered, 30);
        assert_eq!(merged.candidates, 0, "set by the capped merge, not summed");
        assert_eq!(
            merged.candidates_generated, 20,
            "generation work sums across the fan-out"
        );
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = SearchStats {
            cells_visited: 1,
            pruned_hyperplane: 2,
            pruned_range_pivot: 3,
            entries_scanned: 4,
            entries_filtered: 5,
            candidates: 6,
            candidates_generated: 7,
        };
        a.merge(&a.clone());
        assert_eq!(a.cells_visited, 2);
        assert_eq!(a.candidates, 12);
        assert_eq!(a.candidates_generated, 14);
        assert!(a.to_string().contains("2 cells visited"));
    }
}
