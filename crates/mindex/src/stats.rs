//! Search and index statistics.

/// Per-query search statistics — the server-side cost drivers the paper's
/// analysis discusses (cells accessed, filtering effectiveness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Leaf cells whose buckets were read.
    pub cells_visited: u64,
    /// Cells (subtrees) pruned by the double-pivot constraint.
    pub pruned_hyperplane: u64,
    /// Leaves pruned by the range-pivot constraint.
    pub pruned_range_pivot: u64,
    /// Entries read from visited buckets.
    pub entries_scanned: u64,
    /// Entries discarded by object pivot filtering (Alg. 3 lines 5–7).
    pub entries_filtered: u64,
    /// Entries returned in the candidate set.
    pub candidates: u64,
}

impl SearchStats {
    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.cells_visited += other.cells_visited;
        self.pruned_hyperplane += other.pruned_hyperplane;
        self.pruned_range_pivot += other.pruned_range_pivot;
        self.entries_scanned += other.entries_scanned;
        self.entries_filtered += other.entries_filtered;
        self.candidates += other.candidates;
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cells visited ({} pruned hyperplane, {} pruned range), {} scanned, {} filtered, {} candidates",
            self.cells_visited,
            self.pruned_hyperplane,
            self.pruned_range_pivot,
            self.entries_scanned,
            self.entries_filtered,
            self.candidates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_componentwise() {
        let mut a = SearchStats {
            cells_visited: 1,
            pruned_hyperplane: 2,
            pruned_range_pivot: 3,
            entries_scanned: 4,
            entries_filtered: 5,
            candidates: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.cells_visited, 2);
        assert_eq!(a.candidates, 12);
        assert!(a.to_string().contains("2 cells visited"));
    }
}
