//! M-Index configuration.

use serde::{Deserialize, Serialize};

use crate::entry::{IndexEntry, Routing};
use crate::index::MIndexError;

/// Which routing information records and queries carry (paper Alg. 1 lines
/// 3–7): the *precise* strategy stores full object–pivot distance vectors,
/// the *approximate* strategy stores only the pivot-permutation prefix.
///
/// The choice is a privacy/efficiency trade-off (§4.2–4.3): distances enable
/// server-side pivot filtering and precise range queries but leak more about
/// the data distribution; permutations leak only an ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingStrategy {
    /// Store object–pivot distances (enables precise range + pivot
    /// filtering).
    Distances,
    /// Store only the permutation prefix (approximate k-NN only).
    Permutation,
}

impl std::fmt::Display for RoutingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingStrategy::Distances => f.write_str("distances"),
            RoutingStrategy::Permutation => f.write_str("permutation"),
        }
    }
}

/// Parameters of an M-Index instance (paper Table 2 lists the evaluation's
/// values: bucket capacity 200/250/1000, 30/50/100 pivots).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MIndexConfig {
    /// Number of pivots `n`.
    pub num_pivots: usize,
    /// Maximum depth of the dynamic cell tree (maximum permutation-prefix
    /// length used for partitioning). The paper's M-Index uses small depths
    /// (2–3) because cell counts grow as n!/(n−l)!.
    pub max_level: usize,
    /// Leaf bucket capacity before a split is attempted.
    pub bucket_capacity: usize,
    /// Routing information stored in records.
    pub strategy: RoutingStrategy,
}

impl MIndexConfig {
    /// Sanity-checks the configuration; called by the index constructor.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_pivots == 0 {
            return Err("num_pivots must be positive".into());
        }
        if self.num_pivots > u16::MAX as usize {
            return Err("num_pivots exceeds u16 routing entries".into());
        }
        if self.max_level == 0 {
            return Err("max_level must be at least 1".into());
        }
        if self.max_level > self.num_pivots {
            return Err("max_level cannot exceed num_pivots".into());
        }
        if self.bucket_capacity == 0 {
            return Err("bucket_capacity must be positive".into());
        }
        Ok(())
    }

    /// Validates an entry's routing information against this configuration
    /// **without** an index instance — the check is a pure function of the
    /// config (strategy, pivot count, max level). The index's insert path
    /// delegates here, and a sharded deployment validates entries lock-free
    /// before reserving them in its shard-ownership map, with the same
    /// error precedence a direct insert has (shape errors are reported
    /// ahead of duplicate-id errors).
    pub fn validate_entry(&self, entry: &IndexEntry) -> Result<(), MIndexError> {
        match (&entry.routing, self.strategy) {
            (Routing::Distances(d), RoutingStrategy::Distances) => {
                if d.len() != self.num_pivots {
                    return Err(MIndexError::DimensionMismatch {
                        expected: self.num_pivots,
                        got: d.len(),
                    });
                }
            }
            (Routing::Permutation(p), RoutingStrategy::Permutation) => {
                if p.len() < self.max_level {
                    return Err(MIndexError::PrefixTooShort {
                        required: self.max_level,
                        got: p.len(),
                    });
                }
            }
            (_, configured) => {
                return Err(MIndexError::WrongStrategy {
                    required: configured,
                    configured,
                });
            }
        }
        Ok(())
    }

    /// The paper's YEAST configuration (Table 2): 30 pivots, capacity 200.
    pub fn yeast() -> Self {
        Self {
            num_pivots: 30,
            max_level: 3,
            bucket_capacity: 200,
            strategy: RoutingStrategy::Distances,
        }
    }

    /// The paper's HUMAN configuration (Table 2): 50 pivots, capacity 250.
    pub fn human() -> Self {
        Self {
            num_pivots: 50,
            max_level: 3,
            bucket_capacity: 250,
            strategy: RoutingStrategy::Distances,
        }
    }

    /// The paper's CoPhIR configuration (Table 2): 100 pivots, capacity 1000.
    pub fn cophir() -> Self {
        Self {
            num_pivots: 100,
            max_level: 4,
            bucket_capacity: 1000,
            strategy: RoutingStrategy::Distances,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_match_table2() {
        for (cfg, pivots, cap) in [
            (MIndexConfig::yeast(), 30, 200),
            (MIndexConfig::human(), 50, 250),
            (MIndexConfig::cophir(), 100, 1000),
        ] {
            cfg.validate().unwrap();
            assert_eq!(cfg.num_pivots, pivots);
            assert_eq!(cfg.bucket_capacity, cap);
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = MIndexConfig::yeast();
        c.num_pivots = 0;
        assert!(c.validate().is_err());
        let mut c = MIndexConfig::yeast();
        c.max_level = 0;
        assert!(c.validate().is_err());
        let mut c = MIndexConfig::yeast();
        c.max_level = 31;
        assert!(c.validate().is_err());
        let mut c = MIndexConfig::yeast();
        c.bucket_capacity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn strategy_display() {
        assert_eq!(RoutingStrategy::Distances.to_string(), "distances");
        assert_eq!(RoutingStrategy::Permutation.to_string(), "permutation");
    }
}
