//! Metric pruning rules for precise range search (paper Alg. 3 and §4.1).
//!
//! All three rules are consequences of the triangle inequality and are
//! therefore *safe*: they never discard a true result. The property tests in
//! `tests/` verify this against brute force on random data.
//!
//! 1. **Double-pivot (hyperplane) constraint** — an object assigned to pivot
//!    `p_i` at some level satisfies `d(o, p_i) ≤ d(o, p_j)` for every pivot
//!    `p_j` still available at that level. If
//!    `d(q, p_i) > min_j d(q, p_j) + 2r`, the query ball cannot reach the
//!    cell.
//! 2. **Range-pivot constraint** — a leaf stores `[r_min, r_max]` of
//!    `d(o, p_{i_k})` per prefix level; the ball misses the leaf if
//!    `d(q, p_{i_k}) − r > r_max` or `d(q, p_{i_k}) + r < r_min`.
//! 3. **Object pivot filtering** (Alg. 3 lines 5–7) — with stored distance
//!    vectors, `max_i |d(q,p_i) − d(o,p_i)|` lower-bounds `d(q,o)`; objects
//!    whose bound exceeds `r` are dropped without a distance computation.

/// Slack absorbing the `f32` quantization of *stored* distances so rules
/// comparing against them stay conservative. Stored values carry relative
/// error ≤ 2⁻²⁴ ≈ 6e-8; the term `1e-6·|x|` over-covers it 16×, and the
/// absolute `1e-4` floor handles tiny magnitudes. Query-side distances are
/// full `f64` and need no slack.
#[inline]
fn f32_slack(x: f64) -> f64 {
    1e-4 + 1e-6 * x.abs()
}

/// Double-pivot constraint: can a cell keyed by `pivot` (at a level where
/// `available_min` = min distance from the query to any pivot still
/// available at that level, including `pivot` itself) intersect the ball
/// `B(q, r)`? Returns `false` when the cell is safely prunable.
///
/// Both inputs are query-side `f64` values, but the *cell assignment* of
/// stored objects compared `f32`-quantized distances: an object whose true
/// closest pivot loses a near-tie after rounding sits in the "wrong" cell
/// by up to the quantization error, so the rule needs the same slack —
/// without it a boundary query (e.g. radius 0 at an indexed point whose
/// two nearest pivots almost tie) prunes the cell holding its answer.
#[inline]
pub fn hyperplane_may_intersect(d_q_pivot: f64, available_min: f64, radius: f64) -> bool {
    d_q_pivot <= available_min + 2.0 * radius + f32_slack(d_q_pivot.max(available_min))
}

/// Range-pivot constraint over a leaf's stored per-level bounds. `ds` are
/// the query–pivot distances for the leaf's prefix pivots, `bounds` the
/// corresponding `(r_min, r_max)` pairs. Returns `false` when prunable.
///
/// Bounds were folded from `f32`-quantized stored distances, so the
/// comparison is padded by a small `f32`-aware slack — without it, a query at an exact
/// boundary radius (e.g. the precise-k-NN completion radius `ρ_k`) can
/// prune the leaf holding the true neighbor.
#[inline]
pub fn range_pivot_may_intersect(ds: &[f64], bounds: &[(f64, f64)], radius: f64) -> bool {
    for (d, (lo, hi)) in ds.iter().zip(bounds) {
        if d - radius > *hi + f32_slack(*hi) || d + radius < *lo - f32_slack(*lo) {
            return false;
        }
    }
    true
}

/// Object pivot filtering: lower bound on `d(q, o)` from the shared pivot
/// distances. Only the first `min(len)` coordinates participate.
#[inline]
pub fn pivot_filter_lower_bound(query_ds: &[f64], object_ds: &[f32]) -> f64 {
    let mut lb = 0.0f64;
    for (q, o) in query_ds.iter().zip(object_ds) {
        let diff = (q - *o as f64).abs();
        if diff > lb {
            lb = diff;
        }
    }
    lb
}

/// Wire-safe variant of [`pivot_filter_lower_bound`]: each coordinate's
/// contribution is reduced by the `f32` quantization slack of the *stored*
/// distance, so the result is guaranteed `≤ d(q, o)` even though the stored
/// `d(o, p_i)` were rounded. This is the bound the server may ship to
/// clients that stop refining once the bound alone proves an object cannot
/// enter the result (lazy decrypt-on-demand refinement): an unsafe bound
/// there would not merely cost recall, it would *change answers*.
#[inline]
pub fn pivot_filter_safe_lower_bound(query_ds: &[f64], object_ds: &[f32]) -> f64 {
    let mut lb = 0.0f64;
    for (q, o) in query_ds.iter().zip(object_ds) {
        let o = *o as f64;
        let diff = (q - o).abs() - f32_slack(q.abs().max(o.abs()));
        if diff > lb {
            lb = diff;
        }
    }
    lb
}

/// Convenience: should the object be kept (lower bound within radius)?
///
/// The slack absorbs the f32 quantization of *stored* distances and must
/// therefore scale with the magnitude of the coordinates being compared —
/// not with `lb` or `radius`, which can both be ~0 (a zero-radius query at
/// an indexed point) while the stored values, and hence their rounding
/// error, are large.
#[inline]
pub fn pivot_filter_keep(query_ds: &[f64], object_ds: &[f32], radius: f64) -> bool {
    for (q, o) in query_ds.iter().zip(object_ds) {
        let o = *o as f64;
        if (q - o).abs() > radius + f32_slack(q.abs().max(o.abs())) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperplane_prunes_far_cells() {
        // q is 1.0 from the best pivot; a cell keyed by a pivot 5.0 away
        // cannot contain anything within r = 1.0.
        assert!(!hyperplane_may_intersect(5.0, 1.0, 1.0));
        assert!(hyperplane_may_intersect(2.9, 1.0, 1.0));
        // boundary: d = min + 2r exactly → may intersect
        assert!(hyperplane_may_intersect(3.0, 1.0, 1.0));
    }

    #[test]
    fn range_pivot_prunes_annulus_misses() {
        let bounds = [(2.0, 4.0)];
        assert!(!range_pivot_may_intersect(&[6.0], &bounds, 1.0)); // 5 > 4
        assert!(!range_pivot_may_intersect(&[0.5], &bounds, 1.0)); // 1.5 < 2
        assert!(range_pivot_may_intersect(&[4.5], &bounds, 1.0));
        assert!(range_pivot_may_intersect(&[3.0], &bounds, 0.0));
    }

    #[test]
    fn range_pivot_multi_level_any_miss_prunes() {
        let bounds = [(0.0, 10.0), (2.0, 3.0)];
        assert!(range_pivot_may_intersect(&[5.0, 2.5], &bounds, 0.1));
        assert!(!range_pivot_may_intersect(&[5.0, 9.0], &bounds, 0.1));
    }

    #[test]
    fn pivot_filter_bound_examples() {
        let q = [1.0, 5.0, 3.0];
        let o = [2.0f32, 5.0, 0.5];
        assert!((pivot_filter_lower_bound(&q, &o) - 2.5).abs() < 1e-9);
        assert!(pivot_filter_keep(&q, &o, 2.5));
        assert!(!pivot_filter_keep(&q, &o, 2.0));
    }

    #[test]
    fn pivot_filter_handles_length_mismatch() {
        // Query knows all pivots; object stored fewer — zip stops early.
        let q = [1.0, 2.0, 3.0];
        let o = [1.0f32];
        assert_eq!(pivot_filter_lower_bound(&q, &o), 0.0);
    }

    #[test]
    fn zero_radius_keeps_exact_match() {
        let q = [4.0, 2.0];
        let o = [4.0f32, 2.0];
        assert!(pivot_filter_keep(&q, &o, 0.0));
    }

    /// The wire-safe bound must stay below the *true* (pre-quantization)
    /// pivot difference, which itself lower-bounds `d(q, o)` — across
    /// magnitudes where `f32` rounding error is both absolute- and
    /// relative-dominated.
    #[test]
    fn safe_lower_bound_is_safe_under_f32_quantization() {
        let mut worst = 0.0f64;
        for i in 0..10_000u64 {
            // deterministic pseudo-random magnitudes over 8 decades
            let x = (i as f64 * 0.7391 + 0.13).fract();
            let scale = 10f64.powi((i % 8) as i32 - 2);
            let true_obj = (1.0 + x) * scale;
            let q = true_obj + (x - 0.5) * scale; // query distance nearby
            let stored = true_obj as f32; // what the server kept
            let safe = pivot_filter_safe_lower_bound(&[q], &[stored]);
            let true_diff = (q - true_obj).abs();
            assert!(
                safe <= true_diff + 1e-12,
                "unsafe bound {safe} > true diff {true_diff} at magnitude {scale}"
            );
            worst = worst.max(safe - true_diff);
        }
        assert!(worst <= 0.0, "bound exceeded a true difference by {worst}");
        // and it is not uselessly loose: far objects keep a positive bound
        assert!(pivot_filter_safe_lower_bound(&[10.0], &[2.0f32]) > 7.9);
    }

    /// The safe bound is the raw bound minus slack — never larger, never
    /// negative.
    #[test]
    fn safe_lower_bound_below_raw_bound() {
        for (q, o) in [
            (vec![1.0, 5.0, 3.0], vec![2.0f32, 5.0, 0.5]),
            (vec![0.0, 0.0], vec![0.0f32, 0.0]),
            (vec![1e6, 2.0], vec![1e6f32, 2.5]),
        ] {
            let raw = pivot_filter_lower_bound(&q, &o);
            let safe = pivot_filter_safe_lower_bound(&q, &o);
            assert!(safe <= raw, "safe {safe} > raw {raw}");
            assert!(safe >= 0.0);
        }
    }
}
