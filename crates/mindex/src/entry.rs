//! Index entries: routing information + opaque payload.
//!
//! This is the record format of Alg. 1:
//! `e := struct {distances, permutation, data}` — either the distance vector
//! or the permutation is present, never both, and `data` is opaque to the
//! server (sealed bytes in the encrypted deployment, an encoded vector in
//! the plain one).

use simcloud_metric::{permutation_from_distances, PivotPermutation};

/// Routing information the server indexes on.
#[derive(Debug, Clone, PartialEq)]
pub enum Routing {
    /// Object–pivot distances (precise strategy). Stored as `f32` — the
    /// paper's communication-cost accounting assumes compact records.
    Distances(Vec<f32>),
    /// Pivot-permutation prefix (approximate strategy).
    Permutation(PivotPermutation),
}

impl Routing {
    /// Builds distance routing from `f64` computations.
    pub fn from_distances(d: &[f64]) -> Self {
        Routing::Distances(d.iter().map(|&x| x as f32).collect())
    }

    /// Builds permutation routing of length `prefix_len` from distances.
    pub fn permutation_prefix(d: &[f64], prefix_len: usize) -> Self {
        let mut p = permutation_from_distances(d);
        p.truncate(prefix_len);
        Routing::Permutation(p)
    }

    /// The permutation this routing induces (full order for distances,
    /// stored prefix otherwise).
    pub fn permutation(&self) -> PivotPermutation {
        match self {
            Routing::Distances(d) => {
                let dd: Vec<f64> = d.iter().map(|&x| x as f64).collect();
                permutation_from_distances(&dd)
            }
            Routing::Permutation(p) => p.clone(),
        }
    }

    /// Distances if present.
    pub fn distances(&self) -> Option<&[f32]> {
        match self {
            Routing::Distances(d) => Some(d),
            Routing::Permutation(_) => None,
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Routing::Distances(d) => 1 + 2 + 4 * d.len(),
            Routing::Permutation(p) => 1 + p.encoded_len(),
        }
    }

    /// Appends the binary encoding (tag byte + body).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Routing::Distances(d) => {
                out.push(1);
                out.extend_from_slice(&(d.len() as u16).to_le_bytes());
                for &x in d {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Routing::Permutation(p) => {
                out.push(2);
                p.encode(out);
            }
        }
    }

    /// Decodes a routing; returns it and bytes consumed.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        let (tag, rest) = buf.split_first()?;
        match tag {
            1 => {
                let (len_bytes, rest) = rest.split_first_chunk::<2>()?;
                let n = u16::from_le_bytes(*len_bytes) as usize;
                let mut body = rest.get(..4 * n)?;
                let mut d = Vec::with_capacity(n);
                while let Some((c, tail)) = body.split_first_chunk::<4>() {
                    d.push(f32::from_le_bytes(*c));
                    body = tail;
                }
                Some((Routing::Distances(d), 3 + 4 * n))
            }
            2 => {
                let (p, used) = PivotPermutation::decode(rest)?;
                Some((Routing::Permutation(p), 1 + used))
            }
            _ => None,
        }
    }
}

/// One indexed entry: external id, routing info, opaque payload.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// External object id.
    pub id: u64,
    /// Routing info (distances or permutation prefix).
    pub routing: Routing,
    /// Opaque payload (sealed object / encoded vector).
    pub payload: Vec<u8>,
}

impl IndexEntry {
    /// Creates an entry.
    pub fn new(id: u64, routing: Routing, payload: Vec<u8>) -> Self {
        Self {
            id,
            routing,
            payload,
        }
    }

    /// Size of the record payload this entry produces.
    pub fn encoded_len(&self) -> usize {
        self.routing.encoded_len() + 4 + self.payload.len()
    }

    /// Serializes routing+payload into a storage record body.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.routing.encode(&mut out);
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Reconstructs an entry from a storage record.
    pub fn decode_payload(id: u64, buf: &[u8]) -> Option<Self> {
        let (routing, used) = Routing::decode(buf)?;
        let rest = buf.get(used..)?;
        let (len_bytes, rest) = rest.split_first_chunk::<4>()?;
        let len = u32::from_le_bytes(*len_bytes) as usize;
        let payload = rest.get(..len)?.to_vec();
        Some(Self {
            id,
            routing,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_routing_round_trip() {
        let r = Routing::from_distances(&[1.5, 2.25, 0.0]);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), r.encoded_len());
        let (back, used) = Routing::decode(&buf).unwrap();
        assert_eq!(back, r);
        assert_eq!(used, buf.len());
        assert_eq!(back.distances().unwrap(), &[1.5, 2.25, 0.0]);
    }

    #[test]
    fn permutation_routing_round_trip() {
        let r = Routing::permutation_prefix(&[0.9, 0.1, 0.5, 0.3], 3);
        match &r {
            Routing::Permutation(p) => assert_eq!(p.order(), &[1, 3, 2]),
            _ => panic!(),
        }
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (back, used) = Routing::decode(&buf).unwrap();
        assert_eq!(back, r);
        assert_eq!(used, buf.len());
        assert!(back.distances().is_none());
    }

    #[test]
    fn permutation_from_distance_routing() {
        let r = Routing::from_distances(&[0.9, 0.1, 0.5]);
        assert_eq!(r.permutation().order(), &[1, 2, 0]);
    }

    #[test]
    fn entry_payload_round_trip() {
        let e = IndexEntry::new(
            77,
            Routing::from_distances(&[3.0, 1.0]),
            vec![0xde, 0xad, 0xbe, 0xef],
        );
        let bytes = e.encode_payload();
        assert_eq!(bytes.len(), e.encoded_len());
        let back = IndexEntry::decode_payload(77, &bytes).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn entry_decode_rejects_truncation() {
        let e = IndexEntry::new(1, Routing::from_distances(&[1.0]), vec![7; 10]);
        let bytes = e.encode_payload();
        for cut in [0, 1, 3, bytes.len() - 1] {
            assert!(IndexEntry::decode_payload(1, &bytes[..cut]).is_none());
        }
    }

    #[test]
    fn routing_decode_rejects_unknown_tag() {
        assert!(Routing::decode(&[9, 0, 0]).is_none());
        assert!(Routing::decode(&[]).is_none());
    }

    #[test]
    fn empty_payload_entry() {
        let e = IndexEntry::new(5, Routing::permutation_prefix(&[0.2, 0.1], 2), vec![]);
        let bytes = e.encode_payload();
        let back = IndexEntry::decode_payload(5, &bytes).unwrap();
        assert_eq!(back.payload, Vec::<u8>::new());
    }
}
