//! The basic (non-encrypted) M-Index — the paper's comparison system
//! (Tables 4, 7, 8).
//!
//! Here the server holds the pivots and the metric and stores plaintext
//! vectors, so the whole search runs server-side and only the final answer
//! (k objects) travels to the client. This is privacy level "No encryption"
//! of §2.3 and the efficiency yardstick every encrypted variant is measured
//! against.

use std::sync::Arc;

use simcloud_metric::{CountingMetric, Metric, ObjectId, Vector};
use simcloud_storage::BucketStore;

use crate::config::MIndexConfig;
use crate::entry::{IndexEntry, Routing};
use crate::index::{MIndex, MIndexError};
use crate::promise::PromiseEvaluator;
use crate::stats::SearchStats;

/// A query answer: object id and its true distance to the query.
pub type Neighbor = (ObjectId, f64);

/// Plain M-Index server: pivots + metric + routing index over plaintext
/// payloads (encoded vectors).
pub struct PlainMIndex<M: Metric<Vector>, S: BucketStore> {
    metric: Arc<CountingMetric<M>>,
    pivots: Vec<Vector>,
    index: MIndex<S>,
}

impl<M: Metric<Vector>, S: BucketStore> std::fmt::Debug for PlainMIndex<M, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlainMIndex").finish_non_exhaustive()
    }
}

impl<M: Metric<Vector>, S: BucketStore> PlainMIndex<M, S> {
    /// Builds a plain index with the given pivots.
    pub fn new(
        config: MIndexConfig,
        pivots: Vec<Vector>,
        metric: M,
        store: S,
    ) -> Result<Self, MIndexError> {
        if pivots.len() != config.num_pivots {
            return Err(MIndexError::BadConfig(format!(
                "{} pivots supplied, config expects {}",
                pivots.len(),
                config.num_pivots
            )));
        }
        Ok(Self {
            metric: Arc::new(CountingMetric::new(metric)),
            pivots,
            index: MIndex::new(config, store)?,
        })
    }

    /// Distance computations performed so far (the paper's "Dist. comp."
    /// cost component, measured on the server for the plain index).
    pub fn distance_computations(&self) -> u64 {
        self.metric.count()
    }

    /// Resets the distance counter (per-phase accounting).
    pub fn reset_distance_computations(&self) -> u64 {
        self.metric.reset()
    }

    /// The routing index (shape, storage stats).
    pub fn index(&self) -> &MIndex<S> {
        &self.index
    }

    /// The counting wrapper around the metric (distance counts; callers
    /// that passed an instrumented metric can reach it via `inner()`).
    pub fn metric(&self) -> &CountingMetric<M> {
        &self.metric
    }

    /// Number of indexed objects.
    pub fn len(&self) -> u64 {
        self.index.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Computes query/object–pivot distances.
    pub fn pivot_distances(&self, o: &Vector) -> Vec<f64> {
        self.pivots
            .iter()
            .map(|p| self.metric.distance(o, p))
            .collect()
    }

    /// Inserts an object (distances computed server-side — no privacy here).
    pub fn insert(&mut self, id: ObjectId, object: &Vector) -> Result<(), MIndexError> {
        let ds = self.pivot_distances(object);
        let mut payload = Vec::with_capacity(object.encoded_len());
        object.encode(&mut payload);
        self.index
            .insert(IndexEntry::new(id.0, Routing::from_distances(&ds), payload))
    }

    fn decode(entry: &IndexEntry) -> Result<Vector, MIndexError> {
        Vector::decode(&entry.payload)
            .map(|(v, _)| v)
            .map_err(|e| MIndexError::Corrupt(format!("object {}: {e}", entry.id)))
    }

    /// Precise range query `R(q, r)` — candidates from Alg. 3, refined
    /// server-side. Returns `(id, distance)` sorted by distance.
    pub fn range(
        &self,
        q: &Vector,
        radius: f64,
    ) -> Result<(Vec<Neighbor>, SearchStats), MIndexError> {
        let qd = self.pivot_distances(q);
        let (cands, stats) = self.index.range_candidates(&qd, radius)?;
        let mut result = Vec::new();
        for (entry, _) in &cands {
            let v = Self::decode(entry)?;
            let d = self.metric.distance(q, &v);
            if d <= radius {
                result.push((ObjectId(entry.id), d));
            }
        }
        result.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        Ok((result, stats))
    }

    /// Approximate k-NN (paper §4.1): candidate set of `cand_size` objects
    /// chosen by cell promise, refined by true distances, best `k` returned.
    pub fn knn_approx(
        &self,
        q: &Vector,
        k: usize,
        cand_size: usize,
    ) -> Result<(Vec<Neighbor>, SearchStats), MIndexError> {
        let qd = self.pivot_distances(q);
        let ev = PromiseEvaluator::from_distances(qd);
        let (cands, stats) = self.index.knn_candidates(&ev, cand_size)?;
        let mut scored = Vec::with_capacity(cands.len());
        for (entry, _) in &cands {
            let v = Self::decode(entry)?;
            scored.push((ObjectId(entry.id), self.metric.distance(q, &v)));
        }
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok((scored, stats))
    }

    /// Precise k-NN: approximate pass estimates `ρ_k`, then the precise
    /// range query `R(q, ρ_k)` completes the answer (paper §4.2: "precise
    /// k-NN search can be realized as an approximate k-NN search … and then
    /// subsequent precise range query").
    ///
    /// Correctness: the approximate `ρ_k` is the k-th best over a *subset*
    /// of the data, hence `ρ_k ≥` the true k-th distance, so the range ball
    /// contains the true k-NN.
    pub fn knn_precise(
        &self,
        q: &Vector,
        k: usize,
    ) -> Result<(Vec<Neighbor>, SearchStats), MIndexError> {
        let seed_cand = (4 * k).max(32);
        let (approx, mut stats) = self.knn_approx(q, k, seed_cand)?;
        let rho_k = match approx.len() {
            n if n >= k => approx[k - 1].1,
            // Fewer than k objects found in the seed candidates (tiny data
            // set) — fall back to a radius covering everything observed.
            _ => approx.last().map_or(f64::INFINITY, |x| x.1),
        };
        if !rho_k.is_finite() {
            // Degenerate: empty index.
            return Ok((Vec::new(), stats));
        }
        let (in_ball, rstats) = self.range(q, rho_k)?;
        stats.merge(&rstats);
        let mut result = in_ball;
        result.truncate(k);
        Ok((result, stats))
    }

    /// Brute-force k-NN (test oracle and the recall ground truth).
    pub fn brute_force_knn(&self, q: &Vector, k: usize) -> Result<Vec<Neighbor>, MIndexError> {
        let entries = self.index.all_entries()?;
        let mut scored = Vec::with_capacity(entries.len());
        for entry in &entries {
            let v = Self::decode(entry)?;
            scored.push((ObjectId(entry.id), self.metric.distance(q, &v)));
        }
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }

    /// Brute-force range query (test oracle).
    pub fn brute_force_range(&self, q: &Vector, radius: f64) -> Result<Vec<Neighbor>, MIndexError> {
        let entries = self.index.all_entries()?;
        let mut result = Vec::new();
        for entry in &entries {
            let v = Self::decode(entry)?;
            let d = self.metric.distance(q, &v);
            if d <= radius {
                result.push((ObjectId(entry.id), d));
            }
        }
        result.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        Ok(result)
    }
}

/// Recall of an approximate answer w.r.t. the precise one (paper §4.1):
/// `|A ∩ A_P| / |A_P| · 100%`.
pub fn recall(approx: &[Neighbor], precise: &[Neighbor]) -> f64 {
    if precise.is_empty() {
        return 100.0;
    }
    let precise_ids: std::collections::HashSet<ObjectId> =
        precise.iter().map(|(id, _)| *id).collect();
    let hits = approx
        .iter()
        .filter(|(id, _)| precise_ids.contains(id))
        .count();
    100.0 * hits as f64 / precise.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoutingStrategy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use simcloud_metric::{select_pivots, PivotSelection, L2};
    use simcloud_storage::MemoryStore;

    fn random_data(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vector::new((0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect()))
            .collect()
    }

    fn build(n: usize, seed: u64) -> (PlainMIndex<L2, MemoryStore>, Vec<Vector>) {
        let data = random_data(n, 4, seed);
        let cfg = MIndexConfig {
            num_pivots: 8,
            max_level: 2,
            bucket_capacity: 16,
            strategy: RoutingStrategy::Distances,
        };
        let pivots = select_pivots(&data, 8, &L2, PivotSelection::Random, seed ^ 1);
        let mut idx = PlainMIndex::new(cfg, pivots, L2, MemoryStore::new()).unwrap();
        for (i, v) in data.iter().enumerate() {
            idx.insert(ObjectId(i as u64), v).unwrap();
        }
        (idx, data)
    }

    #[test]
    fn range_equals_brute_force() {
        let (idx, data) = build(300, 7);
        for (qi, radius) in [(0usize, 3.0), (5, 5.0), (10, 1.0), (20, 0.0)] {
            let q = &data[qi];
            let (got, _) = idx.range(q, radius).unwrap();
            let want = idx.brute_force_range(q, radius).unwrap();
            assert_eq!(got, want, "query {qi} radius {radius}");
        }
    }

    #[test]
    fn precise_knn_equals_brute_force() {
        let (idx, data) = build(250, 13);
        for qi in [1usize, 17, 42] {
            let q = &data[qi];
            let (got, _) = idx.knn_precise(q, 10).unwrap();
            let want = idx.brute_force_knn(q, 10).unwrap();
            assert_eq!(got.len(), 10);
            // Distances must agree even if tie ordering differs.
            for ((gid, gd), (wid, wd)) in got.iter().zip(&want) {
                assert!(
                    (gd - wd).abs() < 1e-9,
                    "query {qi}: {gid:?}@{gd} vs {wid:?}@{wd}"
                );
            }
        }
    }

    #[test]
    fn approx_knn_recall_grows_with_candidates() {
        let (idx, data) = build(400, 23);
        let q = &data[3];
        let truth = idx.brute_force_knn(q, 10).unwrap();
        let (small, _) = idx.knn_approx(q, 10, 20).unwrap();
        let (large, _) = idx.knn_approx(q, 10, 400).unwrap();
        let r_small = recall(&small, &truth);
        let r_large = recall(&large, &truth);
        assert!(r_large >= r_small, "{r_small} then {r_large}");
        assert!(
            (r_large - 100.0).abs() < 1e-9,
            "full candidate set must reach 100% recall, got {r_large}"
        );
    }

    #[test]
    fn self_query_returns_self_first() {
        let (idx, data) = build(100, 31);
        let (res, _) = idx.knn_approx(&data[7], 1, 100).unwrap();
        assert_eq!(res[0].0, ObjectId(7));
        assert!(res[0].1.abs() < 1e-9);
    }

    #[test]
    fn recall_formula() {
        let a = vec![(ObjectId(1), 0.1), (ObjectId(2), 0.2), (ObjectId(9), 0.3)];
        let p = vec![(ObjectId(1), 0.1), (ObjectId(2), 0.2), (ObjectId(3), 0.25)];
        assert!((recall(&a, &p) - 66.666).abs() < 0.01);
        assert_eq!(recall(&[], &p), 0.0);
        assert_eq!(recall(&a, &[]), 100.0);
    }

    #[test]
    fn distance_counter_tracks_work() {
        let (idx, data) = build(50, 41);
        idx.reset_distance_computations();
        let _ = idx.knn_approx(&data[0], 5, 20).unwrap();
        let count = idx.distance_computations();
        // 8 pivot distances + up to 20 candidate refinements
        assert!((8..=8 + 20).contains(&count), "count {count}");
    }

    #[test]
    fn pivot_count_mismatch_rejected() {
        let cfg = MIndexConfig {
            num_pivots: 4,
            max_level: 2,
            bucket_capacity: 8,
            strategy: RoutingStrategy::Distances,
        };
        let pivots = random_data(3, 4, 1);
        assert!(matches!(
            PlainMIndex::new(cfg, pivots, L2, MemoryStore::new()),
            Err(MIndexError::BadConfig(_))
        ));
    }

    #[test]
    fn empty_index_queries() {
        let cfg = MIndexConfig {
            num_pivots: 2,
            max_level: 1,
            bucket_capacity: 4,
            strategy: RoutingStrategy::Distances,
        };
        let pivots = random_data(2, 4, 2);
        let idx = PlainMIndex::new(cfg, pivots, L2, MemoryStore::new()).unwrap();
        let q = Vector::zeros(4);
        assert!(idx.range(&q, 1.0).unwrap().0.is_empty());
        assert!(idx.knn_approx(&q, 3, 10).unwrap().0.is_empty());
        assert!(idx.knn_precise(&q, 3).unwrap().0.is_empty());
        assert!(idx.is_empty());
    }
}
