//! The M-Index proper: routing-only server-side structure.
//!
//! This is exactly the component that runs inside the *untrusted* similarity
//! cloud in the paper's architecture: it sees routing information (pivot
//! permutations or object–pivot distances) and opaque payloads, never the
//! pivots, the metric, or plaintext objects. Both the encrypted deployment
//! (`simcloud-core`) and the plain one ([`crate::plain::PlainMIndex`], where
//! the "payload" is just the un-encrypted vector) are built on it.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use simcloud_storage::{BucketId, BucketStore, Record, StorageError};

use crate::config::{MIndexConfig, RoutingStrategy};
use crate::cursor::{CandidateCursor, StagedEntry};
use crate::entry::{IndexEntry, Routing};
use crate::promise::PromiseEvaluator;
use crate::pruning::{hyperplane_may_intersect, pivot_filter_keep, range_pivot_may_intersect};
use crate::stats::SearchStats;
use crate::tree::{CellTree, Node, TreeShape};

/// M-Index errors.
#[derive(Debug)]
pub enum MIndexError {
    /// Underlying storage failed.
    Storage(StorageError),
    /// A stored record could not be decoded.
    Corrupt(String),
    /// Operation requires the other routing strategy (e.g. precise range
    /// search on a permutation-only index).
    WrongStrategy {
        /// Strategy the operation needs.
        required: RoutingStrategy,
        /// Strategy the index is configured with.
        configured: RoutingStrategy,
    },
    /// An entry with this external id is already indexed. Ids must be
    /// unique: the two-phase fetch addresses sealed payloads by id, and
    /// the client's envelope binds each payload's MAC to its id — with two
    /// entries behind one id, a fetch could only answer with one of them
    /// (undetectably, since both authenticate), silently diverging from
    /// what a fully-inlined response would have shipped.
    DuplicateId(u64),
    /// Routing information shorter than the tree's maximum level.
    PrefixTooShort {
        /// Entries must carry at least this many permutation positions.
        required: usize,
        /// What the entry carried.
        got: usize,
    },
    /// Distance vector length does not match the pivot count.
    DimensionMismatch {
        /// Expected number of pivots.
        expected: usize,
        /// Provided vector length.
        got: usize,
    },
    /// Invalid configuration.
    BadConfig(String),
}

impl std::fmt::Display for MIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MIndexError::Storage(e) => write!(f, "storage error: {e}"),
            MIndexError::Corrupt(s) => write!(f, "corrupt index data: {s}"),
            MIndexError::DuplicateId(id) => {
                write!(f, "object id {id} is already indexed (ids must be unique)")
            }
            MIndexError::WrongStrategy {
                required,
                configured,
            } => write!(
                f,
                "operation requires {required} routing but index stores {configured}"
            ),
            MIndexError::PrefixTooShort { required, got } => write!(
                f,
                "permutation prefix of {got} entries, index needs at least {required}"
            ),
            MIndexError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} pivot distances, got {got}")
            }
            MIndexError::BadConfig(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for MIndexError {}

impl From<StorageError> for MIndexError {
    fn from(e: StorageError) -> Self {
        MIndexError::Storage(e)
    }
}

/// Sentinel `cand_size` for [`MIndex::knn_candidates`]: return the whole
/// most-promising Voronoi cell untrimmed (paper §5.4's 1-NN setting).
pub const FIRST_CELL_ONLY: usize = 0;

/// The dynamic M-Index over a bucket store.
pub struct MIndex<S: BucketStore> {
    config: MIndexConfig,
    tree: CellTree,
    store: S,
    entries: u64,
    /// External id → bucket currently holding the entry. Maintained by
    /// insert/split so [`MIndex::fetch_entries`] (the two-phase fetch's
    /// phase 2) re-reads exactly one bucket per distinct cell instead of
    /// scanning the store. Re-inserting an id keeps the latest location.
    id_map: HashMap<u64, BucketId>,
}

impl<S: BucketStore> std::fmt::Debug for MIndex<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MIndex")
            .field("config", &self.config)
            .field("entries", &self.entries)
            .field("shape", &self.tree.shape())
            .finish()
    }
}

impl<S: BucketStore> MIndex<S> {
    /// Creates an index over `store` with the given configuration.
    pub fn new(config: MIndexConfig, store: S) -> Result<Self, MIndexError> {
        config.validate().map_err(MIndexError::BadConfig)?;
        Ok(Self {
            config,
            tree: CellTree::new(),
            store,
            entries: 0,
            id_map: HashMap::new(),
        })
    }

    /// Rebuilds an index over a store that already holds records — the
    /// crash-recovery path. [`DiskStore::open`] replays its write-ahead
    /// log and hands back the last durable snapshot of the buckets; this
    /// constructor re-derives the in-memory cell tree from those records
    /// by reading every bucket, discarding the old bucket layout, and
    /// re-inserting each entry through the normal routing path (splits
    /// replay deterministically because they depend only on the entries
    /// and the configuration). Undecodable payloads or duplicate ids in
    /// the store surface as errors, never panics.
    ///
    /// [`DiskStore::open`]: https://docs.rs/simcloud-storage
    pub fn rebuild(config: MIndexConfig, store: S) -> Result<Self, MIndexError> {
        let mut index = Self::new(config, store)?;
        let mut ids = index.store.bucket_ids();
        ids.sort();
        let mut entries = Vec::new();
        for b in &ids {
            for rec in index.store.read_bucket(*b)? {
                entries.push(IndexEntry::decode_payload(rec.id, &rec.payload).ok_or_else(
                    || {
                        MIndexError::Corrupt(format!(
                            "record {} undecodable during rebuild",
                            rec.id
                        ))
                    },
                )?);
            }
        }
        for b in ids {
            index.store.delete_bucket(b)?;
        }
        for entry in entries {
            index.insert(entry)?;
        }
        Ok(index)
    }

    /// The configuration.
    pub fn config(&self) -> &MIndexConfig {
        &self.config
    }

    /// Number of indexed entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Shape of the dynamic cell tree.
    pub fn shape(&self) -> TreeShape {
        self.tree.shape()
    }

    /// Underlying store (I/O statistics, backend name).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Flushes the underlying store to durable storage. For a disk-backed
    /// store this is the commit point: everything inserted so far survives
    /// a crash after `flush` returns; inserts after it do not until the
    /// next flush.
    pub fn flush(&mut self) -> Result<(), MIndexError> {
        self.store.flush().map_err(MIndexError::from)
    }

    /// ASCII rendering of the cell tree (Fig. 3 reproduction).
    pub fn render_tree(&self) -> String {
        self.tree.render(true)
    }

    fn check_entry(&self, entry: &IndexEntry) -> Result<(), MIndexError> {
        self.config.validate_entry(entry)
    }

    /// Inserts one entry (paper Alg. 1, server part: "locate node, store
    /// encrypted object, split if necessary"). External ids must be unique
    /// (see [`MIndexError::DuplicateId`]); splits re-insert through the
    /// unchecked path, so moving an entry between cells is unaffected.
    pub fn insert(&mut self, entry: IndexEntry) -> Result<(), MIndexError> {
        self.check_entry(&entry)?;
        if self.id_map.contains_key(&entry.id) {
            return Err(MIndexError::DuplicateId(entry.id));
        }
        self.insert_unchecked(entry)
    }

    fn insert_unchecked(&mut self, entry: IndexEntry) -> Result<(), MIndexError> {
        let perm = entry.routing.permutation();
        let prefix: Vec<u16> = perm.prefix(self.config.max_level).to_vec();
        let id = entry.id;
        let record = Record::new(entry.id, entry.encode_payload());
        let (level, count, needs_split) = {
            let leaf = self.tree.locate_mut(&prefix);
            if let Routing::Distances(ds) = &entry.routing {
                let pd: Vec<f64> = prefix[..leaf.level]
                    .iter()
                    .map(|&i| ds[i as usize] as f64)
                    .collect();
                leaf.update_bounds(&pd);
            }
            self.store.append(leaf.bucket, record)?;
            self.id_map.insert(id, leaf.bucket);
            leaf.count += 1;
            let needs_split =
                leaf.count > self.config.bucket_capacity && leaf.level < self.config.max_level;
            (leaf.level, leaf.count, needs_split)
        };
        self.entries += 1;
        let _ = count;
        if needs_split {
            self.split(&prefix[..level])?;
        }
        Ok(())
    }

    /// Splits the leaf at `prefix` one level deeper, re-distributing its
    /// records by the next pivot of their permutation (recursive Voronoi
    /// partitioning, Fig. 2b).
    fn split(&mut self, prefix: &[u16]) -> Result<(), MIndexError> {
        let leaf = self.tree.split_leaf(prefix);
        let records = self.store.read_bucket(leaf.bucket)?;
        self.store.delete_bucket(leaf.bucket)?;
        self.entries -= records.len() as u64;
        for rec in records {
            let entry = IndexEntry::decode_payload(rec.id, &rec.payload).ok_or_else(|| {
                MIndexError::Corrupt(format!("record {} undecodable during split", rec.id))
            })?;
            // Depth of recursion is bounded by max_level.
            self.insert_unchecked(entry)?;
        }
        Ok(())
    }

    /// Precise range-query candidates (paper Alg. 3, the full server side).
    ///
    /// Prunes the cell tree with the double-pivot and range-pivot
    /// constraints, then applies per-object pivot filtering. The returned
    /// candidates still require client-side refinement — the server cannot
    /// compute `d(q, o)` — but are guaranteed to contain every true result
    /// (safety comes from the triangle inequality; see `tests/`).
    ///
    /// Each candidate ships with its **wire-safe pivot-filtering lower
    /// bound** on `d(q, o)` and the set is sorted by it ascending, so a
    /// refining client can stop decrypting as soon as the remaining bounds
    /// exceed the radius.
    ///
    /// Implemented as [`MIndex::range_cursor`] drained to completion — the
    /// eager list is exactly the cursor's full yield sequence.
    pub fn range_candidates(
        &self,
        query_distances: &[f64],
        radius: f64,
    ) -> Result<(Vec<(IndexEntry, f64)>, SearchStats), MIndexError> {
        self.range_cursor(query_distances, radius)?
            .collect_up_to(None)
    }

    /// Opens a lazy, bound-ordered cursor over the precise range-query
    /// candidate set (the streaming form of [`MIndex::range_candidates`]).
    ///
    /// The open phase runs the full Alg. 3 tree pruning and per-object
    /// pivot filtering — the returned [`SearchStats`] carry the same
    /// counters the eager function reports — but survivors are only
    /// *staged* (routing parsed, payload bytes kept raw); payload decoding
    /// happens lazily as the cursor is pulled. The cursor owns its data
    /// and borrows nothing from the index.
    pub fn range_cursor(
        &self,
        query_distances: &[f64],
        radius: f64,
    ) -> Result<CandidateCursor, MIndexError> {
        if self.config.strategy != RoutingStrategy::Distances {
            return Err(MIndexError::WrongStrategy {
                required: RoutingStrategy::Distances,
                configured: self.config.strategy,
            });
        }
        if query_distances.len() != self.config.num_pivots {
            return Err(MIndexError::DimensionMismatch {
                expected: self.config.num_pivots,
                got: query_distances.len(),
            });
        }
        let mut stats = SearchStats::default();
        let mut staged: Vec<StagedEntry> = Vec::new();
        // Iterative DFS carrying (node, prefix, used-pivot mask).
        let tree = &self.tree;
        let store = &self.store;
        let mut stack: Vec<(&Node, Vec<u16>)> = Vec::new();
        {
            let available_min = query_distances
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            for (&k, node) in tree.roots() {
                if hyperplane_may_intersect(query_distances[k as usize], available_min, radius) {
                    stack.push((node, vec![k]));
                } else {
                    stats.pruned_hyperplane += 1;
                }
            }
        }
        while let Some((node, prefix)) = stack.pop() {
            match node {
                Node::Internal { children } => {
                    // Available pivots exclude the prefix.
                    let mut available_min = f64::INFINITY;
                    for (i, &d) in query_distances.iter().enumerate() {
                        if !prefix.contains(&(i as u16)) && d < available_min {
                            available_min = d;
                        }
                    }
                    for (&k, child) in children {
                        if hyperplane_may_intersect(
                            query_distances[k as usize],
                            available_min,
                            radius,
                        ) {
                            let mut p = prefix.clone();
                            p.push(k);
                            stack.push((child, p));
                        } else {
                            stats.pruned_hyperplane += 1;
                        }
                    }
                }
                Node::Leaf(leaf) => {
                    if leaf.count == 0 {
                        continue;
                    }
                    let prefix_ds: Vec<f64> = prefix
                        .iter()
                        .map(|&i| query_distances[i as usize])
                        .collect();
                    if !leaf.dist_bounds.is_empty()
                        && !range_pivot_may_intersect(&prefix_ds, &leaf.dist_bounds, radius)
                    {
                        stats.pruned_range_pivot += 1;
                        continue;
                    }
                    stats.cells_visited += 1;
                    let records = store.read_bucket(leaf.bucket)?;
                    for rec in records {
                        stats.entries_scanned += 1;
                        let mut entry =
                            StagedEntry::parse(rec.id, rec.payload).ok_or_else(|| {
                                MIndexError::Corrupt(format!("record {} undecodable", rec.id))
                            })?;
                        match entry.routing.as_ref().and_then(Routing::distances) {
                            Some(ds) if !pivot_filter_keep(query_distances, ds, radius) => {
                                stats.entries_filtered += 1;
                            }
                            Some(ds) => {
                                entry.bound = crate::pruning::pivot_filter_safe_lower_bound(
                                    query_distances,
                                    ds,
                                );
                                staged.push(entry);
                            }
                            None => staged.push(entry),
                        }
                    }
                }
            }
        }
        CandidateCursor::new(staged, stats)
    }

    /// Approximate k-NN candidates (paper Alg. 4): enumerates Voronoi cells
    /// in promise order until `cand_size` entries are gathered, then trims.
    ///
    /// The candidate set is **ranked and the rank travels with it**: every
    /// entry is returned as `(entry, lower_bound)` and the set is sorted by
    /// the bound ascending. When query and entries both carry distances the
    /// bound is the *wire-safe* pivot-filtering lower bound on `d(q, o)`
    /// (never exceeds the true distance, so a client may soundly stop
    /// refining the moment its k-th true distance beats every remaining
    /// bound). Under permutation routing no metric bound exists; the value
    /// is the cell-promise penalty — a heuristic ordering only.
    ///
    /// `cand_size == FIRST_CELL_ONLY (0)` reproduces the paper's §5.4
    /// setting: "the server-side M-Index was limited to access only one
    /// M-Index Voronoi cell which then forms the candidate set" — the whole
    /// most-promising leaf is returned untrimmed.
    ///
    /// Implemented as [`MIndex::knn_cursor`] drained to the trim point —
    /// the eager list is exactly the cursor's yield prefix.
    pub fn knn_candidates(
        &self,
        evaluator: &PromiseEvaluator,
        cand_size: usize,
    ) -> Result<(Vec<(IndexEntry, f64)>, SearchStats), MIndexError> {
        let cap = if cand_size == FIRST_CELL_ONLY {
            None
        } else {
            // Trim to the requested size (Alg. 4 line 5).
            Some(cand_size)
        };
        self.knn_cursor(evaluator, cand_size)?.collect_up_to(cap)
    }

    /// Opens a lazy, bound-ordered cursor over the approximate-k-NN
    /// candidate set (the streaming form of [`MIndex::knn_candidates`]).
    ///
    /// The open phase enumerates Voronoi cells in promise order until
    /// `cand_size` entries are gathered — identical cell walk, stop
    /// condition and [`SearchStats`] counters as the eager function — and
    /// ranks the staged records by wire bound without decoding payloads.
    /// The cursor may hold slightly more than `cand_size` entries (the
    /// last cell is staged whole); eager callers trim, while a
    /// scatter-gather coordinator's *global* cap makes the per-shard
    /// excess unreachable, so both see the eager wire ordering.
    pub fn knn_cursor(
        &self,
        evaluator: &PromiseEvaluator,
        cand_size: usize,
    ) -> Result<CandidateCursor, MIndexError> {
        // A distance evaluator must cover every pivot: the tree may hold a
        // root cell for any pivot index, and ranking it would read past the
        // end of a short query vector (a remote caller could crash the
        // server). Permutation evaluators are total by construction —
        // missing pivots rank with maximal displacement.
        if let PromiseEvaluator::Distances { distances, .. } = evaluator {
            if distances.len() != self.config.num_pivots {
                return Err(MIndexError::DimensionMismatch {
                    expected: self.config.num_pivots,
                    got: distances.len(),
                });
            }
        }
        let mut stats = SearchStats::default();
        let mut staged: Vec<StagedEntry> = Vec::with_capacity(cand_size);
        let tree = &self.tree;
        let store = &self.store;

        struct Item<'a> {
            penalty: f64,
            prefix: Vec<u16>,
            node: &'a Node,
        }
        impl PartialEq for Item<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.penalty == other.penalty && self.prefix == other.prefix
            }
        }
        impl Eq for Item<'_> {}
        impl PartialOrd for Item<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                // BinaryHeap is a max-heap; invert for min-penalty-first.
                other
                    .penalty
                    .partial_cmp(&self.penalty)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| other.prefix.cmp(&self.prefix))
            }
        }

        let mut heap = BinaryHeap::new();
        for (&k, node) in tree.roots() {
            heap.push(Item {
                penalty: evaluator.step(k, 0),
                prefix: vec![k],
                node,
            });
        }
        let first_cell_only = cand_size == FIRST_CELL_ONLY;
        let mut gathered = 0usize;
        while let Some(item) = heap.pop() {
            match item.node {
                Node::Internal { children } => {
                    for (&k, child) in children {
                        heap.push(Item {
                            penalty: item.penalty + evaluator.step(k, item.prefix.len()),
                            prefix: {
                                let mut p = item.prefix.clone();
                                p.push(k);
                                p
                            },
                            node: child,
                        });
                    }
                }
                Node::Leaf(leaf) => {
                    if leaf.count == 0 {
                        continue;
                    }
                    stats.cells_visited += 1;
                    let records = store.read_bucket(leaf.bucket)?;
                    for rec in records {
                        stats.entries_scanned += 1;
                        let mut entry =
                            StagedEntry::parse(rec.id, rec.payload).ok_or_else(|| {
                                MIndexError::Corrupt(format!("record {} undecodable", rec.id))
                            })?;
                        // Rank = wire-safe pivot-filter lower bound when
                        // distances are available on both sides; the cell
                        // penalty (heuristic) otherwise.
                        entry.bound = match (entry.routing.as_ref(), evaluator) {
                            (
                                Some(Routing::Distances(ds)),
                                PromiseEvaluator::Distances { distances, .. },
                            ) => crate::pruning::pivot_filter_safe_lower_bound(distances, ds),
                            _ => item.penalty,
                        };
                        staged.push(entry);
                    }
                    gathered += leaf.count;
                    if first_cell_only || gathered >= cand_size {
                        break;
                    }
                }
            }
        }
        CandidateCursor::new(staged, stats)
    }

    /// Re-reads the stored entries with the given external ids — the server
    /// side of the two-phase candidate fetch (phase 2). Returns one slot per
    /// requested id, in request order; `None` marks ids the index does not
    /// hold.
    ///
    /// Stateless and shared-read (`&self`): nothing is pinned per query —
    /// the ids are resolved through the id→bucket map and each distinct
    /// bucket is streamed **once** even when many requested ids share a
    /// cell (candidate ids do: they come from few promising cells), so a
    /// fetch costs `O(distinct cells)` bucket reads under the same read
    /// lock discipline as a search.
    pub fn fetch_entries(&self, ids: &[u64]) -> Result<Vec<Option<IndexEntry>>, MIndexError> {
        let mut out: Vec<Option<IndexEntry>> = Vec::with_capacity(ids.len());
        out.resize_with(ids.len(), || None);
        // Group request positions by bucket so each bucket is read once.
        let mut by_bucket: HashMap<BucketId, Vec<usize>> = HashMap::new();
        for (pos, id) in ids.iter().enumerate() {
            if let Some(&bucket) = self.id_map.get(id) {
                by_bucket.entry(bucket).or_default().push(pos);
            }
        }
        let mut wanted: HashMap<u64, Vec<usize>> = HashMap::new();
        for (bucket, positions) in by_bucket {
            wanted.clear();
            for &pos in &positions {
                wanted.entry(ids[pos]).or_default().push(pos);
            }
            let records = self
                .store
                .read_matching(bucket, &|id| wanted.contains_key(&id))?;
            for rec in records {
                let Some(positions) = wanted.get(&rec.id) else {
                    continue;
                };
                let entry = IndexEntry::decode_payload(rec.id, &rec.payload).ok_or_else(|| {
                    MIndexError::Corrupt(format!("record {} undecodable", rec.id))
                })?;
                for &pos in positions {
                    if out[pos].is_none() {
                        out[pos] = Some(entry.clone());
                    }
                }
            }
        }
        Ok(out)
    }

    /// Reads all entries (diagnostics / the trivial baseline's "download
    /// everything" path).
    pub fn all_entries(&self) -> Result<Vec<IndexEntry>, MIndexError> {
        let mut ids: Vec<_> = self.store.bucket_ids();
        ids.sort();
        let mut out = Vec::with_capacity(self.entries as usize);
        for b in ids {
            for rec in self.store.read_bucket(b)? {
                out.push(
                    IndexEntry::decode_payload(rec.id, &rec.payload).ok_or_else(|| {
                        MIndexError::Corrupt(format!("record {} undecodable", rec.id))
                    })?,
                );
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud_storage::MemoryStore;

    fn cfg(pivots: usize, level: usize, cap: usize) -> MIndexConfig {
        MIndexConfig {
            num_pivots: pivots,
            max_level: level,
            bucket_capacity: cap,
            strategy: RoutingStrategy::Distances,
        }
    }

    fn entry_d(id: u64, ds: &[f64]) -> IndexEntry {
        IndexEntry::new(id, Routing::from_distances(ds), vec![id as u8])
    }

    #[test]
    fn insert_and_shape() {
        let mut idx = MIndex::new(cfg(3, 2, 2), MemoryStore::new()).unwrap();
        idx.insert(entry_d(1, &[0.1, 0.5, 0.9])).unwrap();
        idx.insert(entry_d(2, &[0.2, 0.6, 0.8])).unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.shape().leaves, 1, "same closest pivot so far");
        idx.insert(entry_d(3, &[0.9, 0.1, 0.5])).unwrap();
        assert_eq!(idx.shape().leaves, 2);
    }

    #[test]
    fn bucket_overflow_splits() {
        let mut idx = MIndex::new(cfg(3, 2, 2), MemoryStore::new()).unwrap();
        // all share closest pivot 0, but differ in second pivot
        idx.insert(entry_d(1, &[0.1, 0.2, 0.9])).unwrap();
        idx.insert(entry_d(2, &[0.1, 0.3, 0.8])).unwrap();
        assert_eq!(idx.shape().max_depth, 1);
        idx.insert(entry_d(3, &[0.1, 0.9, 0.2])).unwrap();
        let shape = idx.shape();
        assert_eq!(shape.max_depth, 2, "third insert splits the level-1 cell");
        assert_eq!(shape.internal, 1);
        assert_eq!(idx.len(), 3, "entries preserved across split");
        assert_eq!(idx.store().total_records(), 3);
    }

    #[test]
    fn split_stops_at_max_level() {
        let mut idx = MIndex::new(cfg(3, 1, 2), MemoryStore::new()).unwrap();
        for i in 0..10 {
            idx.insert(entry_d(i, &[0.1, 0.5, 0.9])).unwrap();
        }
        let shape = idx.shape();
        assert_eq!(shape.max_depth, 1, "max_level 1 forbids splits");
        assert_eq!(shape.leaves, 1);
        assert_eq!(idx.len(), 10);
    }

    #[test]
    fn strategy_mismatch_rejected() {
        let mut idx = MIndex::new(cfg(3, 2, 2), MemoryStore::new()).unwrap();
        let perm_entry =
            IndexEntry::new(1, Routing::permutation_prefix(&[0.1, 0.2, 0.3], 2), vec![]);
        assert!(matches!(
            idx.insert(perm_entry),
            Err(MIndexError::WrongStrategy { .. })
        ));
        let mut pidx = MIndex::new(
            MIndexConfig {
                strategy: RoutingStrategy::Permutation,
                ..cfg(3, 2, 2)
            },
            MemoryStore::new(),
        )
        .unwrap();
        assert!(matches!(
            pidx.insert(entry_d(1, &[0.1, 0.2, 0.3])),
            Err(MIndexError::WrongStrategy { .. })
        ));
        assert!(matches!(
            pidx.range_candidates(&[0.0, 0.0, 0.0], 1.0),
            Err(MIndexError::WrongStrategy { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut idx = MIndex::new(cfg(3, 2, 2), MemoryStore::new()).unwrap();
        assert!(matches!(
            idx.insert(entry_d(1, &[0.1, 0.2])),
            Err(MIndexError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            idx.range_candidates(&[0.1], 1.0),
            Err(MIndexError::DimensionMismatch { .. })
        ));
    }

    /// Regression: a k-NN query with too few distances must error, not
    /// panic — with a root cell led by a high pivot index, ranking it would
    /// index past the end of the short query vector.
    #[test]
    fn knn_short_distance_query_errors_instead_of_panicking() {
        let mut idx = MIndex::new(cfg(3, 2, 2), MemoryStore::new()).unwrap();
        idx.insert(entry_d(1, &[0.9, 0.5, 0.1])).unwrap(); // root pivot 2
        let short = PromiseEvaluator::from_distances(vec![0.1, 0.2]);
        assert!(matches!(
            idx.knn_candidates(&short, 5),
            Err(MIndexError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn short_permutation_prefix_rejected() {
        let mut pidx = MIndex::new(
            MIndexConfig {
                strategy: RoutingStrategy::Permutation,
                ..cfg(4, 3, 2)
            },
            MemoryStore::new(),
        )
        .unwrap();
        let short = IndexEntry::new(
            1,
            Routing::permutation_prefix(&[0.1, 0.2, 0.3, 0.4], 2),
            vec![],
        );
        assert!(matches!(
            pidx.insert(short),
            Err(MIndexError::PrefixTooShort { .. })
        ));
    }

    #[test]
    fn range_candidates_contain_matching_ids() {
        let mut idx = MIndex::new(cfg(2, 1, 100), MemoryStore::new()).unwrap();
        // 1-D line world: pivot 0 at x=0, pivot 1 at x=10.
        // object at x: distances (x, 10-x) for x in 0..=10
        for x in 0..=10u64 {
            idx.insert(entry_d(x, &[x as f64, 10.0 - x as f64]))
                .unwrap();
        }
        // query at x=2 (distances 2, 8), radius 1.5 → true matches x ∈ {1,2,3}
        let (cands, stats) = idx.range_candidates(&[2.0, 8.0], 1.5).unwrap();
        let ids: Vec<u64> = cands.iter().map(|(e, _)| e.id).collect();
        for want in [1, 2, 3] {
            assert!(ids.contains(&want), "missing {want} in {ids:?}");
        }
        // pivot filtering in 1-D is exact: lower bound equals the true
        // distance, so nothing else survives
        assert_eq!(ids.len(), 3, "{ids:?}");
        assert!(stats.entries_scanned >= 3);
    }

    #[test]
    fn knn_candidates_respects_cand_size_and_ranking() {
        let mut idx = MIndex::new(cfg(2, 1, 4), MemoryStore::new()).unwrap();
        for x in 0..=10u64 {
            idx.insert(entry_d(x, &[x as f64, 10.0 - x as f64]))
                .unwrap();
        }
        let ev = PromiseEvaluator::from_distances(vec![2.0, 8.0]);
        let (cands, stats) = idx.knn_candidates(&ev, 5).unwrap();
        assert_eq!(cands.len(), 5);
        assert_eq!(stats.candidates, 5);
        // The best candidate should be the exact point x=2.
        assert_eq!(cands[0].0.id, 2);
        assert!(
            cands.windows(2).all(|w| w[0].1 <= w[1].1),
            "candidates must arrive sorted by lower bound"
        );
    }

    #[test]
    fn knn_candidates_with_permutation_queries() {
        let mut idx = MIndex::new(
            MIndexConfig {
                strategy: RoutingStrategy::Permutation,
                ..cfg(3, 2, 2)
            },
            MemoryStore::new(),
        )
        .unwrap();
        for (id, ds) in [
            (0u64, [0.1, 0.5, 0.9]),
            (1, [0.2, 0.4, 0.9]),
            (2, [0.9, 0.1, 0.4]),
            (3, [0.8, 0.2, 0.3]),
            (4, [0.4, 0.9, 0.1]),
        ] {
            idx.insert(IndexEntry::new(
                id,
                Routing::permutation_prefix(&ds, 3),
                vec![],
            ))
            .unwrap();
        }
        let q = simcloud_metric::permutation_from_distances(&[0.15, 0.45, 0.95]);
        let ev = PromiseEvaluator::from_permutation(q);
        let (cands, _) = idx.knn_candidates(&ev, 2).unwrap();
        assert_eq!(cands.len(), 2);
        let ids: Vec<u64> = cands.iter().map(|(e, _)| e.id).collect();
        assert!(ids.contains(&0) && ids.contains(&1), "{ids:?}");
    }

    #[test]
    fn first_cell_only_returns_whole_untrimmed_cell() {
        let mut idx = MIndex::new(cfg(3, 1, 100), MemoryStore::new()).unwrap();
        // cell of pivot 0 holds 5 entries, cell of pivot 1 holds 3
        for i in 0..5u64 {
            idx.insert(entry_d(i, &[0.1, 0.5, 0.9])).unwrap();
        }
        for i in 5..8u64 {
            idx.insert(entry_d(i, &[0.9, 0.1, 0.5])).unwrap();
        }
        let ev = PromiseEvaluator::from_distances(vec![0.1, 0.5, 0.9]);
        let (cands, stats) = idx.knn_candidates(&ev, FIRST_CELL_ONLY).unwrap();
        assert_eq!(cands.len(), 5, "whole first cell, no trim");
        assert_eq!(stats.cells_visited, 1);
        assert!(cands.iter().all(|(e, _)| e.id < 5));
    }

    /// In the 1-D line world the pivot-filtering bound is exact, so the
    /// returned bounds must (a) arrive ascending and (b) never exceed the
    /// true query–object distance.
    #[test]
    fn knn_candidate_bounds_are_sorted_and_sound() {
        let mut idx = MIndex::new(cfg(2, 1, 100), MemoryStore::new()).unwrap();
        for x in 0..=10u64 {
            idx.insert(entry_d(x, &[x as f64, 10.0 - x as f64]))
                .unwrap();
        }
        let ev = PromiseEvaluator::from_distances(vec![3.0, 7.0]); // query at x=3
        let (cands, _) = idx.knn_candidates(&ev, 11).unwrap();
        assert_eq!(cands.len(), 11);
        assert!(cands.windows(2).all(|w| w[0].1 <= w[1].1), "not ascending");
        for (e, lb) in &cands {
            let true_d = (e.id as f64 - 3.0).abs();
            assert!(
                *lb <= true_d,
                "bound {lb} exceeds true distance {true_d} for id {}",
                e.id
            );
        }
    }

    /// Range candidates carry the same sorted, sound bounds.
    #[test]
    fn range_candidate_bounds_are_sorted_and_sound() {
        let mut idx = MIndex::new(cfg(2, 1, 100), MemoryStore::new()).unwrap();
        for x in 0..=10u64 {
            idx.insert(entry_d(x, &[x as f64, 10.0 - x as f64]))
                .unwrap();
        }
        let (cands, _) = idx.range_candidates(&[5.0, 5.0], 2.0).unwrap();
        assert!(!cands.is_empty());
        assert!(cands.windows(2).all(|w| w[0].1 <= w[1].1), "not ascending");
        for (e, lb) in &cands {
            let true_d = (e.id as f64 - 5.0).abs();
            assert!(*lb <= true_d, "bound {lb} > true {true_d} for {}", e.id);
        }
    }

    #[test]
    fn all_entries_roundtrip() {
        let mut idx = MIndex::new(cfg(2, 1, 2), MemoryStore::new()).unwrap();
        for x in 0..6u64 {
            idx.insert(entry_d(x, &[x as f64, 6.0 - x as f64])).unwrap();
        }
        let mut all = idx.all_entries().unwrap();
        all.sort_by_key(|e| e.id);
        assert_eq!(all.len(), 6);
        assert_eq!(all[3].payload, vec![3u8]);
    }

    /// Phase-2 lookups return entries in request order, `None` for unknown
    /// ids, and survive splits moving entries between buckets.
    #[test]
    fn fetch_entries_by_id_in_request_order() {
        let mut idx = MIndex::new(cfg(2, 2, 2), MemoryStore::new()).unwrap();
        // Small capacity forces splits, exercising id_map maintenance.
        for x in 0..=10u64 {
            idx.insert(entry_d(x, &[x as f64, 10.0 - x as f64]))
                .unwrap();
        }
        let got = idx.fetch_entries(&[7, 0, 99, 3]).unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].as_ref().unwrap().id, 7);
        assert_eq!(got[0].as_ref().unwrap().payload, vec![7u8]);
        assert_eq!(got[1].as_ref().unwrap().id, 0);
        assert!(got[2].is_none(), "unknown id yields None");
        assert_eq!(got[3].as_ref().unwrap().id, 3);
    }

    /// Duplicate ids in one fetch each get their own filled slot, and ids
    /// sharing a cell cost a single bucket read.
    #[test]
    fn fetch_entries_handles_duplicates_and_reads_each_bucket_once() {
        let mut idx = MIndex::new(cfg(3, 1, 100), MemoryStore::new()).unwrap();
        for i in 0..6u64 {
            idx.insert(entry_d(i, &[0.1, 0.5, 0.9])).unwrap(); // one cell
        }
        let reads_before = idx.store().stats().records_read;
        let got = idx.fetch_entries(&[2, 2, 5]).unwrap();
        assert_eq!(got[0].as_ref().unwrap().id, 2);
        assert_eq!(got[1].as_ref().unwrap().id, 2);
        assert_eq!(got[2].as_ref().unwrap().id, 5);
        let reads = idx.store().stats().records_read - reads_before;
        assert_eq!(
            reads, 2,
            "the shared bucket is scanned once and only the two distinct \
             wanted records are materialized"
        );
    }

    /// Duplicate external ids are rejected at insert: the two-phase fetch
    /// addresses payloads by id, so two entries behind one id could not be
    /// faithfully re-served (the envelope also MAC-binds payloads to ids,
    /// which presumes uniqueness).
    #[test]
    fn duplicate_id_insert_rejected() {
        let mut idx = MIndex::new(cfg(2, 2, 4), MemoryStore::new()).unwrap();
        idx.insert(entry_d(7, &[1.0, 9.0])).unwrap();
        assert!(matches!(
            idx.insert(entry_d(7, &[2.0, 8.0])),
            Err(MIndexError::DuplicateId(7))
        ));
        assert_eq!(idx.len(), 1, "rejected entry must not land");
        // Splits (which re-insert moved entries) still work.
        for x in 0..8u64 {
            idx.insert(entry_d(100 + x, &[x as f64, 8.0 - x as f64]))
                .unwrap();
        }
        assert_eq!(idx.len(), 9);
    }

    #[test]
    fn fetch_entries_empty_request() {
        let idx = MIndex::new(cfg(2, 1, 4), MemoryStore::new()).unwrap();
        assert!(idx.fetch_entries(&[]).unwrap().is_empty());
    }

    /// `rebuild` over a store with an arbitrary bucket layout (here: every
    /// record piled into one bucket) re-derives the same tree a fresh
    /// index would build from the same entries, and queries still work.
    #[test]
    fn rebuild_rederives_tree_from_store_records() {
        let mut reference = MIndex::new(cfg(2, 2, 3), MemoryStore::new()).unwrap();
        let mut raw = MemoryStore::new();
        for x in 0..=10u64 {
            let e = entry_d(x, &[x as f64, 10.0 - x as f64]);
            raw.append(BucketId(0), Record::new(e.id, e.encode_payload()))
                .unwrap();
            reference.insert(e).unwrap();
        }
        let rebuilt = MIndex::rebuild(cfg(2, 2, 3), raw).unwrap();
        assert_eq!(rebuilt.len(), reference.len());
        assert_eq!(rebuilt.shape(), reference.shape());
        let (cands, _) = rebuilt.range_candidates(&[7.0, 3.0], 0.0).unwrap();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].0.id, 7);
        assert_eq!(
            rebuilt.fetch_entries(&[4]).unwrap()[0].as_ref().unwrap().id,
            4
        );
    }

    /// Corrupt records in the store surface from `rebuild` as a typed
    /// error, never a panic.
    #[test]
    fn rebuild_rejects_undecodable_records() {
        let mut raw = MemoryStore::new();
        raw.append(BucketId(3), Record::new(9, vec![0xff; 3]))
            .unwrap();
        assert!(matches!(
            MIndex::rebuild(cfg(2, 2, 3), raw),
            Err(MIndexError::Corrupt(_))
        ));
    }

    #[test]
    fn zero_radius_query_finds_exact_point() {
        let mut idx = MIndex::new(cfg(2, 2, 3), MemoryStore::new()).unwrap();
        for x in 0..=10u64 {
            idx.insert(entry_d(x, &[x as f64, 10.0 - x as f64]))
                .unwrap();
        }
        let (cands, _) = idx.range_candidates(&[7.0, 3.0], 0.0).unwrap();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].0.id, 7);
    }
}
