//! # simcloud-mindex — the M-Index (Novak & Batko) and its plain deployment
//!
//! The M-Index [5, 6 in the paper] is a dynamic metric index built on
//! *recursive Voronoi partitioning*: every object is assigned to its closest
//! pivot (level 1); overflowing cells are re-partitioned by the next-closest
//! pivot (level 2), and so on — equivalently, objects are indexed by a
//! prefix of their **pivot permutation**. This crate implements:
//!
//! * [`CellTree`](tree::CellTree) — the dynamic Voronoi cell tree
//!   (paper Figures 2–3) with capacity-triggered splits;
//! * [`MIndex`] — the routing-only server structure: insert (Alg. 1 server
//!   part), precise range candidates with double-pivot / range-pivot
//!   pruning and object pivot filtering (Alg. 3), and pre-ranked
//!   approximate k-NN candidates by cell promise (Alg. 4);
//! * [`CandidateCursor`] — the lazy, bound-ordered streaming form of both
//!   candidate searches: open walks the same cells and ranks the staged
//!   records, yield decodes payloads on demand — a scatter-gather
//!   coordinator pulls the global frontier and stops at the budget;
//! * [`PlainMIndex`] — the non-encrypted deployment used as the paper's
//!   efficiency baseline (Tables 4, 7, 8): the server owns pivots, metric
//!   and plaintext objects and refines results itself;
//! * [`recall`] — the paper's result-quality measure.
//!
//! The crucial property the Encrypted M-Index exploits (§4.2): **nothing in
//! [`MIndex`] ever evaluates the metric** — insertion and candidate
//! selection need only permutations (or client-computed distances), so the
//! structure runs unchanged on an untrusted server that cannot compute
//! `d(·,·)`.

#![warn(missing_docs)]

pub mod config;
pub mod cursor;
pub mod entry;
pub mod index;
pub mod keys;
pub mod plain;
pub mod promise;
pub mod pruning;
pub mod stats;
pub mod tree;

pub use config::{MIndexConfig, RoutingStrategy};
pub use cursor::CandidateCursor;
pub use entry::{IndexEntry, Routing};
pub use index::{MIndex, MIndexError, FIRST_CELL_ONLY};
pub use plain::{recall, Neighbor, PlainMIndex};
pub use promise::PromiseEvaluator;
pub use stats::{SearchStats, SharedSearchStats};
