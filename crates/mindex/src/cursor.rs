//! Lazy, bound-ordered candidate cursors — the streaming half of the
//! query path.
//!
//! The eager candidate functions ([`crate::MIndex::knn_candidates`] /
//! [`crate::MIndex::range_candidates`]) decode **every** gathered record
//! into an [`IndexEntry`] and sort the full `(entry, bound)` list before
//! returning it. A scatter-gather coordinator then throws most of that
//! work away: with `N` shards each producing `cand_size` candidates, the
//! capped k-way merge keeps only `cand_size` of the `N·cand_size` decoded
//! entries.
//!
//! A [`CandidateCursor`] splits the work into two phases instead:
//!
//! * **Open** — walk exactly the cells the eager function walks (same
//!   promise order, same pruning, same stop condition, same
//!   [`SearchStats`] counters), but *stage* each surviving record as raw
//!   bytes: parse and validate its routing header, compute its wire
//!   bound, and keep the payload bytes unsliced. A stable index sort by
//!   bound then fixes the yield order without materializing anything.
//! * **Yield** — [`CandidateCursor::next_candidate`] decodes entries in
//!   ascending bound order, a small chunk at a time. Entries never
//!   pulled are never decoded; [`SearchStats::candidates_generated`]
//!   counts the ones that were.
//!
//! The yield order is byte-identical to the eager lists: staging order
//! equals the eager push order, the bound values are computed by the
//! same functions on the same `f32` bits, and the stable sort uses the
//! same comparator — so `cursor.collect_up_to(..)` *is* the eager
//! function, and the sharded merge over cursors reproduces the eager
//! merge wire-for-wire.

use std::cmp::Ordering;
use std::collections::VecDeque;

use crate::entry::{IndexEntry, Routing};
use crate::index::MIndexError;
use crate::stats::SearchStats;

/// Entries decoded per refill. Chunking amortizes the per-pull cost while
/// bounding the overshoot past a coordinator's stopping point to one
/// chunk per shard.
const DECODE_CHUNK: usize = 32;

/// One staged record: routing parsed (and the whole encoding validated),
/// payload still raw bytes. `bound` is the wire lower bound the entry
/// will ship with.
pub(crate) struct StagedEntry {
    pub(crate) id: u64,
    /// Parsed routing; taken (once) when the entry is materialized.
    pub(crate) routing: Option<Routing>,
    /// The full encoded record body, kept unsliced until yield.
    raw: Vec<u8>,
    body_start: usize,
    body_len: usize,
    /// Wire lower bound; set by the open phase after parsing.
    pub(crate) bound: f64,
}

impl StagedEntry {
    /// Parses and validates a stored record body without copying the
    /// payload. Accepts exactly the encodings [`IndexEntry::decode_payload`]
    /// accepts (routing header, `u32` payload length, payload in range),
    /// so open-time corruption errors fire on the same records the eager
    /// scan errored on.
    pub(crate) fn parse(id: u64, raw: Vec<u8>) -> Option<Self> {
        let (routing, used) = Routing::decode(&raw)?;
        let len_bytes: [u8; 4] = raw.get(used..used + 4)?.try_into().ok()?;
        let body_len = u32::from_le_bytes(len_bytes) as usize;
        let body_start = used + 4;
        if raw.len() < body_start.checked_add(body_len)? {
            return None;
        }
        Some(Self {
            id,
            routing: Some(routing),
            raw,
            body_start,
            body_len,
            bound: 0.0,
        })
    }
}

/// A lazy, bound-ordered stream of `(entry, lower_bound)` candidates.
///
/// Owned and lock-free: the open phase copies the staged records out of
/// the bucket store, so the cursor borrows nothing from the index — a
/// coordinator may hold many cursors from many shards with **no** shard
/// guard live (the lock-discipline lint enforces this).
///
/// Bounds are yielded in nondecreasing order; ties keep the staging
/// (cell-visit) order via the stable sort.
pub struct CandidateCursor {
    staged: Vec<StagedEntry>,
    /// Yield order: indices into `staged`, stably sorted by bound.
    order: Vec<u32>,
    /// Next position in `order` not yet decoded.
    pos: usize,
    /// Decoded entries awaiting a pull.
    decoded: VecDeque<(IndexEntry, f64)>,
    stats: SearchStats,
}

impl CandidateCursor {
    /// Ranks the staged records and prefetches the first decode chunk
    /// (so a parallel fan-out does that work inside the worker thread).
    pub(crate) fn new(staged: Vec<StagedEntry>, stats: SearchStats) -> Result<Self, MIndexError> {
        let mut order: Vec<u32> = (0..staged.len() as u32).collect();
        // Identical permutation to the eager `sort_by` over
        // `(entry, bound)` pairs: same comparator, same stable sort,
        // same initial (staging) order.
        order.sort_by(|&a, &b| {
            staged[a as usize]
                .bound
                .partial_cmp(&staged[b as usize].bound)
                .unwrap_or(Ordering::Equal)
        });
        let mut cursor = Self {
            staged,
            order,
            pos: 0,
            decoded: VecDeque::new(),
            stats,
        };
        cursor.refill()?;
        Ok(cursor)
    }

    /// The bound of the next candidate, without decoding anything.
    /// `None` when the cursor is exhausted.
    pub fn peek_bound(&self) -> Option<f64> {
        if let Some((_, b)) = self.decoded.front() {
            return Some(*b);
        }
        self.order
            .get(self.pos)
            .map(|&i| self.staged[i as usize].bound)
    }

    /// Candidates not yet pulled.
    pub fn remaining(&self) -> usize {
        self.decoded.len() + (self.order.len() - self.pos)
    }

    /// The open-phase statistics, plus `candidates_generated` for every
    /// entry decoded so far. `candidates` stays 0 — the consumer that
    /// assembles the final list sets it (see [`SearchStats::merge_from`]).
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Decodes the next chunk of the yield order.
    fn refill(&mut self) -> Result<(), MIndexError> {
        let end = (self.pos + DECODE_CHUNK).min(self.order.len());
        while self.pos < end {
            let slot = self.order[self.pos] as usize;
            self.pos += 1;
            let e = &mut self.staged[slot];
            let routing = e.routing.take().ok_or_else(|| {
                MIndexError::Corrupt(format!("record {} materialized twice", e.id))
            })?;
            let raw = std::mem::take(&mut e.raw);
            let payload = raw
                .get(e.body_start..e.body_start + e.body_len)
                .ok_or_else(|| MIndexError::Corrupt(format!("record {} undecodable", e.id)))?
                .to_vec();
            self.decoded
                .push_back((IndexEntry::new(e.id, routing, payload), e.bound));
            self.stats.candidates_generated += 1;
        }
        Ok(())
    }

    /// Pulls the next candidate in ascending bound order, decoding a new
    /// chunk when the prefetched ones run out. `Ok(None)` = exhausted.
    pub fn next_candidate(&mut self) -> Result<Option<(IndexEntry, f64)>, MIndexError> {
        if self.decoded.is_empty() {
            self.refill()?;
        }
        Ok(self.decoded.pop_front())
    }

    /// Drains up to `cap` candidates (`None` = all) into the eager list
    /// shape, setting `stats.candidates` from the result length — this is
    /// exactly the pre-cursor eager function's contract.
    pub fn collect_up_to(
        mut self,
        cap: Option<usize>,
    ) -> Result<(Vec<(IndexEntry, f64)>, SearchStats), MIndexError> {
        let want = cap.map_or(self.remaining(), |c| c.min(self.remaining()));
        let mut out = Vec::with_capacity(want);
        while out.len() < want {
            match self.next_candidate()? {
                Some(c) => out.push(c),
                None => break,
            }
        }
        let mut stats = self.stats;
        stats.candidates = out.len() as u64;
        Ok((out, stats))
    }
}

impl std::fmt::Debug for CandidateCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CandidateCursor")
            .field("remaining", &self.remaining())
            .field("next_bound", &self.peek_bound())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staged(id: u64, bound: f64, payload: &[u8]) -> StagedEntry {
        let entry = IndexEntry::new(id, Routing::from_distances(&[bound]), payload.to_vec());
        let mut s = StagedEntry::parse(id, entry.encode_payload()).unwrap();
        s.bound = bound;
        s
    }

    #[test]
    fn yields_in_bound_order_with_stable_ties() {
        let cursor = CandidateCursor::new(
            vec![
                staged(1, 0.5, b"a"),
                staged(2, 0.1, b"b"),
                staged(3, 0.5, b"c"),
                staged(4, 0.0, b"d"),
            ],
            SearchStats::default(),
        )
        .unwrap();
        let (list, stats) = cursor.collect_up_to(None).unwrap();
        let ids: Vec<u64> = list.iter().map(|(e, _)| e.id).collect();
        assert_eq!(ids, vec![4, 2, 1, 3], "ties keep staging order");
        assert_eq!(list[2].0.payload, b"a".to_vec());
        assert_eq!(stats.candidates, 4);
        assert_eq!(stats.candidates_generated, 4);
    }

    #[test]
    fn peek_never_decodes_and_cap_limits_generation() {
        let entries: Vec<StagedEntry> = (0..100).map(|i| staged(i, i as f64, &[i as u8])).collect();
        let mut cursor = CandidateCursor::new(entries, SearchStats::default()).unwrap();
        // Only the prefetched chunk is decoded at open.
        assert_eq!(cursor.stats().candidates_generated, DECODE_CHUNK as u64);
        assert_eq!(cursor.peek_bound(), Some(0.0));
        for want in 0..40 {
            let (e, b) = cursor.next_candidate().unwrap().unwrap();
            assert_eq!(e.id, want as u64);
            assert_eq!(b, want as f64);
        }
        assert_eq!(cursor.peek_bound(), Some(40.0));
        assert_eq!(cursor.remaining(), 60);
        // 40 pulls forced two chunks; the other 36 stay undecoded.
        assert_eq!(cursor.stats().candidates_generated, 2 * DECODE_CHUNK as u64);
    }

    #[test]
    fn parse_rejects_what_decode_payload_rejects() {
        let entry = IndexEntry::new(9, Routing::from_distances(&[1.0, 2.0]), vec![7; 10]);
        let bytes = entry.encode_payload();
        assert!(StagedEntry::parse(9, bytes.clone()).is_some());
        for cut in [0, 1, 3, bytes.len() - 1] {
            assert_eq!(
                StagedEntry::parse(9, bytes[..cut].to_vec()).is_some(),
                IndexEntry::decode_payload(9, &bytes[..cut]).is_some(),
                "cursor parse and eager decode must agree at cut {cut}"
            );
        }
    }

    #[test]
    fn empty_cursor_is_well_behaved() {
        let mut cursor = CandidateCursor::new(Vec::new(), SearchStats::default()).unwrap();
        assert_eq!(cursor.peek_bound(), None);
        assert_eq!(cursor.remaining(), 0);
        assert!(cursor.next_candidate().unwrap().is_none());
        let (list, stats) = cursor.collect_up_to(Some(5)).unwrap();
        assert!(list.is_empty());
        assert_eq!(stats.candidates, 0);
    }
}
