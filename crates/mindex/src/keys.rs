//! M-Index scalar keys (Novak & Batko \[5\]).
//!
//! The original M-Index maps every object to a single number so that a
//! standard ordered structure (B+-tree) can store the whole index:
//!
//! ```text
//! key(o) = cell_ordinal(prefix(o)) + d(o, p_(1)_o) / d_max     ∈ [ord, ord+1)
//! ```
//!
//! where `cell_ordinal` enumerates permutation prefixes in base `n` and the
//! fractional part orders objects inside a cell by their distance to the
//! closest pivot. Keys of one cell occupy a half-open unit interval, so
//! cells map to disjoint key ranges and a range scan enumerates a cell.
//!
//! The tree in [`crate::tree`] stores buckets directly (simpler and fully
//! equivalent for the paper's experiments); this module provides the
//! faithful key mapping for users who want to host the M-Index inside an
//! ordered key-value store, plus the cell-interval arithmetic that makes
//! that deployment work.

/// Computes the cell ordinal of a permutation prefix at fixed level `l`
/// with `n` pivots: the prefix read as an `l`-digit base-`n` number.
///
/// Prefixes are valid permutation prefixes (distinct entries `< n`);
/// distinct prefixes of equal length get distinct ordinals.
pub fn cell_ordinal(prefix: &[u16], num_pivots: usize) -> u64 {
    assert!(!prefix.is_empty(), "empty prefix has no ordinal");
    let n = num_pivots as u64;
    let mut ord = 0u64;
    for &p in prefix {
        assert!((p as usize) < num_pivots, "pivot index out of range");
        ord = ord * n + p as u64;
    }
    ord
}

/// The scalar M-Index key of an object: cell ordinal plus the normalized
/// distance to its closest pivot. `d_first` must satisfy
/// `0 ≤ d_first ≤ d_max`; the fraction is clamped strictly below 1 so the
/// key stays inside its cell interval.
pub fn scalar_key(prefix: &[u16], d_first: f64, d_max: f64, num_pivots: usize) -> f64 {
    assert!(d_max > 0.0, "d_max must be positive");
    assert!(d_first >= 0.0, "distances are non-negative");
    let frac = (d_first / d_max).min(1.0 - f64::EPSILON);
    cell_ordinal(prefix, num_pivots) as f64 + frac
}

/// The half-open key interval `[lo, hi)` covering a cell at level
/// `prefix.len()` — a range scan over it visits exactly the cell's objects.
pub fn cell_interval(prefix: &[u16], num_pivots: usize) -> (f64, f64) {
    let ord = cell_ordinal(prefix, num_pivots) as f64;
    (ord, ord + 1.0)
}

/// Recovers the permutation prefix from a cell ordinal at level `l`.
pub fn ordinal_to_prefix(ordinal: u64, level: usize, num_pivots: usize) -> Vec<u16> {
    assert!(level > 0);
    let n = num_pivots as u64;
    let mut digits = vec![0u16; level];
    let mut x = ordinal;
    for i in (0..level).rev() {
        digits[i] = (x % n) as u16;
        x /= n;
    }
    assert_eq!(x, 0, "ordinal too large for level {level}");
    digits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals_are_distinct_per_prefix() {
        let n = 4;
        let mut seen = std::collections::HashSet::new();
        for a in 0..4u16 {
            for b in 0..4u16 {
                if a == b {
                    continue;
                }
                assert!(
                    seen.insert(cell_ordinal(&[a, b], n)),
                    "collision at [{a},{b}]"
                );
            }
        }
    }

    #[test]
    fn ordinal_round_trips_through_prefix() {
        let n = 7;
        for prefix in [vec![0u16, 3], vec![6, 1], vec![2, 5], vec![4, 0]] {
            let ord = cell_ordinal(&prefix, n);
            assert_eq!(ordinal_to_prefix(ord, prefix.len(), n), prefix);
        }
    }

    #[test]
    fn keys_order_objects_within_a_cell() {
        let n = 5;
        let prefix = [2u16, 0];
        let k1 = scalar_key(&prefix, 1.0, 10.0, n);
        let k2 = scalar_key(&prefix, 5.0, 10.0, n);
        let k3 = scalar_key(&prefix, 9.9, 10.0, n);
        assert!(k1 < k2 && k2 < k3);
        let (lo, hi) = cell_interval(&prefix, n);
        for k in [k1, k2, k3] {
            assert!(lo <= k && k < hi, "key {k} escapes cell [{lo},{hi})");
        }
    }

    #[test]
    fn max_distance_stays_inside_cell() {
        let n = 3;
        let k = scalar_key(&[1], 10.0, 10.0, n);
        let (lo, hi) = cell_interval(&[1], n);
        assert!(
            k >= lo && k < hi,
            "boundary distance must not leak into the next cell"
        );
    }

    #[test]
    fn cells_map_to_disjoint_intervals() {
        let n = 4;
        let (lo_a, hi_a) = cell_interval(&[0, 1], n);
        let (lo_b, hi_b) = cell_interval(&[0, 2], n);
        assert!(hi_a <= lo_b || hi_b <= lo_a, "intervals overlap");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pivot_rejected() {
        let _ = cell_ordinal(&[5], 4);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_ordinal_rejected() {
        let _ = ordinal_to_prefix(100, 1, 4);
    }
}
