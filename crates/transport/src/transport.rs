//! Transport abstraction and the in-process deployment.
//!
//! The experiment harness needs the three cost components the paper reports
//! separately — client, server, communication. The in-process transport
//! yields them exactly: server time is measured around the handler call and
//! communication time is computed from exact byte counts through a
//! [`NetworkModel`]. This removes scheduler noise from the shape of the
//! results while keeping byte counts honest (they come from real encoded
//! frames, the same ones [`crate::tcp`] puts on a socket).

use std::time::{Duration, Instant};

use crate::{TransportError, TransportStats};

/// Server side of the protocol: consumes a request payload, produces a
/// response payload. Implemented by the M-Index server, the baselines'
/// servers, and test echo servers.
pub trait RequestHandler: Send {
    /// Handles one request.
    fn handle(&mut self, request: &[u8]) -> Vec<u8>;
}

impl<F: FnMut(&[u8]) -> Vec<u8> + Send> RequestHandler for F {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// The *shared-read* server side: a handler whose request processing needs
/// only `&self`, so one instance behind an [`std::sync::Arc`] can serve any
/// number of connections/threads concurrently (cf. [`crate::tcp::serve_tcp_shared`]).
///
/// This is the trait a scalable similarity-cloud server implements; the
/// classic [`RequestHandler`] remains for single-threaded deployments and
/// stateful test doubles. Wrap a shared handler in [`Shared`] where a
/// `&mut self` [`RequestHandler`] is expected.
pub trait SharedRequestHandler: Send + Sync {
    /// Handles one request without exclusive access.
    fn handle_shared(&self, request: &[u8]) -> Vec<u8>;
}

impl<H: SharedRequestHandler + ?Sized> SharedRequestHandler for std::sync::Arc<H> {
    fn handle_shared(&self, request: &[u8]) -> Vec<u8> {
        (**self).handle_shared(request)
    }
}

/// Blanket `&mut self` adapter: lets any [`SharedRequestHandler`] (including
/// `Arc<H>`) drive APIs written against [`RequestHandler`], e.g.
/// [`InProcessTransport`] clients sharing one server.
pub struct Shared<H>(pub H);

impl<H> std::fmt::Debug for Shared<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl<H: SharedRequestHandler> RequestHandler for Shared<H> {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self.0.handle_shared(request)
    }
}

/// Whether a request may be transparently retried after a transport
/// failure whose outcome is unknown (connection cut after the request was
/// sent, deadline expired mid-read, …).
///
/// The encrypted client classifies every protocol request: kNN / Range /
/// BatchKnn / FetchObjects / ExportAll are read-only and replay-safe
/// ([`RequestClass::Idempotent`]); `Insert` is not — the server rejects
/// duplicate ids, so a blind replay of a request that *was* applied turns
/// into a spurious error, and the client must instead surface a typed
/// error carrying what is known about the acked prefix
/// ([`RequestClass::NonIdempotent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// Replay-safe: the transport may retry/reconnect transparently.
    Idempotent,
    /// Replay-unsafe: retried only when the request provably never
    /// reached the server (dial failure, typed load-shed refusal).
    NonIdempotent,
}

/// Client side: a byte-level request/response channel with cost accounting.
pub trait Transport {
    /// Sends a request and waits for the response.
    fn round_trip(&mut self, request: &[u8]) -> Result<Vec<u8>, TransportError>;

    /// [`Transport::round_trip`] with a retry class and an optional
    /// whole-request deadline (spanning every attempt, backoff included).
    ///
    /// The default implementation ignores both and delegates — correct
    /// for in-process transports, which cannot lose a connection.
    /// Fault-tolerant transports (TCP) override it.
    fn round_trip_with(
        &mut self,
        request: &[u8],
        class: RequestClass,
        deadline: Option<Duration>,
    ) -> Result<Vec<u8>, TransportError> {
        let _ = (class, deadline);
        self.round_trip(request)
    }

    /// Cumulative statistics.
    fn stats(&self) -> TransportStats;
}

/// Analytic network model: `time(bytes) = latency + bytes / bandwidth`,
/// applied per direction of every round trip.
///
/// The default models the loopback interface of the paper's testbed
/// (both processes on one machine): 25 µs one-way latency, 1 GiB/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way latency per message.
    pub latency: Duration,
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::loopback()
    }
}

impl NetworkModel {
    /// Loopback interface (paper's setting: client and server on the same
    /// machine).
    pub fn loopback() -> Self {
        Self {
            latency: Duration::from_micros(25),
            bandwidth: 1.0 * 1024.0 * 1024.0 * 1024.0,
        }
    }

    /// A typical 2012 LAN: 0.3 ms latency, 1 Gb/s.
    pub fn lan() -> Self {
        Self {
            latency: Duration::from_micros(300),
            bandwidth: 125.0 * 1000.0 * 1000.0,
        }
    }

    /// A WAN link to a remote cloud region: 20 ms latency, 100 Mb/s —
    /// used by the ablation that shows how the trade-off shifts when the
    /// similarity cloud is actually remote.
    pub fn wan() -> Self {
        Self {
            latency: Duration::from_millis(20),
            bandwidth: 12.5 * 1000.0 * 1000.0,
        }
    }

    /// Transfer time of `bytes` in one direction.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

/// Frame header size: `u32` length prefix.
pub const FRAME_HEADER: usize = 4;

/// In-process deployment: the handler runs in the caller's process; the
/// communication component is modelled, the server component is measured.
pub struct InProcessTransport<H> {
    handler: H,
    model: NetworkModel,
    stats: TransportStats,
}

impl<H> std::fmt::Debug for InProcessTransport<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcessTransport").finish_non_exhaustive()
    }
}

impl<H: RequestHandler> InProcessTransport<H> {
    /// Wraps `handler` with the default loopback model.
    pub fn new(handler: H) -> Self {
        Self::with_model(handler, NetworkModel::default())
    }

    /// Wraps `handler` with an explicit network model.
    pub fn with_model(handler: H, model: NetworkModel) -> Self {
        Self {
            handler,
            model,
            stats: TransportStats::default(),
        }
    }

    /// Access the wrapped handler (e.g. to inspect server-side state in
    /// tests and experiment reports).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutable access to the wrapped handler.
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// The configured network model.
    pub fn model(&self) -> NetworkModel {
        self.model
    }
}

impl<H: RequestHandler> Transport for InProcessTransport<H> {
    fn round_trip(&mut self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        let sent = (request.len() + FRAME_HEADER) as u64;
        let start = Instant::now();
        let response = self.handler.handle(request);
        let server_time = start.elapsed();
        let received = (response.len() + FRAME_HEADER) as u64;
        self.stats.requests += 1;
        self.stats.bytes_sent += sent;
        self.stats.bytes_received += received;
        self.stats.server_time += server_time;
        self.stats.comm_time += self.model.transfer_time(sent) + self.model.transfer_time(received);
        Ok(response)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl RequestHandler for Echo {
        fn handle(&mut self, request: &[u8]) -> Vec<u8> {
            let mut out = request.to_vec();
            out.reverse();
            out
        }
    }

    #[test]
    fn round_trip_returns_response_and_counts_bytes() {
        let mut t = InProcessTransport::new(Echo);
        let resp = t.round_trip(b"abc").unwrap();
        assert_eq!(resp, b"cba");
        let s = t.stats();
        assert_eq!(s.requests, 1);
        assert_eq!(s.bytes_sent, 3 + FRAME_HEADER as u64);
        assert_eq!(s.bytes_received, 3 + FRAME_HEADER as u64);
        assert!(s.comm_time > Duration::ZERO);
    }

    #[test]
    fn closure_handlers_work() {
        let mut t = InProcessTransport::new(|req: &[u8]| req.to_vec());
        assert_eq!(t.round_trip(b"hi").unwrap(), b"hi");
    }

    #[test]
    fn network_model_times() {
        let m = NetworkModel {
            latency: Duration::from_millis(1),
            bandwidth: 1000.0, // 1000 B/s
        };
        // 500 bytes at 1000 B/s = 0.5 s + 1 ms latency
        let t = m.transfer_time(500);
        assert!((t.as_secs_f64() - 0.501).abs() < 1e-9);
        // WAN slower than loopback for same bytes
        assert!(
            NetworkModel::wan().transfer_time(10_000)
                > NetworkModel::loopback().transfer_time(10_000)
        );
    }

    #[test]
    fn server_time_accumulates() {
        let mut t = InProcessTransport::new(|_req: &[u8]| {
            std::thread::sleep(Duration::from_millis(2));
            vec![1]
        });
        t.round_trip(b"x").unwrap();
        t.round_trip(b"y").unwrap();
        assert!(t.stats().server_time >= Duration::from_millis(4));
        assert_eq!(t.stats().requests, 2);
    }

    #[test]
    fn handler_access() {
        struct Counting(u32);
        impl RequestHandler for Counting {
            fn handle(&mut self, _r: &[u8]) -> Vec<u8> {
                self.0 += 1;
                vec![]
            }
        }
        let mut t = InProcessTransport::new(Counting(0));
        t.round_trip(b"a").unwrap();
        t.round_trip(b"b").unwrap();
        assert_eq!(t.handler().0, 2);
        t.handler_mut().0 = 0;
        assert_eq!(t.handler().0, 0);
    }
}
