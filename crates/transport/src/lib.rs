//! # simcloud-transport — client/server substrate with cost accounting
//!
//! The paper runs the encryption client and the M-Index server as separate
//! processes "communicating via TCP/IP" on a loopback interface (§4.4, §5.1)
//! and reports three separate cost components per operation: client time,
//! server time and communication time/cost. This crate reproduces that
//! substrate:
//!
//! * [`RequestHandler`] — the server side as a byte-level request→response
//!   function (the protocol crates encode messages on top);
//! * [`SharedRequestHandler`] — the `&self` variant for servers whose read
//!   path is lock-free; [`serve_tcp_shared`] serves one instance to any
//!   number of concurrent connections, and [`Shared`] adapts it back to the
//!   `&mut self` world;
//! * [`InProcessTransport`] — calls the handler directly; communication
//!   *time* is computed from exact byte counts through a configurable
//!   [`NetworkModel`] (default calibrated to a loopback interface), while
//!   server time is the measured wall time inside the handler;
//! * [`TcpTransport`] / [`serve_tcp`] — a real TCP loopback deployment: the
//!   server thread prefixes each response with its measured processing time
//!   so the client can attribute elapsed = server + communication;
//! * [`TransportStats`] — requests, exact bytes in both directions,
//!   accumulated server and communication time;
//! * [`Stopwatch`] — the timing primitive the experiment harness uses for
//!   the client-side components;
//! * [`fault`] — a network fault-injection harness ([`FaultScript`] /
//!   [`FaultStream`] / [`FaultTransport`]), the counterpart to the storage
//!   crate's `FaultEnv`: scripted cuts, delays, truncations, drops and bit
//!   flips at operation N in either direction, usable in-process and around
//!   real TCP streams.
//!
//! Frame format (both transports): `u32 LE length || payload`. Frames are
//! capped at [`MAX_FRAME_BYTES`] (plus the 8-byte server-time header on
//! responses), matching the protocol layer's decode cap, so a hostile
//! length prefix cannot force a huge allocation.
//!
//! The TCP client is fault tolerant: per-socket read/write timeouts, a
//! per-request deadline ([`Transport::round_trip_with`]), and — for
//! requests the caller declares [`RequestClass::Idempotent`] — transparent
//! reconnect + retry with capped exponential backoff and deterministic
//! jitter ([`RetryPolicy`]). The server protects itself with idle/read
//! deadlines, a connection limit with typed load-shedding refusal
//! ([`TransportError::Rejected`]) and a graceful bounded drain on shutdown
//! ([`ServeOptions`]).

#![warn(missing_docs)]

pub mod fault;
pub mod stats;
pub mod stopwatch;
pub mod tcp;
pub mod telemetry;
pub mod transport;

pub use fault::{Direction, FaultAction, FaultRule, FaultScript, FaultStream, FaultTransport};
pub use stats::TransportStats;
pub use stopwatch::Stopwatch;
pub use tcp::{
    serve_tcp, serve_tcp_shared, serve_tcp_shared_with, serve_tcp_with, RetryPolicy, ServeOptions,
    TcpClientConfig, TcpTransport,
};
pub use telemetry::TransportTiming;
pub use transport::{
    InProcessTransport, NetworkModel, RequestClass, RequestHandler, Shared, SharedRequestHandler,
    Transport,
};

/// Largest accepted frame payload, aligned with the protocol layer's
/// 64 MiB decode cap (`MAX_DECODE_BYTES` re-exports this constant), so the
/// transport rejects a hostile length prefix before allocating.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Transport-level errors.
#[derive(Debug)]
pub enum TransportError {
    /// Underlying socket/I/O failure.
    Io(std::io::Error),
    /// Peer sent a malformed frame.
    BadFrame(String),
    /// The connection was closed mid-exchange.
    Disconnected,
    /// A read, write or whole-request deadline expired.
    TimedOut,
    /// The server refused the request before reading it (load shedding at
    /// the connection limit). Always safe to retry — the request was never
    /// processed — which the TCP client does automatically for every
    /// request class.
    Rejected(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::BadFrame(s) => write!(f, "bad frame: {s}"),
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::TimedOut => write!(f, "request deadline exceeded"),
            TransportError::Rejected(s) => write!(f, "server refused request: {s}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(TransportError::Disconnected
            .to_string()
            .contains("disconnected"));
        assert!(TransportError::BadFrame("x".into())
            .to_string()
            .contains("x"));
        let e: TransportError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(TransportError::TimedOut.to_string().contains("deadline"));
        assert!(TransportError::Rejected("limit".into())
            .to_string()
            .contains("limit"));
    }
}
