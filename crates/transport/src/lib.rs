//! # simcloud-transport — client/server substrate with cost accounting
//!
//! The paper runs the encryption client and the M-Index server as separate
//! processes "communicating via TCP/IP" on a loopback interface (§4.4, §5.1)
//! and reports three separate cost components per operation: client time,
//! server time and communication time/cost. This crate reproduces that
//! substrate:
//!
//! * [`RequestHandler`] — the server side as a byte-level request→response
//!   function (the protocol crates encode messages on top);
//! * [`SharedRequestHandler`] — the `&self` variant for servers whose read
//!   path is lock-free; [`serve_tcp_shared`] serves one instance to any
//!   number of concurrent connections, and [`Shared`] adapts it back to the
//!   `&mut self` world;
//! * [`InProcessTransport`] — calls the handler directly; communication
//!   *time* is computed from exact byte counts through a configurable
//!   [`NetworkModel`] (default calibrated to a loopback interface), while
//!   server time is the measured wall time inside the handler;
//! * [`TcpTransport`] / [`serve_tcp`] — a real TCP loopback deployment: the
//!   server thread prefixes each response with its measured processing time
//!   so the client can attribute elapsed = server + communication;
//! * [`TransportStats`] — requests, exact bytes in both directions,
//!   accumulated server and communication time;
//! * [`Stopwatch`] — the timing primitive the experiment harness uses for
//!   the client-side components.
//!
//! Frame format (both transports): `u32 LE length || payload`.

#![warn(missing_docs)]

pub mod stats;
pub mod stopwatch;
pub mod tcp;
pub mod transport;

pub use stats::TransportStats;
pub use stopwatch::Stopwatch;
pub use tcp::{serve_tcp, serve_tcp_shared, TcpTransport};
pub use transport::{
    InProcessTransport, NetworkModel, RequestHandler, Shared, SharedRequestHandler, Transport,
};

/// Transport-level errors.
#[derive(Debug)]
pub enum TransportError {
    /// Underlying socket/I/O failure.
    Io(std::io::Error),
    /// Peer sent a malformed frame.
    BadFrame(String),
    /// The connection was closed mid-exchange.
    Disconnected,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::BadFrame(s) => write!(f, "bad frame: {s}"),
            TransportError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(TransportError::Disconnected
            .to_string()
            .contains("disconnected"));
        assert!(TransportError::BadFrame("x".into())
            .to_string()
            .contains("x"));
        let e: TransportError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
    }
}
