//! Wall-clock timing primitive for the experiment cost components.

use std::time::{Duration, Instant};

/// Accumulating stopwatch: measures disjoint code sections and sums them,
/// the way the paper accumulates "client time", "encryption time" etc.
/// across a bulk of operations.
#[derive(Debug, Clone, Default)]
pub struct Stopwatch {
    total: Duration,
}

impl Stopwatch {
    /// New stopwatch at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, adds the elapsed wall time, returns `f`'s result.
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.total += start.elapsed();
        r
    }

    /// Adds an externally measured duration.
    pub fn add(&mut self, d: Duration) {
        self.total += d;
    }

    /// Total accumulated time.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Total in seconds as `f64` (reporting convenience).
    pub fn secs(&self) -> f64 {
        self.total.as_secs_f64()
    }

    /// Resets to zero and returns the previous total.
    pub fn reset(&mut self) -> Duration {
        std::mem::take(&mut self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_returns_result() {
        let mut sw = Stopwatch::new();
        let x = sw.time(|| {
            std::thread::sleep(Duration::from_millis(2));
            41 + 1
        });
        assert_eq!(x, 42);
        assert!(sw.total() >= Duration::from_millis(2));
        let before = sw.total();
        sw.time(|| {});
        assert!(sw.total() >= before);
    }

    #[test]
    fn add_and_reset() {
        let mut sw = Stopwatch::new();
        sw.add(Duration::from_secs(1));
        sw.add(Duration::from_secs(2));
        assert_eq!(sw.total(), Duration::from_secs(3));
        assert!((sw.secs() - 3.0).abs() < 1e-9);
        assert_eq!(sw.reset(), Duration::from_secs(3));
        assert_eq!(sw.total(), Duration::ZERO);
    }
}
