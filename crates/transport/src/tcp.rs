//! Real TCP loopback deployment, fault tolerant end to end.
//!
//! The paper's prototype runs "both client and server … communicating via
//! TCP/IP" on one machine (§4.4). [`serve_tcp`] spawns a server thread that
//! owns a [`RequestHandler`]; [`TcpTransport`] is the client side.
//!
//! Each accepted connection is served by its own worker thread. Two serving
//! modes exist:
//!
//! * [`serve_tcp`] — the handler is shared behind a mutex: requests across
//!   connections are serialized (the paper's single-threaded prototype, and
//!   the right mode for `&mut self` handlers);
//! * [`serve_tcp_shared`] — the handler implements
//!   [`SharedRequestHandler`] and is shared behind an `Arc` with **no
//!   lock**: connections are served fully concurrently, which is how the
//!   shared-read `CloudServer` scales query throughput with client count.
//!
//! Wire format per message: `u32 LE payload length || payload`. Responses
//! additionally carry a leading `u64 LE` with the server's measured
//! processing time in nanoseconds, so the client can attribute the elapsed
//! round-trip time between the "server" and "communication" components the
//! way the paper's tables do. The reserved value `u64::MAX` in that slot
//! marks a *control frame* — currently only the load-shedding refusal a
//! server at its connection limit sends before closing — which the client
//! surfaces as [`TransportError::Rejected`].
//!
//! ## Fault tolerance
//!
//! The client ([`TcpClientConfig`]) enforces per-socket read/write
//! timeouts and an optional whole-request deadline, and retries
//! [`RequestClass::Idempotent`] requests with capped exponential backoff,
//! deterministic jitter and automatic reconnect ([`RetryPolicy`]).
//! Non-idempotent requests (`Insert`) are retried only when the failure
//! provably preceded the first request byte (dial failure, load-shed
//! refusal); any later failure is surfaced so the caller can recover
//! without risking a duplicate insert.
//!
//! The server ([`ServeOptions`]) bounds idle connections and mid-frame
//! stalls, refuses connections beyond a limit with a typed control frame
//! instead of an opaque hang, and drains in-flight requests at shutdown:
//! workers observe the stop flag at frame boundaries (never mid-request)
//! and [`TcpServerHandle::shutdown`] joins them within a bounded drain
//! window.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use simcloud_telemetry::Registry;

use crate::fault::{FaultScript, FaultStream};
use crate::telemetry::TransportTiming;
use crate::transport::{
    RequestClass, RequestHandler, SharedRequestHandler, Transport, FRAME_HEADER,
};
use crate::{TransportError, TransportStats, MAX_FRAME_BYTES};

/// Reserved server-time value marking a transport control frame (load-shed
/// refusal); real measurements saturate just below it.
const CONTROL_FRAME: u64 = u64::MAX;

/// Granularity at which idle server workers re-check the stop flag.
const POLL_TICK: Duration = Duration::from_millis(20);

/// Granularity of the non-blocking accept poll. Finer than [`POLL_TICK`]
/// because it bounds the latency of every *first* request on a fresh
/// connection, not just shutdown observation.
const ACCEPT_TICK: Duration = Duration::from_millis(1);

/// Smallest socket timeout we ever set (`set_read_timeout(Some(ZERO))` is
/// an error in std).
const MIN_TIMEOUT: Duration = Duration::from_millis(1);

/// A byte stream whose read/write stalls can be bounded. Implemented by
/// `TcpStream` (socket timeouts) and forwarded through [`FaultStream`].
pub trait DeadlineStream: Read + Write {
    /// Bounds how long a single `read` may block (`None` = forever).
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> std::io::Result<()>;
    /// Bounds how long a single `write` may block (`None` = forever).
    fn set_write_deadline(&mut self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl DeadlineStream for TcpStream {
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout.map(|t| t.max(MIN_TIMEOUT)))
    }
    fn set_write_deadline(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_write_timeout(timeout.map(|t| t.max(MIN_TIMEOUT)))
    }
}

impl<S: DeadlineStream> DeadlineStream for FaultStream<S> {
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.note_read_timeout(timeout);
        self.inner_mut().set_read_deadline(timeout)
    }
    fn set_write_deadline(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.note_write_timeout(timeout);
        self.inner_mut().set_write_deadline(timeout)
    }
}

fn is_stall(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Time left until `deadline`, or `Err(TimedOut)` if it already passed.
fn remaining(deadline: Option<Instant>) -> Result<Option<Duration>, TransportError> {
    match deadline {
        None => Ok(None),
        Some(d) => match d.checked_duration_since(Instant::now()) {
            Some(left) if left > Duration::ZERO => Ok(Some(left)),
            _ => Err(TransportError::TimedOut),
        },
    }
}

fn min_timeout(a: Option<Duration>, b: Option<Duration>) -> Option<Duration> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

/// How far a bounded `read_exact` got.
enum ReadOutcome {
    /// Buffer completely filled.
    Full,
    /// The peer closed before the buffer filled (cleanly at 0 bytes,
    /// torn otherwise — both mean the frame stream is over).
    Eof,
}

/// Fills `buf`, bounding each individual read by `stall` and the whole
/// operation by `deadline`. A peer close yields `ReadOutcome::Eof`; a
/// stall past either bound yields `TransportError::TimedOut`.
fn read_exact_deadline<S: DeadlineStream>(
    stream: &mut S,
    buf: &mut [u8],
    deadline: Option<Instant>,
    stall: Option<Duration>,
) -> Result<ReadOutcome, TransportError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let timeout = min_timeout(remaining(deadline)?, stall);
        stream
            .set_read_deadline(timeout)
            .map_err(TransportError::Io)?;
        let Some(rest) = buf.get_mut(filled..) else {
            break;
        };
        match stream.read(rest) {
            Ok(0) => return Ok(ReadOutcome::Eof),
            Ok(n) => filled += n,
            Err(e) if is_stall(e.kind()) => return Err(TransportError::TimedOut),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(ReadOutcome::Eof),
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Reads one `u32 LE length || payload` frame. `extra` is the allowance
/// above [`MAX_FRAME_BYTES`] (8 for the response-side server-time header).
fn read_frame_deadline<S: DeadlineStream>(
    stream: &mut S,
    deadline: Option<Instant>,
    stall: Option<Duration>,
    extra: usize,
) -> Result<Vec<u8>, TransportError> {
    let mut len_buf = [0u8; 4];
    match read_exact_deadline(stream, &mut len_buf, deadline, stall)? {
        ReadOutcome::Full => {}
        // A close before or inside the length prefix is a disconnect
        // (clean between frames, torn within one — callers can't tell
        // which from 1–3 bytes, and both mean "resynchronize").
        ReadOutcome::Eof => return Err(TransportError::Disconnected),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES + extra {
        return Err(TransportError::BadFrame(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    match read_exact_deadline(stream, &mut payload, deadline, stall)? {
        ReadOutcome::Full => Ok(payload),
        ReadOutcome::Eof => Err(TransportError::Disconnected),
    }
}

/// Writes one frame, bounding the write by `deadline` via the socket
/// write timeout.
fn write_frame_deadline<S: DeadlineStream>(
    stream: &mut S,
    payload: &[u8],
    deadline: Option<Instant>,
    stall: Option<Duration>,
) -> Result<(), TransportError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| TransportError::BadFrame("frame exceeds u32::MAX bytes".into()))?;
    let timeout = min_timeout(remaining(deadline)?, stall);
    stream
        .set_write_deadline(timeout)
        .map_err(TransportError::Io)?;
    let io = |e: std::io::Error| {
        if is_stall(e.kind()) {
            TransportError::TimedOut
        } else {
            TransportError::Io(e)
        }
    };
    stream.write_all(&len.to_le_bytes()).map_err(io)?;
    stream.write_all(payload).map_err(io)?;
    stream.flush().map_err(io)
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// Capped exponential backoff with deterministic jitter, governing the
/// TCP client's retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, first included (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Ceiling for the exponential backoff.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter (attempts sleep between 50% and
    /// 100% of the computed backoff, pseudo-randomized by this seed).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x5ca1_ab1e,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: every transport failure surfaces immediately.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Backoff to sleep before attempt `attempt` (2-based: the first
    /// retry). Deterministic for a given (`jitter_seed`, `attempt`).
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(2).min(20);
        let raw = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX));
        let capped = raw.min(self.max_backoff);
        let h = splitmix64(self.jitter_seed ^ u64::from(attempt));
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        capped.mul_f64(0.5 + 0.5 * frac)
    }
}

/// SplitMix64 — the standard 64-bit mix, used for deterministic jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Client-side fault-tolerance knobs for [`TcpTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpClientConfig {
    /// Bound on establishing a connection.
    pub connect_timeout: Option<Duration>,
    /// Bound on any single socket read stalling (per read, not per frame).
    pub read_timeout: Option<Duration>,
    /// Bound on any single socket write stalling.
    pub write_timeout: Option<Duration>,
    /// Default whole-request deadline (every attempt + backoff); a
    /// per-call deadline via [`Transport::round_trip_with`] tightens it.
    pub request_deadline: Option<Duration>,
    /// Retry/backoff schedule for idempotent requests.
    pub retry: RetryPolicy,
}

impl Default for TcpClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            request_deadline: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// Client side of the TCP deployment: deadline-aware framing, automatic
/// reconnect, and class-gated retry per [`TcpClientConfig`].
#[derive(Debug)]
pub struct TcpTransport {
    addr: SocketAddr,
    config: TcpClientConfig,
    fault: Option<Arc<FaultScript>>,
    conn: Option<FaultStream<TcpStream>>,
    ever_connected: bool,
    stats: TransportStats,
    telemetry: Option<TransportTiming>,
}

impl TcpTransport {
    /// Connects to a server started with [`serve_tcp`] using default
    /// fault-tolerance settings.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with(addr, TcpClientConfig::default())
    }

    /// Connects with explicit timeouts and retry policy.
    pub fn connect_with(addr: SocketAddr, config: TcpClientConfig) -> std::io::Result<Self> {
        Self::build(addr, config, None)
    }

    /// Connects with a [`FaultScript`] armed on the client's socket ops —
    /// the network fault-injection entry point. The script is shared, so
    /// op counters persist across automatic reconnects.
    pub fn connect_faulty(
        addr: SocketAddr,
        config: TcpClientConfig,
        script: Arc<FaultScript>,
    ) -> std::io::Result<Self> {
        Self::build(addr, config, Some(script))
    }

    fn build(
        addr: SocketAddr,
        config: TcpClientConfig,
        fault: Option<Arc<FaultScript>>,
    ) -> std::io::Result<Self> {
        let mut t = Self {
            addr,
            config,
            fault,
            conn: None,
            ever_connected: false,
            stats: TransportStats::default(),
            telemetry: None,
        };
        let stream = t.dial()?;
        t.conn = Some(stream);
        t.ever_connected = true;
        Ok(t)
    }

    /// The active configuration.
    pub fn config(&self) -> TcpClientConfig {
        self.config
    }

    /// Binds the client's fault-tolerance metrics (`transport.dial` /
    /// `transport.backoff` histograms, `transport.retries` /
    /// `transport.reconnects` counters) into `registry`, so a front end
    /// can expose its outbound-connection health next to the server-side
    /// request metrics.
    pub fn bind_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(TransportTiming::bind(registry));
    }

    fn dial(&self) -> std::io::Result<FaultStream<TcpStream>> {
        let _dial = self.telemetry.as_ref().map(TransportTiming::dial_timer);
        let stream = match self.config.connect_timeout {
            Some(t) => TcpStream::connect_timeout(&self.addr, t.max(MIN_TIMEOUT))?,
            None => TcpStream::connect(self.addr)?,
        };
        stream.set_nodelay(true)?;
        Ok(FaultStream::wrap(stream, self.fault.clone()))
    }

    /// One attempt: ensure a connection, send the request, read the
    /// response. On failure, reports whether the server may have seen the
    /// request (`true` once the first request byte could have left).
    fn attempt(
        &mut self,
        request: &[u8],
        deadline: Option<Instant>,
    ) -> Result<Vec<u8>, (TransportError, bool)> {
        if self.conn.is_none() {
            match self.dial() {
                Ok(c) => {
                    self.conn = Some(c);
                    if self.ever_connected {
                        self.stats.reconnects += 1;
                        if let Some(t) = &self.telemetry {
                            t.count_reconnect();
                        }
                    }
                    self.ever_connected = true;
                }
                // Nothing was sent: even an Insert is safe to retry here.
                Err(e) => return Err((TransportError::Io(e), false)),
            }
        }
        let (read_stall, write_stall) = (self.config.read_timeout, self.config.write_timeout);
        let Some(stream) = self.conn.as_mut() else {
            return Err((TransportError::Disconnected, false));
        };
        let start = Instant::now();
        write_frame_deadline(stream, request, deadline, write_stall).map_err(|e| (e, true))?;
        let framed = read_frame_deadline(stream, deadline, read_stall, 8).map_err(|e| (e, true))?;
        let elapsed = start.elapsed();
        let Some((ns_bytes, rest)) = framed.split_first_chunk::<8>() else {
            return Err((
                TransportError::BadFrame("missing server-time header".into()),
                true,
            ));
        };
        let server_ns = u64::from_le_bytes(*ns_bytes);
        if server_ns == CONTROL_FRAME {
            // Load-shed refusal: the server closed without reading the
            // request, so a replay is safe for every request class.
            return Err((
                TransportError::Rejected(String::from_utf8_lossy(rest).into_owned()),
                false,
            ));
        }
        let server_time = Duration::from_nanos(server_ns);
        let response = rest.to_vec();
        self.stats.requests += 1;
        self.stats.bytes_sent += (request.len() + FRAME_HEADER) as u64;
        // The 8-byte server-time header is measurement apparatus, not
        // protocol payload; excluded from communication cost.
        self.stats.bytes_received += (response.len() + FRAME_HEADER) as u64;
        self.stats.server_time += server_time;
        self.stats.comm_time += elapsed.saturating_sub(server_time);
        Ok(response)
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        self.round_trip_with(request, RequestClass::Idempotent, None)
    }

    fn round_trip_with(
        &mut self,
        request: &[u8],
        class: RequestClass,
        deadline: Option<Duration>,
    ) -> Result<Vec<u8>, TransportError> {
        let budget = min_timeout(deadline, self.config.request_deadline);
        let deadline = budget.map(|d| Instant::now() + d);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if attempt > 1 {
                let mut pause = self.config.retry.backoff_before(attempt);
                if let Some(left) = remaining(deadline)? {
                    pause = pause.min(left);
                }
                {
                    let _backoff = self.telemetry.as_ref().map(TransportTiming::backoff_timer);
                    std::thread::sleep(pause);
                }
                self.stats.retries += 1;
                if let Some(t) = &self.telemetry {
                    t.count_retry();
                }
            }
            let (err, maybe_processed) = match self.attempt(request, deadline) {
                Ok(response) => return Ok(response),
                Err(pair) => pair,
            };
            // Any failure poisons frame sync; reconnect on the next try.
            self.conn = None;
            let replay_safe = !maybe_processed || class == RequestClass::Idempotent;
            let retriable = replay_safe
                && matches!(
                    err,
                    TransportError::Io(_)
                        | TransportError::Disconnected
                        | TransportError::TimedOut
                        | TransportError::Rejected(_)
                );
            let out_of_budget =
                attempt >= self.config.retry.max_attempts.max(1) || remaining(deadline).is_err();
            if !retriable || out_of_budget {
                return Err(err);
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

/// Server self-protection knobs for [`serve_tcp_with`] /
/// [`serve_tcp_shared_with`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Close a connection with no complete request for this long
    /// (`None` = idle forever, bounded only by shutdown).
    pub idle_timeout: Option<Duration>,
    /// Bound on a single mid-frame read stalling (slow-loris cap).
    pub read_timeout: Option<Duration>,
    /// Bound on a single response write stalling.
    pub write_timeout: Option<Duration>,
    /// Maximum concurrently served connections; beyond it, new
    /// connections get a typed refusal control frame and are closed
    /// (`None` = unlimited).
    pub max_connections: Option<usize>,
    /// How long [`TcpServerHandle::shutdown`] waits for in-flight
    /// requests to finish before detaching stragglers.
    pub drain_timeout: Duration,
    /// Fault script armed on every accepted connection's socket ops
    /// (server-side fault injection for tests and benches).
    pub fault: Option<Arc<FaultScript>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            idle_timeout: None,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_connections: None,
            drain_timeout: Duration::from_secs(5),
            fault: None,
        }
    }
}

#[derive(Debug)]
struct ServerState {
    stop: AtomicBool,
    active: AtomicUsize,
    shed: AtomicU64,
    opts: ServeOptions,
}

/// Handle to a running TCP server; dropping it stops the accept loop and
/// drains workers (bounded by [`ServeOptions::drain_timeout`]).
#[derive(Debug)]
pub struct TcpServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpServerHandle {
    /// Address the server listens on (connect [`TcpTransport`] here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.state.active.load(Ordering::SeqCst)
    }

    /// Connections refused so far at the [`ServeOptions::max_connections`]
    /// limit.
    pub fn shed_connections(&self) -> u64 {
        self.state.shed.load(Ordering::SeqCst)
    }

    /// Signals shutdown, waits for the accept loop to exit, then drains
    /// worker threads: each finishes its in-flight request (workers check
    /// the stop flag only at frame boundaries, so responses are never
    /// truncated) and is joined, bounded by
    /// [`ServeOptions::drain_timeout`].
    pub fn shutdown(mut self) {
        self.stop_and_drain();
    }

    fn stop_and_drain(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.accept.take() {
            let _ = j.join();
        }
        let deadline = Instant::now() + self.state.opts.drain_timeout;
        while self.state.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let drained: Vec<JoinHandle<()>> = {
            let mut ws = self.workers.lock();
            let (done, live): (Vec<_>, Vec<_>) =
                ws.drain(..).partition(std::thread::JoinHandle::is_finished);
            *ws = live; // stragglers past the drain window stay detached
            done
        };
        for handle in drained {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.stop_and_drain();
    }
}

/// Starts a TCP server on `127.0.0.1` (ephemeral port) serving `handler`
/// with default [`ServeOptions`].
///
/// Connections are accepted concurrently; requests across connections are
/// serialized through a mutex around the handler (the M-Index server is a
/// single-writer structure, as in the paper's prototype).
pub fn serve_tcp<H: RequestHandler + 'static>(handler: H) -> std::io::Result<TcpServerHandle> {
    serve_tcp_with(handler, ServeOptions::default())
}

/// [`serve_tcp`] with explicit [`ServeOptions`].
pub fn serve_tcp_with<H: RequestHandler + 'static>(
    handler: H,
    options: ServeOptions,
) -> std::io::Result<TcpServerHandle> {
    let handler = Arc::new(Mutex::new(handler));
    serve_with(options, move |stream, state| {
        let handler = Arc::clone(&handler);
        serve_connection(stream, state, move |req| handler.lock().handle(req));
    })
}

/// Starts a TCP server on `127.0.0.1` (ephemeral port) serving a *shared*
/// handler with **no lock**: every accepted connection gets a worker thread
/// that calls `handler.handle_shared` directly, so independent clients'
/// requests are processed concurrently.
///
/// The caller keeps a clone of the `Arc` for server-side inspection
/// (statistics, index shape) while the server runs.
pub fn serve_tcp_shared<H: SharedRequestHandler + 'static>(
    handler: Arc<H>,
) -> std::io::Result<TcpServerHandle> {
    serve_tcp_shared_with(handler, ServeOptions::default())
}

/// [`serve_tcp_shared`] with explicit [`ServeOptions`].
pub fn serve_tcp_shared_with<H: SharedRequestHandler + 'static>(
    handler: Arc<H>,
    options: ServeOptions,
) -> std::io::Result<TcpServerHandle> {
    serve_with(options, move |stream, state| {
        let handler = Arc::clone(&handler);
        serve_connection(stream, state, move |req| handler.handle_shared(req));
    })
}

/// Shared accept loop: binds, polls non-blockingly (so shutdown is
/// observed within one [`POLL_TICK`], not on the next connection), sheds
/// connections beyond the limit with a typed control frame, and registers
/// worker threads for the bounded shutdown drain.
fn serve_with<F>(options: ServeOptions, serve_conn: F) -> std::io::Result<TcpServerHandle>
where
    F: Fn(FaultStream<TcpStream>, Arc<ServerState>) + Send + Clone + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        stop: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        shed: AtomicU64::new(0),
        opts: options,
    });
    let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let state2 = Arc::clone(&state);
    let workers2 = Arc::clone(&workers);
    let accept = std::thread::Builder::new()
        .name("simcloud-tcp-accept".into())
        .spawn(move || loop {
            if state2.stop.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = match listener.accept() {
                Ok(pair) => pair,
                Err(e) if is_stall(e.kind()) => {
                    std::thread::sleep(ACCEPT_TICK);
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            // Accepted sockets must not inherit the listener's
            // non-blocking mode (platform-dependent) — workers rely on
            // socket timeouts.
            if stream.set_nonblocking(false).is_err() {
                continue;
            }
            // Responses are written as separate length/payload writes;
            // without TCP_NODELAY, Nagle holds the second write for the
            // peer's delayed ACK (~40 ms per response on loopback).
            let _ = stream.set_nodelay(true);
            let at_limit = state2
                .opts
                .max_connections
                .is_some_and(|cap| state2.active.load(Ordering::SeqCst) >= cap);
            if at_limit {
                state2.shed.fetch_add(1, Ordering::SeqCst);
                shed_connection(stream, &state2);
                continue;
            }
            state2.active.fetch_add(1, Ordering::SeqCst);
            let worker_state = Arc::clone(&state2);
            let worker = serve_conn.clone();
            let fault = state2.opts.fault.clone();
            let spawned = std::thread::Builder::new()
                .name("simcloud-tcp-conn".into())
                .spawn(move || worker(FaultStream::wrap(stream, fault), worker_state));
            match spawned {
                Ok(handle) => {
                    let mut ws = workers2.lock();
                    // Opportunistically reap finished workers so the
                    // registry doesn't grow with total connections served.
                    let (done, live): (Vec<_>, Vec<_>) =
                        ws.drain(..).partition(std::thread::JoinHandle::is_finished);
                    *ws = live;
                    ws.push(handle);
                    drop(ws);
                    for h in done {
                        let _ = h.join();
                    }
                }
                Err(_) => {
                    state2.active.fetch_sub(1, Ordering::SeqCst);
                }
            }
        })?;
    Ok(TcpServerHandle {
        addr,
        state,
        accept: Some(accept),
        workers,
    })
}

/// Writes the load-shedding refusal control frame, half-closes, then
/// briefly drains whatever the client already sent before dropping the
/// socket — closing with unread data would send an RST that could discard
/// the refusal from the client's receive buffer. Runs in a short-lived
/// detached thread so a slow client can't stall the accept loop.
fn shed_connection(mut stream: TcpStream, state: &ServerState) {
    let msg = format!(
        "connection limit of {} reached",
        state.opts.max_connections.unwrap_or(0)
    );
    let _ = std::thread::Builder::new()
        .name("simcloud-tcp-shed".into())
        .spawn(move || {
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let mut framed = Vec::with_capacity(8 + msg.len());
            framed.extend_from_slice(&CONTROL_FRAME.to_le_bytes());
            framed.extend_from_slice(msg.as_bytes());
            if let Ok(len) = u32::try_from(framed.len()) {
                let _ = stream.write_all(&len.to_le_bytes());
                let _ = stream.write_all(&framed);
                let _ = stream.flush();
            }
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
            let mut scratch = [0u8; 4096];
            let deadline = Instant::now() + Duration::from_secs(1);
            while Instant::now() < deadline {
                match stream.read(&mut scratch) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        });
}

/// Waits for the next request frame, polling in [`POLL_TICK`] slices so
/// the stop flag and idle deadline are observed *between* frames only.
/// Returns `None` when the connection should close (client gone, idle
/// timeout, shutdown, torn frame, oversized frame, I/O error).
fn await_request<S: DeadlineStream>(stream: &mut S, state: &ServerState) -> Option<Vec<u8>> {
    let idle_deadline = state.opts.idle_timeout.map(|t| Instant::now() + t);
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_buf.len() {
        if filled == 0 {
            if state.stop.load(Ordering::SeqCst) {
                return None; // frame boundary: safe drain point
            }
            if idle_deadline.is_some_and(|d| Instant::now() >= d) {
                return None; // idle kick
            }
        }
        if stream.set_read_deadline(Some(POLL_TICK)).is_err() {
            return None;
        }
        let rest = len_buf.get_mut(filled..)?;
        match stream.read(rest) {
            Ok(0) => return None, // client closed (cleanly or mid-prefix)
            Ok(n) => filled += n,
            Err(e) if is_stall(e.kind()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES + 8 {
        return None; // hostile length prefix: close without allocating
    }
    let mut payload = vec![0u8; len];
    // Mid-frame: the sender has committed, so a plain stall cap applies
    // (a slow-loris peer is cut after read_timeout, not kept forever).
    match read_exact_deadline(stream, &mut payload, None, state.opts.read_timeout) {
        Ok(ReadOutcome::Full) => Some(payload),
        _ => None, // torn frame, stall, or I/O error
    }
}

fn serve_connection<S: DeadlineStream>(
    mut stream: FaultStream<S>,
    state: Arc<ServerState>,
    mut handle: impl FnMut(&[u8]) -> Vec<u8>,
) {
    while let Some(request) = await_request(&mut stream, &state) {
        let start = Instant::now();
        let response = handle(&request);
        let server_ns = u64::try_from(start.elapsed().as_nanos())
            .unwrap_or(CONTROL_FRAME)
            .min(CONTROL_FRAME - 1); // u64::MAX is reserved for control frames
        let mut framed = Vec::with_capacity(8 + response.len());
        framed.extend_from_slice(&server_ns.to_le_bytes());
        framed.extend_from_slice(&response);
        if write_frame_deadline(&mut stream, &framed, None, state.opts.write_timeout).is_err() {
            break;
        }
    }
    state.active.fetch_sub(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_round_trip() {
        let server = serve_tcp(|req: &[u8]| {
            let mut out = req.to_vec();
            out.reverse();
            out
        })
        .unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        assert_eq!(client.round_trip(b"hello").unwrap(), b"olleh");
        assert_eq!(client.round_trip(b"x").unwrap(), b"x");
        let s = client.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes_sent, (5 + 4) as u64 + (1 + 4) as u64);
        assert_eq!(s.bytes_received, s.bytes_sent);
        assert_eq!(s.retries, 0);
        assert_eq!(s.reconnects, 0);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn shutdown_with_client_still_connected_does_not_hang() {
        let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        assert_eq!(client.round_trip(b"ping").unwrap(), b"ping");
        // Client intentionally kept alive across shutdown.
        server.shutdown();
        drop(client);
    }

    #[test]
    fn shutdown_is_prompt_and_drains_workers() {
        let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        assert_eq!(client.round_trip(b"a").unwrap(), b"a");
        assert_eq!(server.active_connections(), 1);
        let start = Instant::now();
        server.shutdown();
        // Prompt: one poll tick for accept + one for the worker, not "on
        // the next incoming connection".
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shutdown took {:?}",
            start.elapsed()
        );
        // The drained worker closed the connection; the next request
        // cannot succeed (it errors after exhausting quick retries).
        let cfg = TcpClientConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            connect_timeout: Some(Duration::from_millis(200)),
            ..TcpClientConfig::default()
        };
        client.config = cfg;
        assert!(client.round_trip(b"b").is_err());
    }

    #[test]
    fn tcp_server_time_attribution() {
        let server = serve_tcp(|_req: &[u8]| {
            std::thread::sleep(Duration::from_millis(10));
            vec![0u8; 8]
        })
        .unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        client.round_trip(b"q").unwrap();
        let s = client.stats();
        assert!(
            s.server_time >= Duration::from_millis(10),
            "server time {:?} should include the sleep",
            s.server_time
        );
        assert!(
            s.comm_time < Duration::from_millis(10),
            "comm time {:?} should exclude the server sleep",
            s.comm_time
        );
        drop(client);
        server.shutdown();
    }

    #[test]
    fn tcp_large_payload() {
        let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let big = vec![0xabu8; 1_000_000];
        let resp = client.round_trip(&big).unwrap();
        assert_eq!(resp, big);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        // Raw stream poke: claim a frame bigger than the cap. The server
        // must close (BadFrame territory), not allocate 1 GiB.
        let huge = u32::try_from(MAX_FRAME_BYTES + 9).unwrap();
        let stream = client.conn.as_mut().unwrap();
        stream.write_all(&huge.to_le_bytes()).unwrap();
        stream.flush().unwrap();
        let mut probe = [0u8; 1];
        stream
            .set_read_deadline(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(
            stream.read(&mut probe).unwrap(),
            0,
            "server must close on an oversized length prefix"
        );
        server.shutdown();
    }

    #[test]
    fn idle_timeout_closes_silent_connections() {
        let server = serve_tcp_with(
            |req: &[u8]| req.to_vec(),
            ServeOptions {
                idle_timeout: Some(Duration::from_millis(60)),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut client = TcpTransport::connect_with(
            server.addr(),
            TcpClientConfig {
                retry: RetryPolicy::none(),
                ..TcpClientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(client.round_trip(b"live").unwrap(), b"live");
        std::thread::sleep(Duration::from_millis(200));
        // The server kicked us while idle; without retries the failure
        // surfaces, with the default policy a reconnect would hide it.
        assert!(client.round_trip(b"late").is_err());
        assert_eq!(server.active_connections(), 0);
        server.shutdown();
    }

    #[test]
    fn reconnect_hides_idle_kick_with_retries_enabled() {
        let server = serve_tcp_with(
            |req: &[u8]| req.to_vec(),
            ServeOptions {
                idle_timeout: Some(Duration::from_millis(60)),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        assert_eq!(client.round_trip(b"one").unwrap(), b"one");
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(client.round_trip(b"two").unwrap(), b"two");
        let s = client.stats();
        assert!(s.reconnects >= 1, "expected a reconnect, stats: {s}");
        server.shutdown();
    }

    #[test]
    fn connection_limit_sheds_with_typed_refusal() {
        let server = serve_tcp_with(
            |req: &[u8]| req.to_vec(),
            ServeOptions {
                max_connections: Some(1),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut first = TcpTransport::connect(server.addr()).unwrap();
        assert_eq!(first.round_trip(b"a").unwrap(), b"a");
        // Second client: every attempt is shed while the first holds the
        // only slot, so the typed refusal surfaces after retries.
        let mut second = TcpTransport::connect_with(
            server.addr(),
            TcpClientConfig {
                retry: RetryPolicy {
                    max_attempts: 2,
                    base_backoff: Duration::from_millis(1),
                    ..RetryPolicy::default()
                },
                ..TcpClientConfig::default()
            },
        )
        .unwrap();
        match second.round_trip(b"b") {
            Err(TransportError::Rejected(msg)) => {
                assert!(msg.contains("limit"), "unexpected refusal message: {msg}");
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        assert!(server.shed_connections() >= 1);
        // Free the slot; the shed client recovers by reconnecting.
        drop(first);
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(second.round_trip(b"c").unwrap(), b"c");
        server.shutdown();
    }

    #[test]
    fn request_deadline_bounds_a_stalled_server() {
        // Handler sleeps far past the client's deadline.
        let server = serve_tcp(|_req: &[u8]| {
            std::thread::sleep(Duration::from_millis(500));
            vec![1]
        })
        .unwrap();
        let mut client = TcpTransport::connect_with(
            server.addr(),
            TcpClientConfig {
                request_deadline: Some(Duration::from_millis(80)),
                retry: RetryPolicy::none(),
                ..TcpClientConfig::default()
            },
        )
        .unwrap();
        let start = Instant::now();
        match client.round_trip(b"slow") {
            Err(TransportError::TimedOut) => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "deadline not enforced: {:?}",
            start.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn per_read_timeout_bounds_a_stalled_server() {
        let server = serve_tcp(|_req: &[u8]| {
            std::thread::sleep(Duration::from_millis(500));
            vec![1]
        })
        .unwrap();
        let mut client = TcpTransport::connect_with(
            server.addr(),
            TcpClientConfig {
                read_timeout: Some(Duration::from_millis(50)),
                retry: RetryPolicy::none(),
                ..TcpClientConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            client.round_trip(b"slow"),
            Err(TransportError::TimedOut)
        ));
        server.shutdown();
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 42,
        };
        // Deterministic: same inputs, same outputs.
        assert_eq!(p.backoff_before(2), p.backoff_before(2));
        for attempt in 2..10 {
            let b = p.backoff_before(attempt);
            // Jitter keeps every backoff in [cap/2, cap].
            assert!(b <= p.max_backoff, "attempt {attempt}: {b:?}");
            assert!(b >= Duration::from_millis(5), "attempt {attempt}: {b:?}");
        }
        // Different seeds give different jitter (overwhelmingly likely).
        let q = RetryPolicy {
            jitter_seed: 43,
            ..p
        };
        assert_ne!(p.backoff_before(3), q.backoff_before(3));
    }

    #[test]
    fn tcp_concurrent_clients_share_handler_state() {
        struct Counter(u32);
        impl RequestHandler for Counter {
            fn handle(&mut self, _r: &[u8]) -> Vec<u8> {
                self.0 += 1;
                self.0.to_le_bytes().to_vec()
            }
        }
        let server = serve_tcp(Counter(0)).unwrap();
        let mut c1 = TcpTransport::connect(server.addr()).unwrap();
        let mut c2 = TcpTransport::connect(server.addr()).unwrap();
        let r1 = u32::from_le_bytes(c1.round_trip(b"a").unwrap().try_into().unwrap());
        let r2 = u32::from_le_bytes(c2.round_trip(b"b").unwrap().try_into().unwrap());
        let r3 = u32::from_le_bytes(c1.round_trip(b"c").unwrap().try_into().unwrap());
        assert_eq!(
            {
                let mut v = vec![r1, r2, r3];
                v.sort_unstable();
                v
            },
            vec![1, 2, 3],
            "all clients hit one shared handler"
        );
        drop(c1);
        drop(c2);
        server.shutdown();
    }

    #[test]
    fn tcp_shared_handler_serves_concurrent_clients_without_lock() {
        use std::sync::atomic::AtomicU64;

        // A shared handler that records the number of requests in flight at
        // once; with serve_tcp_shared two stalled requests must overlap.
        struct SlowCounter {
            in_flight: AtomicU64,
            max_in_flight: AtomicU64,
            served: AtomicU64,
        }
        impl SharedRequestHandler for SlowCounter {
            fn handle_shared(&self, request: &[u8]) -> Vec<u8> {
                let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                self.max_in_flight.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(30));
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                self.served.fetch_add(1, Ordering::SeqCst);
                request.to_vec()
            }
        }

        let handler = Arc::new(SlowCounter {
            in_flight: AtomicU64::new(0),
            max_in_flight: AtomicU64::new(0),
            served: AtomicU64::new(0),
        });
        let server = serve_tcp_shared(Arc::clone(&handler)).unwrap();
        let addr = server.addr();
        std::thread::scope(|s| {
            for i in 0u8..3 {
                s.spawn(move || {
                    let mut client = TcpTransport::connect(addr).unwrap();
                    assert_eq!(client.round_trip(&[i]).unwrap(), vec![i]);
                });
            }
        });
        assert_eq!(handler.served.load(Ordering::SeqCst), 3);
        assert!(
            handler.max_in_flight.load(Ordering::SeqCst) >= 2,
            "shared serving must overlap requests, max in flight was {}",
            handler.max_in_flight.load(Ordering::SeqCst)
        );
        server.shutdown();
    }

    #[test]
    fn shared_adapter_drives_request_handler_apis() {
        struct Echo;
        impl SharedRequestHandler for Echo {
            fn handle_shared(&self, request: &[u8]) -> Vec<u8> {
                request.to_vec()
            }
        }
        let mut t = crate::InProcessTransport::new(crate::Shared(Arc::new(Echo)));
        assert_eq!(t.round_trip(b"hi").unwrap(), b"hi");
    }

    #[test]
    fn tcp_sequential_clients() {
        let server = serve_tcp(|req: &[u8]| vec![req.len() as u8]).unwrap();
        for i in 1..4usize {
            let mut client = TcpTransport::connect(server.addr()).unwrap();
            let resp = client.round_trip(&vec![0u8; i]).unwrap();
            assert_eq!(resp, vec![i as u8]);
            // client dropped here; server accepts the next one
        }
        server.shutdown();
    }
}
