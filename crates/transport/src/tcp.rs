//! Real TCP loopback deployment.
//!
//! The paper's prototype runs "both client and server … communicating via
//! TCP/IP" on one machine (§4.4). [`serve_tcp`] spawns a server thread that
//! owns a [`RequestHandler`]; [`TcpTransport`] is the client side.
//!
//! Each accepted connection is served by its own worker thread. Two serving
//! modes exist:
//!
//! * [`serve_tcp`] — the handler is shared behind a mutex: requests across
//!   connections are serialized (the paper's single-threaded prototype, and
//!   the right mode for `&mut self` handlers);
//! * [`serve_tcp_shared`] — the handler implements
//!   [`SharedRequestHandler`] and is shared behind an `Arc` with **no
//!   lock**: connections are served fully concurrently, which is how the
//!   shared-read `CloudServer` scales query throughput with client count.
//!
//! Wire format per message: `u32 LE payload length || payload`. Responses
//! additionally carry a leading `u64 LE` with the server's measured
//! processing time in nanoseconds, so the client can attribute the elapsed
//! round-trip time between the "server" and "communication" components the
//! way the paper's tables do.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::transport::{RequestHandler, SharedRequestHandler, Transport, FRAME_HEADER};
use crate::{TransportError, TransportStats};

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::other("frame exceeds u32::MAX bytes"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> Result<Vec<u8>, TransportError> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(TransportError::Disconnected)
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > 1 << 30 {
        return Err(TransportError::BadFrame(format!("frame of {len} bytes")));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TransportError::Disconnected
        } else {
            TransportError::Io(e)
        }
    })?;
    Ok(payload)
}

/// Handle to a running TCP server; dropping it stops the accept loop.
/// Active connections finish serving their current client independently.
#[derive(Debug)]
pub struct TcpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl TcpServerHandle {
    /// Address the server listens on (connect [`TcpTransport`] here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to stop and waits for it to exit. Worker
    /// threads for already-accepted connections are detached and exit when
    /// their client disconnects.
    pub fn shutdown(mut self) {
        self.stop_accept_loop();
    }

    fn stop_accept_loop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.stop_accept_loop();
    }
}

/// Starts a TCP server on `127.0.0.1` (ephemeral port) serving `handler`.
///
/// Connections are accepted concurrently; requests across connections are
/// serialized through a mutex around the handler (the M-Index server is a
/// single-writer structure, as in the paper's prototype).
pub fn serve_tcp<H: RequestHandler + 'static>(handler: H) -> std::io::Result<TcpServerHandle> {
    let handler = Arc::new(Mutex::new(handler));
    serve_with(move |stream| {
        let handler = Arc::clone(&handler);
        serve_connection(stream, move |req| handler.lock().handle(req));
    })
}

/// Starts a TCP server on `127.0.0.1` (ephemeral port) serving a *shared*
/// handler with **no lock**: every accepted connection gets a worker thread
/// that calls `handler.handle_shared` directly, so independent clients'
/// requests are processed concurrently.
///
/// The caller keeps a clone of the `Arc` for server-side inspection
/// (statistics, index shape) while the server runs.
pub fn serve_tcp_shared<H: SharedRequestHandler + 'static>(
    handler: Arc<H>,
) -> std::io::Result<TcpServerHandle> {
    serve_with(move |stream| {
        let handler = Arc::clone(&handler);
        serve_connection(stream, move |req| handler.handle_shared(req));
    })
}

/// Shared accept loop: binds, then spawns a detached worker thread per
/// accepted connection; `serve_conn` runs inside the worker until the
/// client disconnects.
fn serve_with<F>(serve_conn: F) -> std::io::Result<TcpServerHandle>
where
    F: Fn(TcpStream) + Send + Clone + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("simcloud-tcp-accept".into())
        .spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                let Ok((stream, _)) = listener.accept() else {
                    break;
                };
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let worker = serve_conn.clone();
                // Detached worker: exits when the client disconnects.
                let _ = std::thread::Builder::new()
                    .name("simcloud-tcp-conn".into())
                    .spawn(move || worker(stream));
            }
        })?;
    Ok(TcpServerHandle {
        addr,
        stop,
        join: Some(join),
    })
}

fn serve_connection(mut stream: TcpStream, mut handle: impl FnMut(&[u8]) -> Vec<u8>) {
    stream.set_nodelay(true).ok();
    // Serve until the client disconnects or the connection breaks.
    while let Ok(request) = read_frame(&mut stream) {
        let start = Instant::now();
        let response = handle(&request);
        let server_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut framed = Vec::with_capacity(8 + response.len());
        framed.extend_from_slice(&server_ns.to_le_bytes());
        framed.extend_from_slice(&response);
        if write_frame(&mut stream, &framed).is_err() {
            break;
        }
    }
}

/// Client side of the TCP deployment.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    stats: TransportStats,
}

impl TcpTransport {
    /// Connects to a server started with [`serve_tcp`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            stats: TransportStats::default(),
        })
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        let start = Instant::now();
        write_frame(&mut self.stream, request)?;
        let framed = read_frame(&mut self.stream)?;
        let elapsed = start.elapsed();
        let Some((ns_bytes, rest)) = framed.split_first_chunk::<8>() else {
            return Err(TransportError::BadFrame(
                "missing server-time header".into(),
            ));
        };
        let server_time = Duration::from_nanos(u64::from_le_bytes(*ns_bytes));
        let response = rest.to_vec();
        self.stats.requests += 1;
        self.stats.bytes_sent += (request.len() + FRAME_HEADER) as u64;
        // The 8-byte server-time header is measurement apparatus, not
        // protocol payload; excluded from communication cost.
        self.stats.bytes_received += (response.len() + FRAME_HEADER) as u64;
        self.stats.server_time += server_time;
        self.stats.comm_time += elapsed.saturating_sub(server_time);
        Ok(response)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_round_trip() {
        let server = serve_tcp(|req: &[u8]| {
            let mut out = req.to_vec();
            out.reverse();
            out
        })
        .unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        assert_eq!(client.round_trip(b"hello").unwrap(), b"olleh");
        assert_eq!(client.round_trip(b"x").unwrap(), b"x");
        let s = client.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes_sent, (5 + 4) as u64 + (1 + 4) as u64);
        assert_eq!(s.bytes_received, s.bytes_sent);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn shutdown_with_client_still_connected_does_not_hang() {
        let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        assert_eq!(client.round_trip(b"ping").unwrap(), b"ping");
        // Client intentionally kept alive across shutdown.
        server.shutdown();
        drop(client);
    }

    #[test]
    fn tcp_server_time_attribution() {
        let server = serve_tcp(|_req: &[u8]| {
            std::thread::sleep(Duration::from_millis(10));
            vec![0u8; 8]
        })
        .unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        client.round_trip(b"q").unwrap();
        let s = client.stats();
        assert!(
            s.server_time >= Duration::from_millis(10),
            "server time {:?} should include the sleep",
            s.server_time
        );
        assert!(
            s.comm_time < Duration::from_millis(10),
            "comm time {:?} should exclude the server sleep",
            s.comm_time
        );
        drop(client);
        server.shutdown();
    }

    #[test]
    fn tcp_large_payload() {
        let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let big = vec![0xabu8; 1_000_000];
        let resp = client.round_trip(&big).unwrap();
        assert_eq!(resp, big);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn tcp_concurrent_clients_share_handler_state() {
        struct Counter(u32);
        impl RequestHandler for Counter {
            fn handle(&mut self, _r: &[u8]) -> Vec<u8> {
                self.0 += 1;
                self.0.to_le_bytes().to_vec()
            }
        }
        let server = serve_tcp(Counter(0)).unwrap();
        let mut c1 = TcpTransport::connect(server.addr()).unwrap();
        let mut c2 = TcpTransport::connect(server.addr()).unwrap();
        let r1 = u32::from_le_bytes(c1.round_trip(b"a").unwrap().try_into().unwrap());
        let r2 = u32::from_le_bytes(c2.round_trip(b"b").unwrap().try_into().unwrap());
        let r3 = u32::from_le_bytes(c1.round_trip(b"c").unwrap().try_into().unwrap());
        assert_eq!(
            {
                let mut v = vec![r1, r2, r3];
                v.sort_unstable();
                v
            },
            vec![1, 2, 3],
            "all clients hit one shared handler"
        );
        drop(c1);
        drop(c2);
        server.shutdown();
    }

    #[test]
    fn tcp_shared_handler_serves_concurrent_clients_without_lock() {
        use std::sync::atomic::AtomicU64;

        // A shared handler that records the number of requests in flight at
        // once; with serve_tcp_shared two stalled requests must overlap.
        struct SlowCounter {
            in_flight: AtomicU64,
            max_in_flight: AtomicU64,
            served: AtomicU64,
        }
        impl SharedRequestHandler for SlowCounter {
            fn handle_shared(&self, request: &[u8]) -> Vec<u8> {
                let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                self.max_in_flight.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(30));
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                self.served.fetch_add(1, Ordering::SeqCst);
                request.to_vec()
            }
        }

        let handler = Arc::new(SlowCounter {
            in_flight: AtomicU64::new(0),
            max_in_flight: AtomicU64::new(0),
            served: AtomicU64::new(0),
        });
        let server = serve_tcp_shared(Arc::clone(&handler)).unwrap();
        let addr = server.addr();
        std::thread::scope(|s| {
            for i in 0u8..3 {
                s.spawn(move || {
                    let mut client = TcpTransport::connect(addr).unwrap();
                    assert_eq!(client.round_trip(&[i]).unwrap(), vec![i]);
                });
            }
        });
        assert_eq!(handler.served.load(Ordering::SeqCst), 3);
        assert!(
            handler.max_in_flight.load(Ordering::SeqCst) >= 2,
            "shared serving must overlap requests, max in flight was {}",
            handler.max_in_flight.load(Ordering::SeqCst)
        );
        server.shutdown();
    }

    #[test]
    fn shared_adapter_drives_request_handler_apis() {
        struct Echo;
        impl SharedRequestHandler for Echo {
            fn handle_shared(&self, request: &[u8]) -> Vec<u8> {
                request.to_vec()
            }
        }
        let mut t = crate::InProcessTransport::new(crate::Shared(Arc::new(Echo)));
        assert_eq!(t.round_trip(b"hi").unwrap(), b"hi");
    }

    #[test]
    fn tcp_sequential_clients() {
        let server = serve_tcp(|req: &[u8]| vec![req.len() as u8]).unwrap();
        for i in 1..4usize {
            let mut client = TcpTransport::connect(server.addr()).unwrap();
            let resp = client.round_trip(&vec![0u8; i]).unwrap();
            assert_eq!(resp, vec![i as u8]);
            // client dropped here; server accepts the next one
        }
        server.shutdown();
    }
}
