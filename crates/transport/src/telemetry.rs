//! Transport-layer client telemetry: dial and backoff timing plus retry
//! and reconnect counters, bound into a [`Registry`] under the
//! `transport` component.
//!
//! A client binds one of these (`TcpTransport::bind_telemetry`) to watch
//! its fault-tolerance machinery: how long dials take, how much time is
//! lost sleeping between attempts, and how often the retry/reconnect
//! paths fire. The counters always count (they are the
//! [`crate::TransportStats`] retry/reconnect numbers, mirrored into the
//! registry); only the clock-reading histograms follow the registry's
//! enabled switch.

use std::sync::Arc;

use simcloud_telemetry::{Counter, Histogram, Registry, SpanTimer};

/// Client transport metrics bound to one registry.
///
/// * `transport.dial` (histogram) — one record per TCP dial, successful
///   or not.
/// * `transport.backoff` (histogram) — one record per retry pause.
/// * `transport.retries` (counter) — request attempts after the first.
/// * `transport.reconnects` (counter) — re-dials after a connection was
///   ever established.
#[derive(Debug, Clone)]
pub struct TransportTiming {
    registry: Registry,
    dial: Arc<Histogram>,
    backoff: Arc<Histogram>,
    retries: Arc<Counter>,
    reconnects: Arc<Counter>,
}

impl TransportTiming {
    /// Registers the transport metrics on `registry` and binds to its
    /// enabled switch.
    pub fn bind(registry: &Registry) -> Self {
        TransportTiming {
            registry: registry.clone(),
            dial: registry.histogram("transport", "dial"),
            backoff: registry.histogram("transport", "backoff"),
            retries: registry.counter("transport", "retries"),
            reconnects: registry.counter("transport", "reconnects"),
        }
    }

    /// RAII timer for one dial (free when disabled).
    pub(crate) fn dial_timer(&self) -> SpanTimer<'_> {
        SpanTimer::new(&self.dial, self.registry.enabled())
    }

    /// RAII timer for one retry backoff pause (free when disabled).
    pub(crate) fn backoff_timer(&self) -> SpanTimer<'_> {
        SpanTimer::new(&self.backoff, self.registry.enabled())
    }

    /// Counts one retry attempt.
    pub(crate) fn count_retry(&self) {
        self.retries.inc();
    }

    /// Counts one reconnect.
    pub(crate) fn count_reconnect(&self) {
        self.reconnects.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_timers_land_in_the_registry() {
        let registry = Registry::new();
        let timing = TransportTiming::bind(&registry);
        {
            let _d = timing.dial_timer();
        }
        {
            let _b = timing.backoff_timer();
        }
        timing.count_retry();
        timing.count_reconnect();
        let text = registry.render();
        assert!(text.contains("counter transport.retries 1"), "{text}");
        assert!(text.contains("counter transport.reconnects 1"), "{text}");
        assert!(text.contains("histogram transport.dial count=1"), "{text}");
        assert!(
            text.contains("histogram transport.backoff count=1"),
            "{text}"
        );
    }
}
