//! Transport statistics — the paper's "communication time" and
//! "communication cost" columns.

use std::time::Duration;

/// Cumulative transport statistics for one client connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Number of request/response round trips.
    pub requests: u64,
    /// Exact bytes sent client → server (including frame headers).
    pub bytes_sent: u64,
    /// Exact bytes received server → client (including frame headers).
    pub bytes_received: u64,
    /// Accumulated server-side processing time.
    pub server_time: Duration,
    /// Accumulated communication time (modelled or measured).
    pub comm_time: Duration,
    /// Attempts beyond the first, across all requests (TCP retry loop).
    pub retries: u64,
    /// Connections re-established after a failure (TCP reconnect).
    pub reconnects: u64,
}

impl TransportStats {
    /// Total bytes moved in either direction — the paper's "communication
    /// cost \[kB\]" rows report this per query.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Difference since an earlier snapshot (per-operation accounting).
    pub fn since(&self, earlier: &TransportStats) -> TransportStats {
        TransportStats {
            requests: self.requests - earlier.requests,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            server_time: self.server_time.saturating_sub(earlier.server_time),
            comm_time: self.comm_time.saturating_sub(earlier.comm_time),
            retries: self.retries - earlier.retries,
            reconnects: self.reconnects - earlier.reconnects,
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &TransportStats) {
        self.requests += other.requests;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.server_time += other.server_time;
        self.comm_time += other.comm_time;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
    }
}

impl std::fmt::Display for TransportStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} req, {:.3} kB sent, {:.3} kB recv, server {:?}, comm {:?}",
            self.requests,
            self.bytes_sent as f64 / 1000.0,
            self.bytes_received as f64 / 1000.0,
            self.server_time,
            self.comm_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_since() {
        let a = TransportStats {
            requests: 2,
            bytes_sent: 100,
            bytes_received: 300,
            server_time: Duration::from_millis(5),
            comm_time: Duration::from_millis(2),
            ..TransportStats::default()
        };
        assert_eq!(a.total_bytes(), 400);
        let mut b = a;
        b.requests = 5;
        b.bytes_sent = 150;
        let d = b.since(&a);
        assert_eq!(d.requests, 3);
        assert_eq!(d.bytes_sent, 50);
        assert_eq!(d.bytes_received, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TransportStats::default();
        let b = TransportStats {
            requests: 1,
            bytes_sent: 10,
            bytes_received: 20,
            server_time: Duration::from_micros(7),
            comm_time: Duration::from_micros(3),
            retries: 1,
            reconnects: 1,
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.requests, 2);
        assert_eq!(a.total_bytes(), 60);
        assert_eq!(a.server_time, Duration::from_micros(14));
    }

    #[test]
    fn display_contains_components() {
        let s = TransportStats {
            requests: 1,
            bytes_sent: 1000,
            bytes_received: 2000,
            ..Default::default()
        };
        let out = s.to_string();
        assert!(out.contains("1 req"));
        assert!(out.contains("1.000 kB"));
        assert!(out.contains("2.000 kB"));
    }
}
