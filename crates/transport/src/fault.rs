//! Network fault injection — the transport counterpart to the storage
//! crate's `FaultEnv`.
//!
//! A [`FaultScript`] is a shared, thread-safe schedule of [`FaultRule`]s
//! keyed by *operation index* per [`Direction`]: every read from the peer
//! is one `Recv` op, every write toward the peer is one `Send` op. Rules
//! fire once ([`FaultRule::once`]) or periodically ([`FaultRule::every`]),
//! injecting a [`FaultAction`]:
//!
//! * `Cut` — hard disconnect: sends fail with `ConnectionReset`, reads
//!   return EOF, and the stream stays dead (the peer sees a close);
//! * `Delay` — stall the op (exercises read/write timeouts);
//! * `Truncate` — deliver/emit only a prefix of the op, then die mid-frame
//!   (the torn-frame case);
//! * `CorruptBit` — flip one bit in the bytes that pass through (exercises
//!   MAC verification and decode hardening);
//! * `Drop` — swallow the op: a send pretends success, a recv consumes
//!   nothing and times out (exercises deadlines, not disconnect handling).
//!
//! The same script drives both layers of injection:
//!
//! * [`FaultStream`] wraps any `Read + Write` byte stream (a real
//!   `TcpStream` via `TcpTransport::connect_faulty`, or served connections
//!   via `ServeOptions::fault`), counting raw socket ops;
//! * [`FaultTransport`] wraps a whole [`Transport`] in-process, counting
//!   round trips (one `Send` + one `Recv` op per call).
//!
//! Because the script is shared via `Arc` and op counters live inside it,
//! the schedule survives reconnects — "cut the 7th socket write" means the
//! 7th across all connections the client opens, which is what a
//! disconnect-at-every-op sweep needs.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::transport::RequestClass;
use crate::{Transport, TransportError, TransportStats};

/// Which direction of the byte flow a rule applies to, from the wrapped
/// endpoint's point of view: `Send` = bytes written toward the peer,
/// `Recv` = bytes read from the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Writes toward the peer.
    Send,
    /// Reads from the peer.
    Recv,
}

/// The injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Hard disconnect: the op fails, the stream is dead from now on.
    Cut,
    /// Stall the op for the given duration, then perform it normally.
    Delay(Duration),
    /// Flip one bit of the data passing through (at `offset` modulo the
    /// op's byte count).
    CorruptBit {
        /// Byte offset whose lowest bit is flipped (taken modulo the
        /// number of bytes the op actually moves).
        offset: usize,
    },
    /// Perform only a `keep`-byte prefix of the op, then kill the stream —
    /// the peer observes a torn frame.
    Truncate {
        /// Bytes allowed through before the stream dies.
        keep: usize,
    },
    /// Swallow the op: a send pretends success without transmitting, a
    /// recv consumes the peer's bytes but delivers a timeout.
    Drop,
}

/// One scheduled fault: fire `action` on `dir` ops, starting at op
/// `at_op` (0-based), once or every `period` ops thereafter.
#[derive(Debug, Clone, Copy)]
pub struct FaultRule {
    /// Direction the rule watches.
    pub dir: Direction,
    /// First op index (0-based) the rule fires at.
    pub at_op: u64,
    /// `None` = fire once; `Some(p)` = fire at `at_op`, `at_op + p`, ….
    pub period: Option<u64>,
    /// What to inject.
    pub action: FaultAction,
}

impl FaultRule {
    /// A one-shot rule: fire `action` exactly once, at op `at_op`.
    pub fn once(dir: Direction, at_op: u64, action: FaultAction) -> Self {
        Self {
            dir,
            at_op,
            period: None,
            action,
        }
    }

    /// A periodic rule: fire `action` every `period` ops (first at op
    /// `period - 1`, i.e. on every `period`-th op). A `period` of 0 is
    /// treated as 1 (every op).
    pub fn every(dir: Direction, period: u64, action: FaultAction) -> Self {
        let period = period.max(1);
        Self {
            dir,
            at_op: period - 1,
            period: Some(period),
            action,
        }
    }
}

#[derive(Debug, Default)]
struct ScriptState {
    rules: Vec<FaultRule>,
    fired: Vec<bool>,
    send_ops: u64,
    recv_ops: u64,
    injected: u64,
}

/// A shared, thread-safe fault schedule. Clone the `Arc` into as many
/// [`FaultStream`]s / [`FaultTransport`]s as needed; op counters are
/// global across all of them (and thus across reconnects).
#[derive(Debug, Default)]
pub struct FaultScript {
    state: Mutex<ScriptState>,
}

impl FaultScript {
    /// Builds a script from a rule list.
    pub fn new(rules: Vec<FaultRule>) -> Arc<Self> {
        let fired = vec![false; rules.len()];
        Arc::new(Self {
            state: Mutex::new(ScriptState {
                rules,
                fired,
                send_ops: 0,
                recv_ops: 0,
                injected: 0,
            }),
        })
    }

    /// A script with no rules — useful to *count* ops on a healthy run
    /// before scripting faults at each counted index.
    pub fn quiet() -> Arc<Self> {
        Self::new(Vec::new())
    }

    /// Consumes the next op in `dir`: advances the counter and returns the
    /// action to inject, if any rule matches. First matching rule wins.
    fn next(&self, dir: Direction) -> Option<FaultAction> {
        let mut st = self.state.lock();
        let op = match dir {
            Direction::Send => {
                let op = st.send_ops;
                st.send_ops += 1;
                op
            }
            Direction::Recv => {
                let op = st.recv_ops;
                st.recv_ops += 1;
                op
            }
        };
        let mut hit: Option<(usize, FaultAction)> = None;
        for (i, rule) in st.rules.iter().enumerate() {
            if rule.dir != dir {
                continue;
            }
            let already = st.fired.get(i).copied().unwrap_or(true);
            let matches = match rule.period {
                None => !already && op == rule.at_op,
                Some(p) => op >= rule.at_op && (op - rule.at_op) % p.max(1) == 0,
            };
            if matches {
                hit = Some((i, rule.action));
                break;
            }
        }
        if let Some((i, action)) = hit {
            if let Some(f) = st.fired.get_mut(i) {
                *f = true;
            }
            st.injected += 1;
            return Some(action);
        }
        None
    }

    /// Ops counted so far in `dir`.
    pub fn ops(&self, dir: Direction) -> u64 {
        let st = self.state.lock();
        match dir {
            Direction::Send => st.send_ops,
            Direction::Recv => st.recv_ops,
        }
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().injected
    }
}

/// A `Read + Write` wrapper that consults a [`FaultScript`] on every
/// socket op. `script = None` is a zero-overhead passthrough, which lets
/// the TCP client hold one stream type whether or not faults are armed.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    script: Option<Arc<FaultScript>>,
    dead: bool,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl<S> FaultStream<S> {
    /// Wraps `inner`; `script = None` means transparent passthrough.
    pub fn wrap(inner: S, script: Option<Arc<FaultScript>>) -> Self {
        Self {
            inner,
            script,
            dead: false,
            read_timeout: None,
            write_timeout: None,
        }
    }

    /// Records the read timeout currently armed on the wrapped socket, so
    /// an injected `Delay` can faithfully emulate a stalled peer: a delay
    /// longer than the timeout yields `TimedOut` *without* consuming data,
    /// exactly as the real socket would behave.
    pub fn note_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }

    /// Write-direction counterpart of [`FaultStream::note_read_timeout`].
    pub fn note_write_timeout(&mut self, timeout: Option<Duration>) {
        self.write_timeout = timeout;
    }

    /// Emulates a peer stalling for `delay` against `timeout`: sleeps the
    /// smaller of the two and reports whether the timeout fired first.
    fn stall(delay: Duration, timeout: Option<Duration>) -> bool {
        match timeout {
            Some(t) if t < delay => {
                std::thread::sleep(t);
                true
            }
            _ => {
                std::thread::sleep(delay);
                false
            }
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped stream (socket timeouts etc.).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Whether an injected `Cut`/`Truncate` has killed this stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn consult(&self, dir: Direction) -> Option<FaultAction> {
        self.script.as_ref().and_then(|s| s.next(dir))
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead {
            return Ok(0); // a killed stream looks like a clean close
        }
        match self.consult(Direction::Recv) {
            None => self.inner.read(buf),
            Some(FaultAction::Delay(d)) => {
                if Self::stall(d, self.read_timeout) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "injected recv delay past the read timeout",
                    ));
                }
                self.inner.read(buf)
            }
            Some(FaultAction::Cut) => {
                self.dead = true;
                Ok(0)
            }
            Some(FaultAction::CorruptBit { offset }) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    if let Some(b) = buf.get_mut(offset % n) {
                        *b ^= 1;
                    }
                }
                Ok(n)
            }
            Some(FaultAction::Truncate { keep }) => {
                self.dead = true;
                let cap = keep.min(buf.len());
                match buf.get_mut(..cap) {
                    Some(prefix) if cap > 0 => self.inner.read(prefix),
                    _ => Ok(0),
                }
            }
            Some(FaultAction::Drop) => {
                // Swallow whatever the peer sent without delivering it;
                // the caller observes a stall, i.e. a timeout.
                let mut scratch = [0u8; 4096];
                let _ = self.inner.read(&mut scratch);
                Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "injected recv drop",
                ))
            }
        }
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "stream killed by injected fault",
            ));
        }
        match self.consult(Direction::Send) {
            None => self.inner.write(buf),
            Some(FaultAction::Delay(d)) => {
                if Self::stall(d, self.write_timeout) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "injected send delay past the write timeout",
                    ));
                }
                self.inner.write(buf)
            }
            Some(FaultAction::Cut) => {
                self.dead = true;
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "injected send cut",
                ))
            }
            Some(FaultAction::CorruptBit { offset }) => {
                let mut copy = buf.to_vec();
                let at = offset % copy.len().max(1);
                if let Some(b) = copy.get_mut(at) {
                    *b ^= 1;
                }
                self.inner.write_all(&copy)?;
                Ok(buf.len())
            }
            Some(FaultAction::Truncate { keep }) => {
                let cap = keep.min(buf.len());
                if let Some(prefix) = buf.get(..cap) {
                    if cap > 0 {
                        self.inner.write_all(prefix)?;
                        let _ = self.inner.flush();
                    }
                }
                self.dead = true;
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "injected send truncation",
                ))
            }
            Some(FaultAction::Drop) => Ok(buf.len()), // pretend success
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Ok(());
        }
        self.inner.flush()
    }
}

/// In-process fault injection at round-trip granularity: each
/// [`Transport::round_trip`] counts one `Send` op (the request) and one
/// `Recv` op (the response), and the scripted action applies to the whole
/// message.
pub struct FaultTransport<T> {
    inner: T,
    script: Arc<FaultScript>,
}

impl<T> std::fmt::Debug for FaultTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultTransport").finish_non_exhaustive()
    }
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner`, injecting faults per `script`.
    pub fn new(inner: T, script: Arc<FaultScript>) -> Self {
        Self { inner, script }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The shared script (for op counts / injected totals).
    pub fn script(&self) -> &Arc<FaultScript> {
        &self.script
    }

    /// Applies a request-direction action; `Ok(Some(bytes))` carries the
    /// (possibly corrupted) request through, `Ok(None)` keeps the
    /// original, `Err` aborts the round trip.
    fn apply_send(&self, request: &[u8]) -> Result<Option<Vec<u8>>, TransportError> {
        match self.script.next(Direction::Send) {
            None => Ok(None),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(None)
            }
            Some(FaultAction::Cut) | Some(FaultAction::Truncate { .. }) => {
                Err(TransportError::Disconnected)
            }
            Some(FaultAction::Drop) => Err(TransportError::TimedOut),
            Some(FaultAction::CorruptBit { offset }) => {
                let mut copy = request.to_vec();
                let at = offset % copy.len().max(1);
                if let Some(b) = copy.get_mut(at) {
                    *b ^= 1;
                }
                Ok(Some(copy))
            }
        }
    }

    /// Applies a response-direction action to `response`.
    fn apply_recv(&self, mut response: Vec<u8>) -> Result<Vec<u8>, TransportError> {
        match self.script.next(Direction::Recv) {
            None => Ok(response),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(response)
            }
            Some(FaultAction::Cut) | Some(FaultAction::Truncate { .. }) => {
                Err(TransportError::Disconnected)
            }
            Some(FaultAction::Drop) => Err(TransportError::TimedOut),
            Some(FaultAction::CorruptBit { offset }) => {
                let len = response.len().max(1);
                if let Some(b) = response.get_mut(offset % len) {
                    *b ^= 1;
                }
                Ok(response)
            }
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn round_trip(&mut self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        self.round_trip_with(request, RequestClass::Idempotent, None)
    }

    fn round_trip_with(
        &mut self,
        request: &[u8],
        class: RequestClass,
        deadline: Option<Duration>,
    ) -> Result<Vec<u8>, TransportError> {
        let sent = self.apply_send(request)?;
        let effective = sent.as_deref().unwrap_or(request);
        let response = self.inner.round_trip_with(effective, class, deadline)?;
        self.apply_recv(response)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InProcessTransport;

    #[test]
    fn one_shot_rule_fires_once_at_index() {
        let script = FaultScript::new(vec![FaultRule::once(Direction::Send, 1, FaultAction::Cut)]);
        assert_eq!(script.next(Direction::Send), None); // op 0
        assert_eq!(script.next(Direction::Recv), None); // other direction
        assert_eq!(script.next(Direction::Send), Some(FaultAction::Cut)); // op 1
        assert_eq!(script.next(Direction::Send), None); // fired already
        assert_eq!(script.ops(Direction::Send), 3);
        assert_eq!(script.ops(Direction::Recv), 1);
        assert_eq!(script.injected(), 1);
    }

    #[test]
    fn periodic_rule_fires_every_n() {
        let script = FaultScript::new(vec![FaultRule::every(
            Direction::Recv,
            3,
            FaultAction::Drop,
        )]);
        let hits: Vec<bool> = (0..9)
            .map(|_| script.next(Direction::Recv).is_some())
            .collect();
        assert_eq!(
            hits,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn fault_stream_cut_reads_eof_and_write_errors() {
        let script = FaultScript::new(vec![FaultRule::once(Direction::Send, 0, FaultAction::Cut)]);
        let mut s = FaultStream::wrap(std::io::Cursor::new(vec![1u8, 2, 3]), Some(script));
        assert!(s.write(b"x").is_err());
        assert!(s.is_dead());
        let mut buf = [0u8; 3];
        assert_eq!(s.read(&mut buf).unwrap(), 0); // dead = EOF
        assert!(s.write(b"y").is_err()); // stays dead
    }

    #[test]
    fn fault_stream_truncate_delivers_prefix_then_eof() {
        let script = FaultScript::new(vec![FaultRule::once(
            Direction::Recv,
            0,
            FaultAction::Truncate { keep: 2 },
        )]);
        let mut s = FaultStream::wrap(std::io::Cursor::new(vec![9u8, 8, 7, 6]), Some(script));
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], &[9, 8]);
        assert_eq!(s.read(&mut buf).unwrap(), 0); // dead after the torn read
    }

    #[test]
    fn fault_stream_corrupt_flips_one_bit() {
        let script = FaultScript::new(vec![FaultRule::once(
            Direction::Recv,
            0,
            FaultAction::CorruptBit { offset: 1 },
        )]);
        let mut s = FaultStream::wrap(std::io::Cursor::new(vec![0u8, 0, 0]), Some(script));
        let mut buf = [0u8; 3];
        assert_eq!(s.read(&mut buf).unwrap(), 3);
        assert_eq!(buf, [0, 1, 0]);
    }

    #[test]
    fn passthrough_when_no_script() {
        let mut s = FaultStream::wrap(std::io::Cursor::new(vec![5u8, 6]), None);
        let mut buf = [0u8; 2];
        assert_eq!(s.read(&mut buf).unwrap(), 2);
        assert_eq!(buf, [5, 6]);
    }

    #[test]
    fn fault_transport_injects_at_round_trip_granularity() {
        let script = FaultScript::new(vec![FaultRule::once(Direction::Recv, 1, FaultAction::Cut)]);
        let inner = InProcessTransport::new(|req: &[u8]| req.to_vec());
        let mut t = FaultTransport::new(inner, Arc::clone(&script));
        assert_eq!(t.round_trip(b"ok").unwrap(), b"ok"); // round trip 0 clean
        assert!(matches!(
            t.round_trip(b"boom"),
            Err(TransportError::Disconnected)
        ));
        assert_eq!(t.stats().requests, 2, "inner transport saw both");
        assert_eq!(script.injected(), 1);
    }

    #[test]
    fn fault_transport_corrupts_response_bytes() {
        let script = FaultScript::new(vec![FaultRule::once(
            Direction::Recv,
            0,
            FaultAction::CorruptBit { offset: 0 },
        )]);
        let inner = InProcessTransport::new(|_: &[u8]| vec![0u8, 0]);
        let mut t = FaultTransport::new(inner, script);
        assert_eq!(t.round_trip(b"q").unwrap(), vec![1u8, 0]);
    }
}
