//! The fault harness driving real TCP streams: drops, delays, cuts and
//! periodic fault profiles, and the retry/reconnect machinery recovering
//! from each — or surfacing typed errors when retries are disabled.

use std::sync::Arc;
use std::time::{Duration, Instant};

use simcloud_transport::{
    serve_tcp, Direction, FaultAction, FaultRule, FaultScript, RequestClass, RetryPolicy,
    ServeOptions, TcpClientConfig, TcpTransport, Transport, TransportError,
};

fn quick_retries(max_attempts: u32) -> TcpClientConfig {
    TcpClientConfig {
        read_timeout: Some(Duration::from_millis(200)),
        request_deadline: Some(Duration::from_secs(5)),
        retry: RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 7,
        },
        ..TcpClientConfig::default()
    }
}

#[test]
fn dropped_send_times_out_then_recovers() {
    let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
    // Drop the first socket write: the request never leaves, the read
    // stalls, the per-read timeout fires, the retry reconnects.
    let script = FaultScript::new(vec![FaultRule::once(Direction::Send, 0, FaultAction::Drop)]);
    let mut client =
        TcpTransport::connect_faulty(server.addr(), quick_retries(3), Arc::clone(&script)).unwrap();
    assert_eq!(client.round_trip(b"there").unwrap(), b"there");
    let s = client.stats();
    assert!(s.retries >= 1, "a retry must have happened: {s}");
    assert_eq!(script.injected(), 1);
    server.shutdown();
}

#[test]
fn dropped_response_times_out_then_recovers() {
    let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
    let script = FaultScript::new(vec![FaultRule::once(Direction::Recv, 0, FaultAction::Drop)]);
    let mut client = TcpTransport::connect_faulty(server.addr(), quick_retries(3), script).unwrap();
    assert_eq!(client.round_trip(b"echo").unwrap(), b"echo");
    assert!(client.stats().retries >= 1);
    server.shutdown();
}

#[test]
fn short_delay_passes_without_retry() {
    let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
    // 50 ms delay on the response read, under the 200 ms read timeout.
    let script = FaultScript::new(vec![FaultRule::once(
        Direction::Recv,
        0,
        FaultAction::Delay(Duration::from_millis(50)),
    )]);
    let mut client = TcpTransport::connect_faulty(server.addr(), quick_retries(3), script).unwrap();
    assert_eq!(client.round_trip(b"patience").unwrap(), b"patience");
    assert_eq!(client.stats().retries, 0, "a tolerable delay is no fault");
    server.shutdown();
}

#[test]
fn long_delay_breaches_deadline_with_typed_error() {
    let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
    // Every recv stalls past the read timeout; with retries exhausted the
    // typed timeout surfaces, within the whole-request deadline.
    let script = FaultScript::new(vec![FaultRule::every(
        Direction::Recv,
        1,
        FaultAction::Delay(Duration::from_millis(400)),
    )]);
    let config = TcpClientConfig {
        request_deadline: Some(Duration::from_secs(2)),
        ..quick_retries(2)
    };
    let mut client = TcpTransport::connect_faulty(server.addr(), config, script).unwrap();
    let start = Instant::now();
    match client.round_trip(b"doomed") {
        Err(TransportError::TimedOut) => {}
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert!(start.elapsed() < Duration::from_secs(3), "bounded failure");
    server.shutdown();
}

#[test]
fn cut_at_every_early_op_recovers_or_fails_typed() {
    // Mini chaos sweep at the pure-transport level (the full protocol
    // sweep lives in simcloud-core's chaos_rpc test): cut the connection
    // at each of the first several ops in each direction; with generous
    // retries the echo must still come back, byte-identical.
    for dir in [Direction::Send, Direction::Recv] {
        for at in 0..4u64 {
            let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
            let script = FaultScript::new(vec![FaultRule::once(dir, at, FaultAction::Cut)]);
            let mut client =
                TcpTransport::connect_faulty(server.addr(), quick_retries(4), Arc::clone(&script))
                    .unwrap();
            let payload = format!("sweep-{dir:?}-{at}");
            let got = client
                .round_trip(payload.as_bytes())
                .unwrap_or_else(|e| panic!("cut at {dir:?} op {at} did not recover: {e}"));
            assert_eq!(got, payload.as_bytes(), "cut at {dir:?} op {at}");
            server.shutdown();
        }
    }
}

#[test]
fn non_idempotent_requests_fail_fast_after_send_started() {
    let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
    // Cut on the second socket write — mid-request, after bytes left.
    let script = FaultScript::new(vec![FaultRule::once(Direction::Send, 1, FaultAction::Cut)]);
    let mut client = TcpTransport::connect_faulty(server.addr(), quick_retries(5), script).unwrap();
    let err = client
        .round_trip_with(b"insert!", RequestClass::NonIdempotent, None)
        .expect_err("a mid-send cut must not be retried for NonIdempotent");
    assert!(
        matches!(
            err,
            TransportError::Io(_) | TransportError::Disconnected | TransportError::TimedOut
        ),
        "typed transport error expected, got {err:?}"
    );
    assert_eq!(client.stats().retries, 0, "no blind replay of inserts");
    server.shutdown();
}

#[test]
fn periodic_drop_profile_all_requests_eventually_succeed() {
    // Short server read timeout: a dropped request payload leaves the
    // worker mid-frame, and it must free itself quickly.
    let server = simcloud_transport::serve_tcp_with(
        |req: &[u8]| req.to_vec(),
        ServeOptions {
            read_timeout: Some(Duration::from_millis(200)),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    // Every 5th socket op in each direction is dropped — a lossy-network
    // profile. With retries, every request must still succeed.
    let script = FaultScript::new(vec![
        FaultRule::every(Direction::Send, 5, FaultAction::Drop),
        FaultRule::every(Direction::Recv, 5, FaultAction::Drop),
    ]);
    let config = TcpClientConfig {
        read_timeout: Some(Duration::from_millis(100)),
        ..quick_retries(6)
    };
    let mut client =
        TcpTransport::connect_faulty(server.addr(), config, Arc::clone(&script)).unwrap();
    for i in 0..20u32 {
        let payload = i.to_le_bytes();
        assert_eq!(client.round_trip(&payload).unwrap(), payload, "request {i}");
    }
    assert!(
        script.injected() > 0,
        "the profile must actually have fired"
    );
    server.shutdown();
}

#[test]
fn server_side_faults_are_survivable_too() {
    // Arm the script on the *server's* accepted connections: its response
    // writes get cut; the client reconnects and retries.
    let script = FaultScript::new(vec![FaultRule::once(Direction::Send, 1, FaultAction::Cut)]);
    let server = simcloud_transport::serve_tcp_with(
        |req: &[u8]| req.to_vec(),
        ServeOptions {
            fault: Some(Arc::clone(&script)),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let mut client = TcpTransport::connect_with(server.addr(), quick_retries(4)).unwrap();
    assert_eq!(client.round_trip(b"first").unwrap(), b"first");
    assert_eq!(client.round_trip(b"second").unwrap(), b"second");
    assert!(script.injected() >= 1);
    server.shutdown();
}
