//! Torn-frame coverage: a peer that writes a partial length prefix or a
//! partial payload and then closes (or stalls) must surface a typed error
//! — `Disconnected`, `BadFrame` or `TimedOut` — on both the client and the
//! server side. Never a hang, never a panic.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use simcloud_transport::{
    serve_tcp, Direction, FaultAction, FaultRule, FaultScript, RetryPolicy, TcpClientConfig,
    TcpTransport, Transport, TransportError,
};

/// A client config that fails fast and never retries, so the typed error
/// of the *first* failure surfaces.
fn strict() -> TcpClientConfig {
    TcpClientConfig {
        read_timeout: Some(Duration::from_millis(300)),
        write_timeout: Some(Duration::from_millis(300)),
        request_deadline: Some(Duration::from_secs(2)),
        retry: RetryPolicy::none(),
        ..TcpClientConfig::default()
    }
}

/// Spawns a raw fake server: accepts one connection, hands the stream to
/// `script`, exits. Returns the address.
fn fake_server(script: impl FnOnce(TcpStream) + Send + 'static) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            script(stream);
        }
    });
    addr
}

/// Reads and discards one well-formed frame (the client's request).
fn drain_request(stream: &mut TcpStream) {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).unwrap();
    let len = u32::from_le_bytes(len_buf) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).unwrap();
}

// ---------------------------------------------------------------------------
// Client side: the server tears the response
// ---------------------------------------------------------------------------

#[test]
fn client_survives_partial_length_prefix_then_close() {
    let addr = fake_server(|mut stream| {
        drain_request(&mut stream);
        stream.write_all(&[0x07, 0x00]).unwrap(); // 2 of 4 length bytes
        stream.flush().unwrap();
        // stream dropped: close mid-prefix
    });
    let mut client = TcpTransport::connect_with(addr, strict()).unwrap();
    let start = Instant::now();
    match client.round_trip(b"req") {
        Err(TransportError::Disconnected) => {}
        other => panic!("expected Disconnected, got {other:?}"),
    }
    assert!(start.elapsed() < Duration::from_secs(2), "no hang allowed");
}

#[test]
fn client_survives_partial_payload_then_close() {
    let addr = fake_server(|mut stream| {
        drain_request(&mut stream);
        // Claim a 100-byte frame, deliver only 10 bytes of it.
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[0xEE; 10]).unwrap();
        stream.flush().unwrap();
    });
    let mut client = TcpTransport::connect_with(addr, strict()).unwrap();
    match client.round_trip(b"req") {
        Err(TransportError::Disconnected) => {}
        other => panic!("expected Disconnected, got {other:?}"),
    }
}

#[test]
fn client_survives_partial_payload_then_stall() {
    let addr = fake_server(|mut stream| {
        drain_request(&mut stream);
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[0xEE; 10]).unwrap();
        stream.flush().unwrap();
        // Keep the socket open but silent, well past the read timeout.
        std::thread::sleep(Duration::from_secs(2));
    });
    let mut client = TcpTransport::connect_with(addr, strict()).unwrap();
    let start = Instant::now();
    match client.round_trip(b"req") {
        Err(TransportError::TimedOut) => {}
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "read timeout must cut the stall, took {:?}",
        start.elapsed()
    );
}

#[test]
fn client_rejects_hostile_length_prefix() {
    let addr = fake_server(|mut stream| {
        drain_request(&mut stream);
        // Claim a frame just past the cap + response-header allowance.
        let huge = u32::try_from(simcloud_transport::MAX_FRAME_BYTES + 9).unwrap();
        stream.write_all(&huge.to_le_bytes()).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(500));
    });
    let mut client = TcpTransport::connect_with(addr, strict()).unwrap();
    match client.round_trip(b"req") {
        Err(TransportError::BadFrame(msg)) => {
            assert!(msg.contains("cap"), "unexpected message: {msg}");
        }
        other => panic!("expected BadFrame, got {other:?}"),
    }
}

#[test]
fn client_survives_response_missing_server_time_header() {
    let addr = fake_server(|mut stream| {
        drain_request(&mut stream);
        // A complete frame, but shorter than the mandatory 8-byte header.
        stream.write_all(&3u32.to_le_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(300));
    });
    let mut client = TcpTransport::connect_with(addr, strict()).unwrap();
    match client.round_trip(b"req") {
        Err(TransportError::BadFrame(msg)) => {
            assert!(msg.contains("server-time"), "unexpected message: {msg}");
        }
        other => panic!("expected BadFrame, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Server side: the client tears the request
// ---------------------------------------------------------------------------

/// Connects raw, sends `bytes`, closes, then proves the server is still
/// healthy by running a real request through a real client.
fn poke_then_verify_server_alive(bytes: &[u8]) {
    let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(bytes).unwrap();
        raw.flush().unwrap();
        // Dropped here: close mid-frame.
    }
    // Give the worker a moment to observe the torn frame and exit.
    std::thread::sleep(Duration::from_millis(100));
    let mut client = TcpTransport::connect_with(server.addr(), strict()).unwrap();
    assert_eq!(client.round_trip(b"still alive").unwrap(), b"still alive");
    assert_eq!(
        server.active_connections(),
        1,
        "the torn connection's worker must have exited"
    );
    drop(client);
    server.shutdown();
}

#[test]
fn server_survives_partial_length_prefix_then_close() {
    poke_then_verify_server_alive(&[0x01]);
}

#[test]
fn server_survives_partial_payload_then_close() {
    let mut bytes = 64u32.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0xAB; 16]); // 16 of the promised 64
    poke_then_verify_server_alive(&bytes);
}

#[test]
fn server_cuts_a_slow_loris_after_read_timeout() {
    use simcloud_transport::ServeOptions;
    let server = simcloud_transport::serve_tcp_with(
        |req: &[u8]| req.to_vec(),
        ServeOptions {
            read_timeout: Some(Duration::from_millis(100)),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    // Commit to a 64-byte frame but trickle only 4 bytes, then stall.
    raw.write_all(&64u32.to_le_bytes()).unwrap();
    raw.write_all(&[0u8; 4]).unwrap();
    raw.flush().unwrap();
    std::thread::sleep(Duration::from_millis(400));
    // The server must have cut us: the socket sees EOF (or reset).
    raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut probe = [0u8; 1];
    match raw.read(&mut probe) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("server kept a slow-loris alive and sent {n} bytes"),
    }
    assert_eq!(server.active_connections(), 0);
    server.shutdown();
}

#[test]
fn server_rejects_hostile_length_prefix_without_allocating() {
    // 0xFFFF_FFFF length prefix = a 4 GiB allocation if unchecked.
    poke_then_verify_server_alive(&0xFFFF_FFFFu32.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Injected truncation through the fault harness (both layers agree)
// ---------------------------------------------------------------------------

#[test]
fn injected_send_truncation_yields_typed_error_without_retries() {
    let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
    let script = FaultScript::new(vec![FaultRule::once(
        Direction::Send,
        0,
        FaultAction::Truncate { keep: 2 },
    )]);
    let mut client =
        TcpTransport::connect_faulty(server.addr(), strict(), Arc::clone(&script)).unwrap();
    assert!(client.round_trip(b"payload").is_err());
    assert_eq!(client.stats().retries, 0, "RetryPolicy::none must hold");
    assert_eq!(script.injected(), 1);
    server.shutdown();
}

#[test]
fn injected_truncation_recovers_with_retries_enabled() {
    let server = serve_tcp(|req: &[u8]| req.to_vec()).unwrap();
    let script = FaultScript::new(vec![FaultRule::once(
        Direction::Send,
        0,
        FaultAction::Truncate { keep: 2 },
    )]);
    let config = TcpClientConfig {
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        ..strict()
    };
    let mut client = TcpTransport::connect_faulty(server.addr(), config, script).unwrap();
    assert_eq!(client.round_trip(b"payload").unwrap(), b"payload");
    let s = client.stats();
    assert!(s.retries >= 1 && s.reconnects >= 1, "stats: {s}");
    server.shutdown();
}
