//! Source loading and lexical preprocessing shared by all passes.
//!
//! The passes are line-oriented pattern matchers, so the one thing this
//! module must get exactly right is *what text the patterns see*: comments
//! and string/char literal contents are blanked out (a doc comment that
//! says "never `unwrap()` here" must not count as a panic site, and a brace
//! inside a string must not derail scope tracking), while every newline is
//! preserved so findings report real line numbers. On top of the blanked
//! text it locates `#[cfg(test)]` items (excluded from every pass) and
//! function spans (the unit of analysis for the lock pass and for
//! function-scoped zones like "protocol decode").

use std::fs;
use std::path::Path;

/// A Rust source file prepared for analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Original source lines, used for `PANIC-SAFE` annotation lookup.
    pub raw: Vec<String>,
    /// Lines with comments and literal contents blanked (same line count as
    /// `raw`); all pattern matching runs on these.
    pub code: Vec<String>,
    /// `test_lines[i]` is true when line `i` (0-based) belongs to a
    /// `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
    /// Function spans, in source order (outer before nested).
    pub functions: Vec<FnSpan>,
}

/// A function item located in the blanked source.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name (identifier after `fn`).
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub start_line: usize,
    /// 0-based line of the body's closing brace (start line for body-less
    /// trait signatures).
    pub end_line: usize,
    /// Byte offset of the body's opening `{` in the joined blanked text
    /// (`None` for signatures).
    pub body_start: Option<usize>,
    /// Byte offset one past the body's closing `}`.
    pub body_end: Option<usize>,
}

impl SourceFile {
    /// Loads and preprocesses one file. `path` is the on-disk location,
    /// `rel` the workspace-relative name used in reports.
    pub fn load(path: &Path, rel: &str) -> std::io::Result<SourceFile> {
        let text = fs::read_to_string(path)?;
        Ok(SourceFile::from_source(rel, &text))
    }

    /// Preprocesses source text (entry point for fixture tests).
    pub fn from_source(rel: &str, text: &str) -> SourceFile {
        let blanked = blank_literals(text);
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let code: Vec<String> = blanked.lines().map(str::to_owned).collect();
        let test_lines = mark_test_lines(&code);
        let functions = find_functions(&blanked);
        SourceFile {
            path: rel.to_owned(),
            raw,
            code,
            test_lines,
            functions,
        }
    }

    /// The blanked text joined back together (what `FnSpan` offsets index).
    pub fn joined_code(&self) -> String {
        let mut s = String::new();
        for line in &self.code {
            s.push_str(line);
            s.push('\n');
        }
        s
    }

    /// Innermost function span containing 0-based `line`, if any.
    pub fn function_at(&self, line: usize) -> Option<&FnSpan> {
        self.functions
            .iter()
            .filter(|f| f.start_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
    }
}

/// Replaces comment text and string/char literal contents with spaces,
/// preserving newlines and the literal delimiters themselves.
pub fn blank_literals(text: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let bytes: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut state = State::Code;
    let mut i = 0;
    let at = |k: usize| bytes.get(k).copied().unwrap_or('\0');
    while i < bytes.len() {
        let c = at(i);
        match state {
            State::Code => {
                if c == '/' && at(i + 1) == '/' {
                    state = State::Line;
                    out.push(' ');
                } else if c == '/' && at(i + 1) == '*' {
                    state = State::Block(1);
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                } else if c == '"' {
                    state = State::Str;
                    out.push('"');
                } else if (c == 'r' || c == 'b')
                    && !at(i.wrapping_sub(1)).is_alphanumeric()
                    && at(i.wrapping_sub(1)) != '_'
                {
                    // Possible raw / byte / raw-byte string: r"  r#"  b"  br#"
                    let mut j = i + 1;
                    if c == 'b' && at(j) == 'r' {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while at(j) == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if at(j) == '"' && (hashes > 0 || at(i + 1) == '"' || at(i + 1) == 'r') {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        out.pop();
                        out.push('"');
                        i = j;
                        state = State::RawStr(hashes);
                    } else if c == 'b' && at(i + 1) == '\'' {
                        // byte char literal b'x'
                        out.push(' ');
                        out.push('\'');
                        i += 1;
                        state = State::Char;
                    } else {
                        out.push(c);
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal is '\..' or 'X'
                    // followed by a closing quote; anything else is a
                    // lifetime and passes through.
                    if at(i + 1) == '\\' || (at(i + 2) == '\'' && at(i + 1) != '\'') {
                        out.push('\'');
                        state = State::Char;
                    } else {
                        out.push('\'');
                    }
                } else {
                    out.push(c);
                }
            }
            State::Line => {
                if c == '\n' {
                    out.push('\n');
                    state = State::Code;
                } else {
                    out.push(' ');
                }
            }
            State::Block(depth) => {
                if c == '*' && at(i + 1) == '/' {
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                } else if c == '/' && at(i + 1) == '*' {
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                    state = State::Block(depth + 1);
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push(' ');
                    if at(i + 1) != '\n' {
                        out.push(' ');
                        i += 1;
                    }
                } else if c == '"' {
                    out.push('"');
                    state = State::Code;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && at(j) == '#' {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push(' ');
                        }
                        i = j - 1;
                        state = State::Code;
                    } else {
                        out.push(' ');
                    }
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            State::Char => {
                if c == '\\' {
                    out.push(' ');
                    if i + 1 < bytes.len() {
                        out.push(' ');
                        i += 1;
                    }
                } else if c == '\'' {
                    out.push('\'');
                    state = State::Code;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
        }
        i += 1;
    }
    out
}

/// Marks every line belonging to a `#[cfg(test)]` item (module, function,
/// impl, use — whatever the attribute is attached to).
fn mark_test_lines(code: &[String]) -> Vec<bool> {
    let mut test = vec![false; code.len()];
    let mut line = 0;
    while line < code.len() {
        if let Some(col) = code.get(line).and_then(|l| l.find("#[cfg(test)]")) {
            let end = item_end(code, line, col);
            for flag in test.iter_mut().take(end + 1).skip(line) {
                *flag = true;
            }
            line = end + 1;
        } else {
            line += 1;
        }
    }
    test
}

/// Finds the last line of the item starting after an attribute at
/// (`line`, `col`): the matching `}` of its first brace block, or the first
/// top-level `;` for brace-less items.
fn item_end(code: &[String], line: usize, col: usize) -> usize {
    let mut depth = 0usize;
    let mut entered = false;
    let mut l = line;
    let mut start = col;
    while l < code.len() {
        let chars: Vec<char> = match code.get(l) {
            Some(s) => s.chars().collect(),
            None => break,
        };
        for (k, &c) in chars.iter().enumerate() {
            if l == line && k < start {
                continue;
            }
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        return l;
                    }
                }
                ';' if !entered && depth == 0 => return l,
                _ => {}
            }
        }
        start = 0;
        l += 1;
    }
    code.len().saturating_sub(1)
}

/// Locates `fn` items in the blanked text.
fn find_functions(blanked: &str) -> Vec<FnSpan> {
    let chars: Vec<char> = blanked.chars().collect();
    let mut spans = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    while i < chars.len() {
        let c = chars.get(i).copied().unwrap_or('\0');
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        // Token `fn` at an identifier boundary.
        let prev = if i == 0 {
            '\0'
        } else {
            chars.get(i - 1).copied().unwrap_or('\0')
        };
        if c == 'f'
            && chars.get(i + 1) == Some(&'n')
            && !is_ident(prev)
            && chars.get(i + 2).is_some_and(|&n| n.is_whitespace())
        {
            let mut j = i + 2;
            while chars.get(j).is_some_and(|n| n.is_whitespace()) {
                j += 1;
            }
            let name_start = j;
            while chars.get(j).is_some_and(|&n| is_ident(n)) {
                j += 1;
            }
            let name: String = chars
                .get(name_start..j)
                .unwrap_or_default()
                .iter()
                .collect();
            if name.is_empty() {
                i += 2;
                continue;
            }
            // Scan to the body `{` or a declaration-terminating `;`.
            let start_line = line;
            let mut cur_line = line;
            let mut depth = 0i32;
            let mut body_start = None;
            while j < chars.len() {
                match chars.get(j).copied().unwrap_or('\0') {
                    '\n' => cur_line += 1,
                    '(' | '[' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '{' if depth == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    ';' if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let span = match body_start {
                None => FnSpan {
                    name,
                    start_line,
                    end_line: cur_line,
                    body_start: None,
                    body_end: None,
                },
                Some(open) => {
                    let mut braces = 0i32;
                    let mut k = open;
                    let mut end_line = cur_line;
                    let mut body_end = chars.len();
                    while k < chars.len() {
                        match chars.get(k).copied().unwrap_or('\0') {
                            '\n' => end_line += 1,
                            '{' => braces += 1,
                            '}' => {
                                braces -= 1;
                                if braces == 0 {
                                    body_end = k + 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    FnSpan {
                        name,
                        start_line,
                        end_line,
                        body_start: Some(open),
                        body_end: Some(body_end),
                    }
                }
            };
            spans.push(span);
            // Continue scanning from just after the name so nested fns are
            // found too; body text is re-scanned, which is what we want.
            i = j.min(chars.len());
            line = cur_line;
            continue;
        }
        i += 1;
    }
    spans
}
