//! # simcloud-analyze — in-tree static analysis for the similarity cloud
//!
//! The paper's threat model makes availability under malicious input part
//! of correctness: a hostile client must not be able to panic the server,
//! and a hostile server must not panic the client. This crate is the
//! workspace's standing gate for that property (plus the lock ordering and
//! wire-table invariants that are otherwise enforced only by convention).
//! It is deliberately dependency-free per the shim policy and lexical
//! rather than syntactic: precise enough for this codebase's idioms, with
//! fixtures pinning every rule.
//!
//! Run as `cargo run -p simcloud-analyze -- check` (CI) or `-- report`
//! (full finding list) or `-- bless` (rewrite the inventory snapshot).
//!
//! ## Zones
//!
//! * **server** — the request path a hostile client reaches:
//!   `core/src/server.rs`, `core/src/protocol.rs`, everything in
//!   `transport/src` and `shard/src`, and the `decode*` functions of
//!   `mindex/src/entry.rs`, `metric/src/permutation.rs`,
//!   `metric/src/vector.rs`. Findings here fail the build unless carried
//!   by a `// PANIC-SAFE: <reason>` line — and the committed tree keeps
//!   this zone at **zero** findings, annotated or not.
//! * **client** — `core/src/client.rs`, the refine path a hostile server
//!   reaches. Panic-family findings fail unless annotated; index/cast
//!   findings are inventoried.
//! * **storage** — everything in `storage/src`: the crash-recovery path
//!   parses bytes that arbitrary disk corruption (or a tampering cloud
//!   operator) controls, so it is enforced exactly like the server zone —
//!   zero unannotated findings, and the committed tree keeps it at zero
//!   findings outright.
//! * **inventory** — everything else (bench harness, dataset generators,
//!   shims, build-time code). Findings are counted against a committed
//!   snapshot (`crates/analyze/inventory.txt`) that only ratchets down.

pub mod locks;
pub mod panics;
pub mod scan;
pub mod wire;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use locks::LockViolation;
use panics::{PanicFinding, PanicKind};
use scan::SourceFile;
use wire::WireIssue;

/// Reachability zone of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Zone {
    /// Server request path — hard error, kept at zero findings.
    Server,
    /// Client refine path — panics must carry `PANIC-SAFE`.
    Client,
    /// Storage engine / crash-recovery path — enforced like the server
    /// zone (corrupt disk bytes are adversarial input).
    Storage,
    /// Everything else — inventoried and ratcheted.
    Inventory,
}

impl Zone {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Zone::Server => "server",
            Zone::Client => "client",
            Zone::Storage => "storage",
            Zone::Inventory => "inventory",
        }
    }
}

/// Files whose `decode*` functions belong to the server zone (wire-decode
/// helpers living outside the core crate).
const DECODE_ZONE_FILES: [&str; 3] = [
    "crates/mindex/src/entry.rs",
    "crates/metric/src/permutation.rs",
    "crates/metric/src/vector.rs",
];

/// Zone of a finding at `path` inside function `function`.
pub fn zone_for(path: &str, function: Option<&str>) -> Zone {
    if path == "crates/core/src/server.rs"
        || path == "crates/core/src/protocol.rs"
        || path == "crates/core/src/telemetry.rs"
        || path.starts_with("crates/transport/src/")
        || path.starts_with("crates/shard/src/")
        || path.starts_with("crates/telemetry/src/")
    {
        return Zone::Server;
    }
    if DECODE_ZONE_FILES.contains(&path)
        && function.is_some_and(|f| f.starts_with("decode") || f == "decode")
    {
        return Zone::Server;
    }
    if path == "crates/core/src/client.rs" {
        return Zone::Client;
    }
    if path.starts_with("crates/storage/src/") {
        return Zone::Storage;
    }
    Zone::Inventory
}

/// Kinds that abort the thread outright (vs. silently narrowing/indexing).
fn is_panic_family(kind: PanicKind) -> bool {
    !matches!(kind, PanicKind::SliceIndex | PanicKind::AsNarrowing)
}

/// Aggregated result of all three passes over the tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that violate zone policy (fail the build).
    pub errors: Vec<String>,
    /// Lock-discipline violations (fail the build).
    pub lock_errors: Vec<LockViolation>,
    /// Wire-conformance failures (fail the build).
    pub wire_errors: Vec<WireIssue>,
    /// All panic-surface findings, for `report` output.
    pub findings: Vec<(Zone, PanicFinding)>,
    /// Inventory counts: `(path, kind-name, annotated)` → count.
    pub inventory: BTreeMap<(String, String, bool), usize>,
    /// Count of annotated (allowlisted) sites in the hard-enforced zones
    /// (server + storage) — the acceptance criterion keeps this at zero.
    pub server_allowlisted: usize,
}

impl Report {
    /// True when nothing fails the build (inventory drift checked
    /// separately against the snapshot file).
    pub fn clean(&self) -> bool {
        self.errors.is_empty() && self.lock_errors.is_empty() && self.wire_errors.is_empty()
    }
}

/// Workspace root, resolved from this crate's manifest directory so the
/// binary works from any cwd.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Non-test Rust sources of the workspace, workspace-relative paths.
pub fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(
                    name.as_ref(),
                    "target" | ".git" | "tests" | "benches" | "examples" | "fixtures"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs all passes over the tree at `root`.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut protocol_src = None;
    for path in source_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = SourceFile::load(&path, &rel)?;
        for v in locks::lock_violations(&src) {
            report.lock_errors.push(v);
        }
        for f in panics::panic_findings(&src) {
            let zone = zone_for(&f.path, f.function.as_deref());
            let enforced = match zone {
                Zone::Server | Zone::Storage => true,
                Zone::Client => is_panic_family(f.kind),
                Zone::Inventory => false,
            };
            if enforced && !f.annotated {
                report.errors.push(format!(
                    "{}:{}: {} in {} zone without PANIC-SAFE justification",
                    f.path,
                    f.line,
                    f.kind.name(),
                    zone.name(),
                ));
            } else {
                if matches!(zone, Zone::Server | Zone::Storage) && f.annotated {
                    report.server_allowlisted += 1;
                }
                *report
                    .inventory
                    .entry((f.path.clone(), f.kind.name().to_owned(), f.annotated))
                    .or_insert(0) += 1;
            }
            report.findings.push((zone, f));
        }
        if rel == "crates/core/src/protocol.rs" {
            protocol_src = Some(src);
        }
    }
    match protocol_src {
        Some(src) => {
            let readme = fs::read_to_string(root.join("README.md")).unwrap_or_default();
            let fuzz = fs::read_to_string(root.join("crates/core/tests/protocol_fuzz.rs"))
                .unwrap_or_default();
            let fuzz = scan::blank_literals(&fuzz);
            report.wire_errors = wire::wire_issues(&src, &readme, &fuzz);
        }
        None => report.wire_errors.push(WireIssue {
            message: "crates/core/src/protocol.rs not found".to_owned(),
        }),
    }
    Ok(report)
}

/// Renders the inventory snapshot format.
pub fn render_inventory(report: &Report) -> String {
    let mut s = String::from(
        "# simcloud-analyze panic-surface inventory.\n\
         # One line per (file, kind): count of sites outside the enforced zones.\n\
         # `+safe` marks PANIC-SAFE-annotated sites. Regenerate with\n\
         # `cargo run -p simcloud-analyze -- bless`; check fails on any drift\n\
         # so the surface only shrinks deliberately.\n",
    );
    for ((path, kind, annotated), count) in &report.inventory {
        let suffix = if *annotated { "+safe" } else { "" };
        let _ = writeln!(s, "{path}\t{kind}{suffix}\t{count}");
    }
    s
}

/// Parses a snapshot back into inventory keys.
pub fn parse_inventory(text: &str) -> BTreeMap<(String, String, bool), usize> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(path), Some(kind), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            continue;
        };
        let (kind, annotated) = match kind.strip_suffix("+safe") {
            Some(k) => (k, true),
            None => (kind, false),
        };
        map.insert((path.to_owned(), kind.to_owned(), annotated), count);
    }
    map
}

/// Compares the live inventory against the committed snapshot; returns
/// drift messages (empty = in sync).
pub fn inventory_drift(
    live: &BTreeMap<(String, String, bool), usize>,
    blessed: &BTreeMap<(String, String, bool), usize>,
) -> Vec<String> {
    let mut drift = Vec::new();
    let describe = |(path, kind, annotated): &(String, String, bool)| {
        format!(
            "{path} {kind}{}",
            if *annotated { " (PANIC-SAFE)" } else { "" }
        )
    };
    for (key, &n) in live {
        let old = blessed.get(key).copied().unwrap_or(0);
        if n > old {
            drift.push(format!(
                "new panic-surface: {} went {old} -> {n}; fix it or deliberately \
                 re-bless the inventory",
                describe(key)
            ));
        } else if n < old {
            drift.push(format!(
                "panic-surface shrank: {} went {old} -> {n}; run \
                 `cargo run -p simcloud-analyze -- bless` to ratchet the snapshot down",
                describe(key)
            ));
        }
    }
    for (key, &old) in blessed {
        if !live.contains_key(key) && old > 0 {
            drift.push(format!(
                "panic-surface cleared: {} went {old} -> 0; run \
                 `cargo run -p simcloud-analyze -- bless` to ratchet the snapshot down",
                describe(key)
            ));
        }
    }
    drift
}
