//! CLI for the in-tree static analysis gate.
//!
//! * `check`  — run all passes; nonzero exit on any policy violation or
//!   inventory drift (the CI entry point).
//! * `report` — print every finding with its zone, plus pass summaries.
//! * `bless`  — rewrite `crates/analyze/inventory.txt` from the live tree.

use std::process::ExitCode;

use simcloud_analyze as analyze;

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "check" => check(false),
        "report" => check(true),
        "bless" => bless(),
        other => {
            eprintln!("unknown mode {other:?}; usage: simcloud-analyze check|report|bless");
            ExitCode::FAILURE
        }
    }
}

fn check(verbose: bool) -> ExitCode {
    let root = analyze::workspace_root();
    let report = match analyze::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if verbose {
        for (zone, f) in &report.findings {
            println!(
                "{}:{}: [{}] {}{}{}",
                f.path,
                f.line,
                zone.name(),
                f.kind.name(),
                if f.annotated { " (PANIC-SAFE)" } else { "" },
                f.function
                    .as_deref()
                    .map(|n| format!(" in fn {n}"))
                    .unwrap_or_default(),
            );
        }
    }
    let mut failed = false;
    for e in &report.errors {
        eprintln!("panic-surface: {e}");
        failed = true;
    }
    for v in &report.lock_errors {
        eprintln!(
            "lock-discipline: {}:{}: in fn {}: {}",
            v.path, v.line, v.function, v.message
        );
        failed = true;
    }
    for w in &report.wire_errors {
        eprintln!("wire-conformance: {w}", w = w.message);
        failed = true;
    }
    let snapshot_path = root.join("crates/analyze/inventory.txt");
    let blessed = std::fs::read_to_string(&snapshot_path).unwrap_or_default();
    let drift = analyze::inventory_drift(&report.inventory, &analyze::parse_inventory(&blessed));
    for d in &drift {
        eprintln!("inventory: {d}");
        failed = true;
    }
    let sites: usize = report.inventory.values().sum();
    println!(
        "simcloud-analyze: {} findings outside enforced zones across {} (file, kind) buckets; \
         {} allowlisted in server/storage zones; lock pass {}; wire pass {}",
        sites,
        report.inventory.len(),
        report.server_allowlisted,
        if report.lock_errors.is_empty() {
            "clean"
        } else {
            "FAILED"
        },
        if report.wire_errors.is_empty() {
            "clean"
        } else {
            "FAILED"
        },
    );
    if failed {
        eprintln!("simcloud-analyze: check FAILED");
        ExitCode::FAILURE
    } else {
        println!("simcloud-analyze: check passed");
        ExitCode::SUCCESS
    }
}

fn bless() -> ExitCode {
    let root = analyze::workspace_root();
    let report = match analyze::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let path = root.join("crates/analyze/inventory.txt");
    match std::fs::write(&path, analyze::render_inventory(&report)) {
        Ok(()) => {
            println!(
                "blessed {} (file, kind) buckets to {}",
                report.inventory.len(),
                path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}
