//! Lock-discipline lint.
//!
//! PR 5 documented the two-level locking protocol of the sharded index in
//! prose; this pass turns it into a machine-checked rule. Within each
//! function body it tracks guards produced by `.read()` / `.write()` /
//! `.lock()` (empty argument lists only, so `io::Read::read(&mut buf)`
//! never matches) and flags:
//!
//! 1. acquiring the **ownership map** (`owners`) while a **shard** guard is
//!    held — the documented order is map *before* shard;
//! 2. holding **two shard write guards** at once;
//! 3. calling `stage_candidates` (or the `.stage(` helper) while *any*
//!    lock guard is held.
//!
//! The frontier refactor added candidate **cursors** (`.knn_cursor(` /
//! `.range_cursor(`), which are tracked like guards and bring two more
//! rules:
//!
//! 4. acquiring a **shard write lock** while a cursor is live — a cursor
//!    must own all its staged data before writers run, otherwise the
//!    stream could observe a half-mutated shard;
//! 5. pulling a cursor (`.next_candidate(`) while **two or more shard
//!    guards** are held — the coordinator's heap pull is lock-free by
//!    design, and holding a guard pair across a pull reintroduces the
//!    pairwise-deadlock shape rule 2 exists to prevent.
//!
//! A cursor binding dies at its block's end, at `drop(name)`, or when it
//! is consumed by `name.collect_up_to(`.
//!
//! The tracker is lexical, not a borrow checker: `let`-bound guards live to
//! the end of their block (or an explicit `drop(name)`), scrutinee
//! temporaries of `match`/`if let`/`while let`/`for` live to the end of the
//! construct, and other temporaries die at the statement's `;`. That is
//! exactly Rust's temporary-lifetime rule for the shapes this codebase
//! uses, and the fixtures pin the behaviour.

use crate::scan::SourceFile;

/// A lock-ordering violation.
#[derive(Debug, Clone)]
pub struct LockViolation {
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line number of the offending acquisition or call.
    pub line: usize,
    /// Enclosing function.
    pub function: String,
    /// Human-readable rule violation.
    pub message: String,
}

/// Classification of a lock by the receiver it is taken on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// The sharded index's global id→shard ownership map.
    Map,
    /// A per-shard index lock.
    Shard,
    /// The single-index server lock.
    Index,
    /// Anything else (stats counters, buffer-pool latches, ...).
    Other,
    /// Not a lock at all: a live candidate cursor (`.knn_cursor(` /
    /// `.range_cursor(`), tracked with guard lifetimes.
    Cursor,
}

#[derive(Debug, Clone)]
struct Guard {
    class: Class,
    write: bool,
    name: Option<String>,
    /// Brace depth whose closing `}` kills this guard.
    depth: usize,
    line: usize,
}

/// Runs the lint over every function in the file (test lines excluded).
pub fn lock_violations(src: &SourceFile) -> Vec<LockViolation> {
    let joined = src.joined_code();
    let mut out = Vec::new();
    for f in &src.functions {
        let (Some(start), Some(end)) = (f.body_start, f.body_end) else {
            continue;
        };
        if src.test_lines.get(f.start_line).copied().unwrap_or(false) {
            continue;
        }
        // Skip bodies of functions nested inside this one; they get their
        // own pass and a guard here is not live there.
        let nested: Vec<(usize, usize)> = src
            .functions
            .iter()
            .filter(|g| {
                g.body_start
                    .is_some_and(|gs| gs > start && g.body_end.is_some_and(|ge| ge <= end))
            })
            .filter_map(|g| g.body_start.zip(g.body_end))
            .collect();
        walk_body(&joined, start, end, &f.name, &nested, &src.path, &mut out);
    }
    out
}

fn walk_body(
    joined: &str,
    start: usize,
    end: usize,
    fn_name: &str,
    nested: &[(usize, usize)],
    path: &str,
    out: &mut Vec<LockViolation>,
) {
    let chars: Vec<char> = joined.chars().collect();
    // 0-based line of the body's opening brace.
    let mut line = chars
        .get(..start)
        .map_or(0, |s| s.iter().filter(|&&c| c == '\n').count());

    let mut guards: Vec<Guard> = Vec::new();
    let mut pending: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut stmt = String::new();
    let mut i = start;
    while i < end && i < chars.len() {
        // Jump over nested function bodies.
        if let Some(&(ns, ne)) = nested.iter().find(|&&(ns, _)| ns == i) {
            let skipped = chars
                .get(ns..ne)
                .map_or(0, |s| s.iter().filter(|&&c| c == '\n').count());
            line += skipped;
            i = ne;
            stmt.clear();
            continue;
        }
        let c = chars.get(i).copied().unwrap_or('\0');
        match c {
            '\n' => {
                line += 1;
                stmt.push(' ');
            }
            '{' => {
                let scrutinee = has_keyword(&stmt, "match")
                    || has_keyword(&stmt, "if")
                    || has_keyword(&stmt, "while")
                    || has_keyword(&stmt, "for");
                depth += 1;
                if scrutinee {
                    for mut g in pending.drain(..) {
                        g.depth = depth;
                        guards.push(g);
                    }
                } else {
                    pending.clear();
                }
                stmt.clear();
            }
            '}' => {
                pending.clear();
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                stmt.clear();
            }
            ';' => {
                let trimmed = stmt.trim_start();
                if let Some(name) = let_binding_name(trimmed) {
                    for mut g in pending.drain(..) {
                        g.name = Some(name.clone());
                        g.depth = depth;
                        guards.push(g);
                    }
                } else {
                    pending.clear();
                }
                // drop(name) releases a named guard early; consuming a
                // cursor with name.collect_up_to(..) ends its life too.
                if let Some(dropped) = dropped_name(trimmed) {
                    guards.retain(|g| g.name.as_deref() != Some(dropped.as_str()));
                }
                if let Some(consumed) = consumed_cursor_name(trimmed) {
                    guards.retain(|g| {
                        g.class != Class::Cursor || g.name.as_deref() != Some(consumed.as_str())
                    });
                }
                stmt.clear();
            }
            _ => {
                stmt.push(c);
                check_events(&stmt, line, fn_name, path, &guards, &mut pending, out);
            }
        }
        i += 1;
    }
}

/// `kw` as a whole word inside `stmt` (so `best_match` is not `match`).
fn has_keyword(stmt: &str, kw: &str) -> bool {
    for (pos, m) in stmt.match_indices(kw) {
        let before_ok = pos == 0
            || stmt
                .get(..pos)
                .and_then(|s| s.chars().next_back())
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after_ok = stmt
            .get(pos + m.len()..)
            .and_then(|s| s.chars().next())
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Examines the growing statement buffer for guard acquisitions and
/// `stage_candidates` calls.
fn check_events(
    stmt: &str,
    line: usize,
    fn_name: &str,
    path: &str,
    guards: &[Guard],
    pending: &mut Vec<Guard>,
    out: &mut Vec<LockViolation>,
) {
    let acquisition = [(".read()", false), (".write()", true), (".lock()", true)]
        .iter()
        .find(|(pat, _)| stmt.ends_with(pat));
    if let Some(&(pat, write)) = acquisition {
        let recv = stmt.get(..stmt.len() - pat.len()).unwrap_or_default();
        let class = classify(recv);
        for g in guards.iter().chain(pending.iter()) {
            if class == Class::Shard && write && g.class == Class::Cursor {
                out.push(LockViolation {
                    path: path.to_owned(),
                    line: line + 1,
                    function: fn_name.to_owned(),
                    message: format!(
                        "shard write lock acquired while candidate cursor (line {}) is \
                         live; a cursor must own its staged data before writers run",
                        g.line + 1
                    ),
                });
            }
            if class == Class::Map && g.class == Class::Shard {
                out.push(LockViolation {
                    path: path.to_owned(),
                    line: line + 1,
                    function: fn_name.to_owned(),
                    message: format!(
                        "ownership map lock acquired while shard lock (line {}) is held; \
                         documented order is map before shard",
                        g.line + 1
                    ),
                });
            }
            if class == Class::Shard && write && g.class == Class::Shard && g.write {
                out.push(LockViolation {
                    path: path.to_owned(),
                    line: line + 1,
                    function: fn_name.to_owned(),
                    message: format!(
                        "second shard write lock acquired while shard write lock \
                         (line {}) is held",
                        g.line + 1
                    ),
                });
            }
        }
        pending.push(Guard {
            class,
            write,
            name: None,
            depth: 0,
            line,
        });
        return;
    }
    // Opening a cursor starts a tracked lifetime (leading dot excludes the
    // `fn knn_cursor(` definitions themselves).
    if stmt.ends_with(".knn_cursor(") || stmt.ends_with(".range_cursor(") {
        pending.push(Guard {
            class: Class::Cursor,
            write: false,
            name: None,
            depth: 0,
            line,
        });
        return;
    }
    // The coordinator's heap pull must be lock-free: pulling a cursor with
    // a pair of shard guards held reintroduces the deadlock shape that the
    // double-write rule exists to prevent.
    if stmt.ends_with(".next_candidate(") {
        let shard_guards: Vec<&Guard> = guards
            .iter()
            .chain(pending.iter())
            .filter(|g| g.class == Class::Shard)
            .collect();
        if let (2.., Some(first)) = (shard_guards.len(), shard_guards.first()) {
            out.push(LockViolation {
                path: path.to_owned(),
                line: line + 1,
                function: fn_name.to_owned(),
                message: format!(
                    "cursor pulled while {} shard guards are held (first at line {}); \
                     the coordinator heap pull must be lock-free",
                    shard_guards.len(),
                    first.line + 1
                ),
            });
        }
        return;
    }
    if (stmt.ends_with("stage_candidates(") && !stmt.trim_start().starts_with("fn "))
        || stmt.ends_with(".stage(")
    {
        let lock_guard = guards
            .iter()
            .chain(pending.iter())
            .find(|g| g.class != Class::Cursor);
        if let Some(g) = lock_guard {
            out.push(LockViolation {
                path: path.to_owned(),
                line: line + 1,
                function: fn_name.to_owned(),
                message: format!(
                    "stage_candidates called while a lock guard (line {}) is held",
                    g.line + 1
                ),
            });
        }
    }
}

/// Receiver classification: walk the receiver chain backwards and look at
/// the identifiers it contains.
fn classify(before: &str) -> Class {
    let chars: Vec<char> = before.chars().collect();
    let mut idents: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut balance = 0i32;
    for &c in chars.iter().rev() {
        match c {
            ')' | ']' => {
                balance += 1;
                flushed(&mut cur, &mut idents);
            }
            '(' | '[' => {
                if balance == 0 {
                    break;
                }
                balance -= 1;
            }
            _ if balance > 0 => {}
            c if c.is_alphanumeric() || c == '_' => cur.push(c),
            '.' | ':' => flushed(&mut cur, &mut idents),
            _ => {
                flushed(&mut cur, &mut idents);
                break;
            }
        }
    }
    flushed(&mut cur, &mut idents);
    let has = |n: &str| idents.iter().any(|id| id == n);
    if has("owners") {
        Class::Map
    } else if has("shards") || has("shard") {
        Class::Shard
    } else if has("index") {
        Class::Index
    } else {
        Class::Other
    }
}

fn flushed(cur: &mut String, idents: &mut Vec<String>) {
    if !cur.is_empty() {
        idents.push(cur.chars().rev().collect());
        cur.clear();
    }
}

/// `let [mut] name ...` → `name`.
fn let_binding_name(stmt: &str) -> Option<String> {
    let rest = stmt.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// `name.collect_up_to(` → `name` (the consuming drain that ends a
/// cursor's lexical life mid-block).
fn consumed_cursor_name(stmt: &str) -> Option<String> {
    let (before, _) = stmt.split_once(".collect_up_to(")?;
    let name: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// `drop(name)` → `name`.
fn dropped_name(stmt: &str) -> Option<String> {
    let (_, rest) = stmt.split_once("drop(")?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}
