//! Panic-surface audit: locates every construct that can abort the thread
//! (or silently narrow an integer) in non-test code, and pairs each site
//! with its `// PANIC-SAFE: <reason>` annotation when one is present.

use crate::scan::SourceFile;

/// The kinds of panic/narrowing surface the audit tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicKind {
    /// `.unwrap()` (not `.unwrap_or*`).
    Unwrap,
    /// `.expect(` (not `.expect_err`).
    Expect,
    /// `panic!`.
    Panic,
    /// `unreachable!`.
    Unreachable,
    /// `todo!` / `unimplemented!`.
    Todo,
    /// `x[i]` slice/array/map indexing (can panic on out-of-range).
    SliceIndex,
    /// `as u8|u16|u32|i8|i16|i32` — silently truncating narrowing cast.
    AsNarrowing,
}

impl PanicKind {
    /// Stable name used in reports and the inventory file.
    pub fn name(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::Panic => "panic",
            PanicKind::Unreachable => "unreachable",
            PanicKind::Todo => "todo",
            PanicKind::SliceIndex => "slice-index",
            PanicKind::AsNarrowing => "as-narrowing",
        }
    }
}

/// One panic-surface site.
#[derive(Debug, Clone)]
pub struct PanicFinding {
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What was matched.
    pub kind: PanicKind,
    /// `true` when the line (or the line above) carries
    /// `// PANIC-SAFE: <reason>` with a non-empty reason.
    pub annotated: bool,
    /// Name of the enclosing function, when one was located.
    pub function: Option<String>,
}

/// Scans one file for panic-surface findings (test lines excluded).
pub fn panic_findings(src: &SourceFile) -> Vec<PanicFinding> {
    let mut out = Vec::new();
    for (idx, line) in src.code.iter().enumerate() {
        if src.test_lines.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let mut kinds: Vec<PanicKind> = Vec::new();
        for _ in 0..count_matches(line, ".unwrap()") {
            kinds.push(PanicKind::Unwrap);
        }
        for _ in 0..count_matches(line, ".expect(") {
            kinds.push(PanicKind::Expect);
        }
        for _ in 0..count_macro(line, "panic!") {
            kinds.push(PanicKind::Panic);
        }
        for _ in 0..count_macro(line, "unreachable!") {
            kinds.push(PanicKind::Unreachable);
        }
        for _ in 0..(count_macro(line, "todo!") + count_macro(line, "unimplemented!")) {
            kinds.push(PanicKind::Todo);
        }
        for _ in 0..count_index_ops(line) {
            kinds.push(PanicKind::SliceIndex);
        }
        for _ in 0..count_narrowing(line) {
            kinds.push(PanicKind::AsNarrowing);
        }
        if kinds.is_empty() {
            continue;
        }
        let annotated = has_panic_safe(src, idx);
        let function = src.function_at(idx).map(|f| f.name.clone());
        for kind in kinds {
            out.push(PanicFinding {
                path: src.path.clone(),
                line: idx + 1,
                kind,
                annotated,
                function: function.clone(),
            });
        }
    }
    out
}

/// `// PANIC-SAFE: <reason>` on the finding's line or the line above.
fn has_panic_safe(src: &SourceFile, idx: usize) -> bool {
    let check = |line: Option<&String>| {
        line.and_then(|l| l.split_once("// PANIC-SAFE:"))
            .is_some_and(|(_, reason)| reason.trim().len() >= 3)
    };
    check(src.raw.get(idx)) || (idx > 0 && check(src.raw.get(idx - 1)))
}

fn count_matches(line: &str, pat: &str) -> usize {
    line.matches(pat).count()
}

/// Macro invocation at an identifier boundary (`panic!` but not a
/// hypothetical `my_panic!`).
fn count_macro(line: &str, pat: &str) -> usize {
    let chars: Vec<char> = line.chars().collect();
    let patc: Vec<char> = pat.chars().collect();
    let mut n = 0;
    for i in 0..chars.len() {
        if chars.get(i..i + patc.len()) == Some(&patc[..]) {
            let prev = if i == 0 {
                '\0'
            } else {
                chars.get(i - 1).copied().unwrap_or('\0')
            };
            if !prev.is_alphanumeric() && prev != '_' {
                n += 1;
            }
        }
    }
    n
}

/// `[` immediately preceded by an identifier character, `)` or `]` is an
/// index operation (array/slice/map subscript). `vec![...]`, attributes
/// and type positions are preceded by `!`, `#`, whitespace or punctuation
/// and do not count.
fn count_index_ops(line: &str) -> usize {
    let chars: Vec<char> = line.chars().collect();
    let mut n = 0;
    for i in 1..chars.len() {
        if chars.get(i) == Some(&'[') {
            let prev = chars.get(i - 1).copied().unwrap_or('\0');
            if prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']' {
                n += 1;
            }
        }
    }
    n
}

/// ` as u8` / ` as u16` / ` as u32` / ` as i8` / ` as i16` / ` as i32`
/// followed by a non-identifier character.
fn count_narrowing(line: &str) -> usize {
    const TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
    let mut n = 0;
    for (pos, _) in line.match_indices(" as ") {
        let rest = line.get(pos + 4..).unwrap_or_default();
        for t in TARGETS {
            if let Some(after) = rest.strip_prefix(t) {
                let boundary = after
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_');
                if boundary {
                    n += 1;
                }
                break;
            }
        }
    }
    n
}
