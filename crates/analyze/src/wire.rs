//! Wire-conformance checker.
//!
//! The codec in `core/src/protocol.rs` is hand-rolled, its opcode table is
//! documented in the README, and its robustness relies on the fuzz suite in
//! `core/tests/protocol_fuzz.rs` naming every variant. Those three
//! artifacts drift independently; this pass cross-checks them:
//!
//! * opcodes are unique and contiguous from `0x01` per direction;
//! * every `Request`/`Response` variant is reachable from both `encode`
//!   (an `out.push(0xNN)` in its match arm) and `decode` (a constructor in
//!   some `0xNN =>` arm), with matching tags;
//! * every variant appears in the README wire table with its tag;
//! * every variant is named in the fuzz suite, so adding an opcode without
//!   fuzz coverage fails CI.

use std::collections::BTreeMap;

use crate::scan::SourceFile;

/// One conformance failure.
#[derive(Debug, Clone)]
pub struct WireIssue {
    /// Human-readable description, prefixed with the artifact at fault.
    pub message: String,
}

fn issue(out: &mut Vec<WireIssue>, message: String) {
    out.push(WireIssue { message });
}

/// Extracted wire shape of one enum direction.
#[derive(Debug, Default)]
pub struct EnumWire {
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// Variant → tag, from `encode` match arms.
    pub encode: BTreeMap<String, u8>,
    /// Tag → variant, from `decode` match arms.
    pub decode: BTreeMap<u8, String>,
}

/// Runs the checker. `protocol` is the preprocessed codec source, `readme`
/// and `fuzz` the raw text of the README and the fuzz suite.
pub fn wire_issues(protocol: &SourceFile, readme: &str, fuzz: &str) -> Vec<WireIssue> {
    let joined = protocol.joined_code();
    let mut out = Vec::new();
    let req = extract(&joined, protocol, "Request", &mut out);
    let resp = extract(&joined, protocol, "Response", &mut out);
    check_direction(&req, "Request", &mut out);
    check_direction(&resp, "Response", &mut out);
    check_readme(readme, &req, &resp, &mut out);
    check_fuzz(fuzz, &req, "Request", &mut out);
    check_fuzz(fuzz, &resp, "Response", &mut out);
    out
}

fn extract(joined: &str, src: &SourceFile, dir: &str, out: &mut Vec<WireIssue>) -> EnumWire {
    let mut wire = EnumWire {
        variants: enum_variants(joined, dir),
        ..EnumWire::default()
    };
    if wire.variants.is_empty() {
        issue(
            out,
            format!("protocol.rs: no variants found for enum {dir} (parser mismatch?)"),
        );
        return wire;
    }
    for f in &src.functions {
        let (Some(start), Some(end)) = (f.body_start, f.body_end) else {
            continue;
        };
        let Some(body) = joined.get(start..end) else {
            continue;
        };
        if f.name == "encode" {
            for (name, tag) in encode_arms(body, dir) {
                match tag {
                    Some(t) => {
                        wire.encode.insert(name, t);
                    }
                    None => issue(
                        out,
                        format!("protocol.rs: {dir}::{name} encode arm pushes no 0xNN tag"),
                    ),
                }
            }
        } else if f.name == "decode" {
            // Both `Request::decode` and `Response::decode` are plain fns
            // named `decode`; attribute a body to this direction only if it
            // mentions the direction at all, else it belongs to the other
            // enum and every arm would be noise.
            if variant_mentions(body, dir).is_empty() {
                continue;
            }
            for (tag, name) in decode_arms(body, dir) {
                match name {
                    Some(n) => {
                        if let Some(prev) = wire.decode.insert(tag, n.clone()) {
                            issue(
                                out,
                                format!(
                                    "protocol.rs: {dir} decode tag {tag:#04x} claimed by both \
                                     {prev} and {n}"
                                ),
                            );
                        }
                    }
                    None => issue(
                        out,
                        format!(
                            "protocol.rs: {dir} decode arm for tag {tag:#04x} constructs no \
                             {dir} variant"
                        ),
                    ),
                }
            }
        }
    }
    wire
}

/// Variant names of `pub enum <dir>`.
fn enum_variants(joined: &str, dir: &str) -> Vec<String> {
    let decl = format!("pub enum {dir} ");
    let Some(pos) = joined.find(&decl) else {
        return Vec::new();
    };
    let after = joined.get(pos..).unwrap_or_default();
    let Some(open) = after.find('{') else {
        return Vec::new();
    };
    let mut depth = 0i32;
    let mut segs: Vec<String> = Vec::new();
    let mut cur = String::new();
    for c in after.get(open..).unwrap_or_default().chars() {
        match c {
            '{' | '(' | '[' | '<' => {
                depth += 1;
                if depth > 1 {
                    cur.push(c);
                }
            }
            '}' | ')' | ']' | '>' => {
                depth -= 1;
                if depth == 0 && c == '}' {
                    segs.push(cur);
                    break;
                }
                cur.push(c);
            }
            ',' if depth == 1 => {
                segs.push(std::mem::take(&mut cur));
            }
            _ if depth >= 1 => cur.push(c),
            _ => {}
        }
    }
    segs.iter()
        .filter_map(|s| {
            let t = s.trim();
            let name: String = t
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            (name.chars().next().is_some_and(char::is_uppercase)).then_some(name)
        })
        .collect()
}

/// `(variant, first out.push(0xNN) after it)` pairs inside an encode body.
fn encode_arms(body: &str, dir: &str) -> Vec<(String, Option<u8>)> {
    let arms = variant_mentions(body, dir);
    let pushes = tag_pushes(body);
    arms.iter()
        .enumerate()
        .map(|(k, (pos, name))| {
            let limit = arms
                .get(k + 1)
                .map_or(usize::MAX, |&(next_pos, _)| next_pos);
            let tag = pushes
                .iter()
                .find(|&&(p, _)| p > *pos && p < limit)
                .map(|&(_, t)| t);
            (name.clone(), tag)
        })
        .collect()
}

/// `(tag, first <dir>::Variant after it)` pairs inside a decode body.
fn decode_arms(body: &str, dir: &str) -> Vec<(u8, Option<String>)> {
    let arms = tag_arms(body);
    let mentions = variant_mentions(body, dir);
    arms.iter()
        .enumerate()
        .map(|(k, (pos, tag))| {
            let limit = arms
                .get(k + 1)
                .map_or(usize::MAX, |&(next_pos, _)| next_pos);
            let name = mentions
                .iter()
                .find(|&&(p, _)| p > *pos && p < limit)
                .map(|(_, n)| n.clone());
            (*tag, name)
        })
        .collect()
}

/// Positions of `<dir>::Ident` mentions.
fn variant_mentions(body: &str, dir: &str) -> Vec<(usize, String)> {
    let pat = format!("{dir}::");
    let mut v = Vec::new();
    for (pos, _) in body.match_indices(&pat) {
        let before_ok = pos == 0
            || body
                .get(..pos)
                .and_then(|s| s.chars().next_back())
                .is_none_or(|c| !c.is_alphanumeric() && c != '_' && c != ':');
        if !before_ok {
            continue;
        }
        let name: String = body
            .get(pos + pat.len()..)
            .unwrap_or_default()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.chars().next().is_some_and(char::is_uppercase) {
            v.push((pos, name));
        }
    }
    v
}

/// Positions of `out.push(0xNN` tag writes.
fn tag_pushes(body: &str) -> Vec<(usize, u8)> {
    let mut v = Vec::new();
    for (pos, _) in body.match_indices("out.push(0x") {
        let hex: String = body
            .get(pos + "out.push(0x".len()..)
            .unwrap_or_default()
            .chars()
            .take_while(char::is_ascii_hexdigit)
            .collect();
        if let Ok(t) = u8::from_str_radix(&hex, 16) {
            v.push((pos, t));
        }
    }
    v
}

/// Positions of `0xNN =>` match-arm headers.
fn tag_arms(body: &str) -> Vec<(usize, u8)> {
    let mut v = Vec::new();
    for (pos, _) in body.match_indices("0x") {
        let rest = body.get(pos + 2..).unwrap_or_default();
        let hex: String = rest.chars().take_while(char::is_ascii_hexdigit).collect();
        if hex.is_empty() {
            continue;
        }
        let after = rest.get(hex.len()..).unwrap_or_default().trim_start();
        if !after.starts_with("=>") {
            continue;
        }
        if let Ok(t) = u8::from_str_radix(&hex, 16) {
            v.push((pos, t));
        }
    }
    v
}

fn check_direction(wire: &EnumWire, dir: &str, out: &mut Vec<WireIssue>) {
    let mut seen_tags: BTreeMap<u8, &str> = BTreeMap::new();
    for name in &wire.variants {
        match wire.encode.get(name) {
            None => issue(
                out,
                format!("protocol.rs: {dir}::{name} is not reachable from encode"),
            ),
            Some(&tag) => {
                if let Some(prev) = seen_tags.insert(tag, name) {
                    issue(
                        out,
                        format!(
                            "protocol.rs: {dir} opcode {tag:#04x} used by both {prev} and {name}"
                        ),
                    );
                }
                match wire.decode.iter().find(|(_, n)| *n == name) {
                    None => issue(
                        out,
                        format!("protocol.rs: {dir}::{name} is not reachable from decode"),
                    ),
                    Some((&dtag, _)) if dtag != tag => issue(
                        out,
                        format!(
                            "protocol.rs: {dir}::{name} encodes tag {tag:#04x} but decodes \
                             {dtag:#04x}"
                        ),
                    ),
                    Some(_) => {}
                }
            }
        }
    }
    for (tag, name) in &wire.decode {
        if !wire.variants.iter().any(|v| v == name) {
            issue(
                out,
                format!("protocol.rs: decode tag {tag:#04x} names unknown {dir}::{name}"),
            );
        }
    }
    // Contiguity from 0x01.
    let tags: Vec<u8> = seen_tags.keys().copied().collect();
    for (i, &t) in tags.iter().enumerate() {
        let want = i as u8 + 1;
        if t != want {
            issue(
                out,
                format!(
                    "protocol.rs: {dir} opcodes not contiguous: expected {want:#04x}, \
                     found {t:#04x}"
                ),
            );
            break;
        }
    }
}

/// README wire-table rows: `| \`Name\` ... | 0xNN | ...`.
fn check_readme(readme: &str, req: &EnumWire, resp: &EnumWire, out: &mut Vec<WireIssue>) {
    let mut rows: Vec<(String, u8)> = Vec::new();
    for line in readme.lines() {
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.split('|').collect();
        let (Some(name_cell), Some(tag_cell)) = (cells.get(1), cells.get(2)) else {
            continue;
        };
        let Some(name) = backticked(name_cell) else {
            continue;
        };
        let tag_cell = tag_cell.trim();
        let Some(hex) = tag_cell.strip_prefix("0x") else {
            continue;
        };
        let Ok(tag) = u8::from_str_radix(hex.trim(), 16) else {
            continue;
        };
        rows.push((name, tag));
    }
    if rows.is_empty() {
        issue(out, "README.md: wire table not found".to_owned());
        return;
    }
    for (name, tag) in &rows {
        let req_ok = req.encode.get(name) == Some(tag);
        let resp_ok = resp.encode.get(name) == Some(tag);
        if !req_ok && !resp_ok {
            issue(
                out,
                format!(
                    "README.md: wire table row `{name}` = {tag:#04x} matches no \
                     Request/Response variant tag"
                ),
            );
        }
    }
    for (dir, wire) in [("Request", req), ("Response", resp)] {
        for (name, tag) in &wire.encode {
            if !rows.iter().any(|(n, t)| n == name && t == tag) {
                issue(
                    out,
                    format!("README.md: {dir}::{name} ({tag:#04x}) missing from the wire table"),
                );
            }
        }
    }
}

fn backticked(cell: &str) -> Option<String> {
    let (_, rest) = cell.split_once('`')?;
    let (name, _) = rest.split_once('`')?;
    Some(name.to_owned())
}

fn check_fuzz(fuzz: &str, wire: &EnumWire, dir: &str, out: &mut Vec<WireIssue>) {
    for name in &wire.variants {
        let pat = format!("{dir}::{name}");
        let mentioned = fuzz.match_indices(&pat).any(|(pos, m)| {
            fuzz.get(pos + m.len()..)
                .and_then(|s| s.chars().next())
                .is_none_or(|c| !c.is_alphanumeric() && c != '_')
        });
        if !mentioned {
            issue(
                out,
                format!("protocol_fuzz.rs: {dir}::{name} is never exercised by the fuzz suite"),
            );
        }
    }
}
