//! Fixture tests: each analyzer pass must catch a deliberately seeded
//! violation, and must stay quiet on the compliant twin of the same code.
//! These pin the lexical rules so a matcher regression cannot silently
//! turn the gate green.

use simcloud_analyze::locks::lock_violations;
use simcloud_analyze::panics::{panic_findings, PanicKind};
use simcloud_analyze::scan::SourceFile;
use simcloud_analyze::wire::wire_issues;
use simcloud_analyze::{zone_for, Zone};

// ---- panic-surface pass -------------------------------------------------

/// A panic hidden mid-expression in a server-zone file is found, classified
/// and attributed to its function.
#[test]
fn seeded_hidden_panic_is_found() {
    let src = SourceFile::from_source(
        "crates/transport/src/fixture.rs",
        r#"
fn handle(buf: &[u8]) -> u32 {
    let n = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    n
}
"#,
    );
    let findings = panic_findings(&src);
    assert!(
        findings
            .iter()
            .any(|f| f.kind == PanicKind::Unwrap && f.function.as_deref() == Some("handle")),
        "seeded unwrap not found: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.kind == PanicKind::SliceIndex),
        "seeded slice index not found: {findings:?}"
    );
    assert_eq!(
        zone_for("crates/transport/src/fixture.rs", Some("handle")),
        Zone::Server
    );
}

/// Panics inside `#[cfg(test)]` modules, string literals and comments are
/// not findings.
#[test]
fn masked_panics_are_ignored() {
    let src = SourceFile::from_source(
        "crates/transport/src/fixture.rs",
        r#"
fn fine() -> &'static str {
    // .unwrap() in a comment is not a finding
    "nor .unwrap() in a string, nor panic!(..)"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_may_panic() {
        Option::<u8>::None.unwrap();
    }
}
"#,
    );
    assert!(
        panic_findings(&src).is_empty(),
        "masked sites leaked: {:?}",
        panic_findings(&src)
    );
}

/// A `PANIC-SAFE` annotation with a reason marks the site allowlisted; the
/// finding is still reported but carries the flag.
#[test]
fn panic_safe_annotation_is_honored() {
    let src = SourceFile::from_source(
        "crates/transport/src/fixture.rs",
        r#"
fn guarded(v: &[u8]) -> u8 {
    // PANIC-SAFE: v is checked non-empty by the caller's framing layer.
    *v.first().expect("framed")
}
"#,
    );
    let findings = panic_findings(&src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].annotated,
        "annotation not honored: {findings:?}"
    );
}

/// `as`-narrowing is flagged; widening casts are not.
#[test]
fn narrowing_casts_are_classified() {
    let src = SourceFile::from_source(
        "crates/shard/src/fixture.rs",
        r#"
fn narrow(x: usize) -> u32 {
    x as u32
}
fn widen(x: u32) -> usize {
    x as usize
}
"#,
    );
    let findings = panic_findings(&src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].kind, PanicKind::AsNarrowing);
    assert_eq!(findings[0].function.as_deref(), Some("narrow"));
}

/// The telemetry crate and the core telemetry module run inside every
/// request (span drops, snapshot rendering), so they are server zone: a
/// seeded panic there is found and attributed like one in the server
/// itself.
#[test]
fn telemetry_sources_are_server_zone() {
    for file in [
        "crates/telemetry/src/metrics.rs",
        "crates/telemetry/src/registry.rs",
        "crates/telemetry/src/span.rs",
        "crates/telemetry/src/slowlog.rs",
        "crates/core/src/telemetry.rs",
    ] {
        assert_eq!(zone_for(file, Some("record")), Zone::Server, "{file}");
    }
    // Telemetry test code stays inventory-only.
    assert_eq!(
        zone_for("crates/telemetry/tests/primitives.rs", None),
        Zone::Inventory
    );
    let src = SourceFile::from_source(
        "crates/telemetry/src/fixture.rs",
        r#"
fn quantile(buckets: &[u64], q: f64) -> u64 {
    let rank = (q * buckets.len() as f64) as u32;
    buckets[rank as usize]
}
"#,
    );
    let findings = panic_findings(&src);
    assert!(
        findings.iter().any(|f| f.kind == PanicKind::SliceIndex)
            && findings.iter().any(|f| f.kind == PanicKind::AsNarrowing),
        "seeded telemetry-zone panic not found: {findings:?}"
    );
}

/// The storage engine is a hard-enforced zone: its recovery path parses
/// attacker-controllable disk bytes, so every storage source file maps to
/// `Zone::Storage` and a seeded panic there is found like in the server
/// zone.
#[test]
fn storage_sources_are_an_enforced_zone() {
    for file in [
        "crates/storage/src/disk.rs",
        "crates/storage/src/wal.rs",
        "crates/storage/src/pagefmt.rs",
        "crates/storage/src/meta.rs",
        "crates/storage/src/backend.rs",
        "crates/storage/src/record.rs",
    ] {
        assert_eq!(zone_for(file, Some("recover")), Zone::Storage, "{file}");
    }
    // Test code and other crates stay out of the zone.
    assert_eq!(
        zone_for("crates/storage/tests/crash_points.rs", None),
        Zone::Inventory
    );
    let src = SourceFile::from_source(
        "crates/storage/src/wal.rs",
        r#"
fn recover(frame: &[u8]) -> u64 {
    u64::from_le_bytes(frame[8..16].try_into().unwrap())
}
"#,
    );
    let findings = panic_findings(&src);
    assert!(
        findings.iter().any(|f| f.kind == PanicKind::SliceIndex)
            && findings.iter().any(|f| f.kind == PanicKind::Unwrap),
        "seeded recovery-path panic not found: {findings:?}"
    );
}

// ---- lock-discipline pass ----------------------------------------------

/// Seeded violation: taking the ownership-map lock while a shard write
/// guard is still live (the documented order is map before shard).
#[test]
fn seeded_reversed_lock_order_is_found() {
    let bad = SourceFile::from_source(
        "crates/shard/src/fixture.rs",
        r#"
fn insert(&self, id: u64) {
    let guard = self.shards[0].write();
    self.owners.write().insert(id, 0);
    drop(guard);
}
"#,
    );
    let violations = lock_violations(&bad);
    assert!(
        violations
            .iter()
            .any(|v| v.message.contains("ownership map")),
        "reversed order not caught: {violations:?}"
    );

    // Compliant twin: map lock released before the shard lock is taken.
    let good = SourceFile::from_source(
        "crates/shard/src/fixture.rs",
        r#"
fn insert(&self, id: u64) {
    {
        let owners = self.owners.write();
    }
    let result = self.shards[0].write().insert(id);
}
"#,
    );
    assert!(
        lock_violations(&good).is_empty(),
        "false positive: {:?}",
        lock_violations(&good)
    );
}

/// Seeded violation: two shard write locks held at once (deadlock with a
/// concurrent inserter locking the same pair in the other order).
#[test]
fn seeded_double_shard_write_is_found() {
    let src = SourceFile::from_source(
        "crates/shard/src/fixture.rs",
        r#"
fn rebalance(&self) {
    let a = self.shards[0].write();
    let b = self.shards[1].write();
}
"#,
    );
    let violations = lock_violations(&src);
    assert!(!violations.is_empty(), "double shard write lock not caught");
}

/// Seeded violation: calling `stage_candidates` (which takes the staging
/// lock) while an index guard is live.
#[test]
fn seeded_stage_under_guard_is_found() {
    let bad = SourceFile::from_source(
        "crates/core/src/fixture.rs",
        r#"
fn answer(&mut self) {
    let index = self.index.read();
    let token = self.stage_candidates(index.candidates());
}
"#,
    );
    assert!(
        lock_violations(&bad)
            .iter()
            .any(|v| v.message.contains("stage_candidates")),
        "stage-under-guard not caught: {:?}",
        lock_violations(&bad)
    );

    // Compliant twin: the guard's scope closes before staging.
    let good = SourceFile::from_source(
        "crates/core/src/fixture.rs",
        r#"
fn answer(&mut self) {
    let results = {
        let index = self.index.read();
        index.candidates()
    };
    let token = self.stage_candidates(results);
}
"#,
    );
    assert!(
        lock_violations(&good).is_empty(),
        "false positive: {:?}",
        lock_violations(&good)
    );
}

/// Seeded violation: a shard write lock taken while a candidate cursor is
/// still live — the stream could observe a half-mutated shard.
#[test]
fn seeded_shard_write_under_live_cursor_is_found() {
    let bad = SourceFile::from_source(
        "crates/shard/src/fixture.rs",
        r#"
fn compact(&self, ev: &PromiseEvaluator) {
    let cursor = self.index.knn_cursor(ev, 32);
    let guard = self.shards[1].write();
    drop(cursor);
}
"#,
    );
    assert!(
        lock_violations(&bad)
            .iter()
            .any(|v| v.message.contains("candidate cursor")),
        "write-under-cursor not caught: {:?}",
        lock_violations(&bad)
    );

    // Compliant twin: the cursor is consumed (collect_up_to takes self)
    // before the writer runs.
    let good = SourceFile::from_source(
        "crates/shard/src/fixture.rs",
        r#"
fn compact(&self, ev: &PromiseEvaluator) {
    let cursor = self.index.knn_cursor(ev, 32);
    let drained = cursor.collect_up_to(Some(32));
    let guard = self.shards[1].write();
}
"#,
    );
    assert!(
        lock_violations(&good).is_empty(),
        "false positive: {:?}",
        lock_violations(&good)
    );

    // Also compliant: explicit drop before the writer.
    let dropped = SourceFile::from_source(
        "crates/shard/src/fixture.rs",
        r#"
fn compact(&self, ev: &PromiseEvaluator) {
    let cursor = self.index.range_cursor(ev, 1.5);
    drop(cursor);
    let guard = self.shards[1].write();
}
"#,
    );
    assert!(
        lock_violations(&dropped).is_empty(),
        "false positive after drop: {:?}",
        lock_violations(&dropped)
    );
}

/// Seeded violation: pulling a cursor while two shard guards are held —
/// the coordinator's k-way heap pull must stay lock-free.
#[test]
fn seeded_cursor_pull_under_guard_pair_is_found() {
    let bad = SourceFile::from_source(
        "crates/shard/src/fixture.rs",
        r#"
fn drain(&self, mut cursor: CandidateCursor) {
    let a = self.shards[0].read();
    let b = self.shards[1].read();
    let head = cursor.next_candidate();
}
"#,
    );
    assert!(
        lock_violations(&bad)
            .iter()
            .any(|v| v.message.contains("lock-free")),
        "pull-under-guard-pair not caught: {:?}",
        lock_violations(&bad)
    );

    // Compliant twin: at most one shard guard held across the pull.
    let good = SourceFile::from_source(
        "crates/shard/src/fixture.rs",
        r#"
fn drain(&self, mut cursor: CandidateCursor) {
    let a = self.shards[0].read();
    let head = cursor.next_candidate();
}
"#,
    );
    assert!(
        lock_violations(&good).is_empty(),
        "false positive: {:?}",
        lock_violations(&good)
    );
}

// ---- wire-conformance pass ----------------------------------------------

const FIXTURE_PROTOCOL: &str = r#"
pub enum Request {
    Ping,
    Echo(Vec<u8>),
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(0x01),
            Request::Echo(b) => {
                out.push(0x02);
                out.extend_from_slice(b);
            }
        }
        out
    }

    pub fn decode(buf: &[u8]) -> Option<Request> {
        match buf.first()? {
            0x01 => Some(Request::Ping),
            0x02 => Some(Request::Echo(buf[1..].to_vec())),
            _ => None,
        }
    }
}
"#;

const FIXTURE_README: &str = "\
| `Ping` | 0x01 | empty |
| `Echo` | 0x02 | raw bytes |
";

/// A protocol variant reachable from encode/decode and listed in the README
/// but never exercised by the fuzz suite is flagged; naming it clears the
/// flag.
#[test]
fn seeded_unfuzzed_variant_is_found() {
    let src = SourceFile::from_source("crates/core/src/protocol.rs", FIXTURE_PROTOCOL);
    // Response enum is absent in the fixture; keep only Request issues.
    let request_issues = |fuzz: &str| -> Vec<String> {
        wire_issues(&src, FIXTURE_README, fuzz)
            .into_iter()
            .map(|i| i.message)
            .filter(|m| m.contains("Request::"))
            .collect()
    };

    let partial_fuzz = "fn t() { let _ = Request::Ping; }";
    let issues = request_issues(partial_fuzz);
    assert!(
        issues
            .iter()
            .any(|m| m.contains("Request::Echo") && m.contains("never exercised")),
        "un-fuzzed variant not caught: {issues:?}"
    );

    let full_fuzz = "fn t() { let _ = (Request::Ping, Request::Echo(vec![])); }";
    assert!(
        request_issues(full_fuzz).is_empty(),
        "false positive: {:?}",
        request_issues(full_fuzz)
    );
}

/// A decode arm whose tag disagrees with the encode arm is flagged.
#[test]
fn seeded_tag_mismatch_is_found() {
    let swapped = FIXTURE_PROTOCOL.replace(
        "            0x01 => Some(Request::Ping),\n            0x02 => Some(Request::Echo(buf[1..].to_vec())),",
        "            0x01 => Some(Request::Echo(buf[1..].to_vec())),\n            0x02 => Some(Request::Ping),",
    );
    let src = SourceFile::from_source("crates/core/src/protocol.rs", &swapped);
    let fuzz = "fn t() { let _ = (Request::Ping, Request::Echo(vec![])); }";
    let issues = wire_issues(&src, FIXTURE_README, fuzz);
    assert!(
        issues
            .iter()
            .any(|i| i.message.contains("encodes tag") && i.message.contains("decodes")),
        "tag mismatch not caught: {issues:?}"
    );
}

/// A variant missing from the README wire table is flagged.
#[test]
fn seeded_missing_readme_row_is_found() {
    let src = SourceFile::from_source("crates/core/src/protocol.rs", FIXTURE_PROTOCOL);
    let readme = "| `Ping` | 0x01 | empty |\n";
    let fuzz = "fn t() { let _ = (Request::Ping, Request::Echo(vec![])); }";
    let issues = wire_issues(&src, readme, fuzz);
    assert!(
        issues
            .iter()
            .any(|i| i.message.contains("Echo") && i.message.contains("wire table")),
        "missing README row not caught: {issues:?}"
    );
}

/// Non-contiguous opcodes are flagged.
#[test]
fn seeded_opcode_gap_is_found() {
    let gapped = FIXTURE_PROTOCOL
        .replace("out.push(0x02)", "out.push(0x03)")
        .replace("0x02 => Some(Request::Echo", "0x03 => Some(Request::Echo");
    let src = SourceFile::from_source("crates/core/src/protocol.rs", &gapped);
    let readme = "| `Ping` | 0x01 | empty |\n| `Echo` | 0x03 | raw bytes |\n";
    let fuzz = "fn t() { let _ = (Request::Ping, Request::Echo(vec![])); }";
    let issues = wire_issues(&src, readme, fuzz);
    assert!(
        issues.iter().any(|i| i.message.contains("not contiguous")),
        "opcode gap not caught: {issues:?}"
    );
}

// ---- fault-tolerance code stays inside the zero-panic gate ---------------

/// The retry state machine and the fault-injection wrappers live in
/// `crates/transport/src/` — the Server zone, whose panic gate is pinned at
/// zero findings. This fixture is shaped like that code (attempt loop,
/// backoff arithmetic, byte-corruption at an offset) written the panic-free
/// way; the analyzer must stay quiet on it, and must still fire on its
/// careless twin. A regression in either direction would let a future
/// retry/fault patch slip a panic site into the request path.
#[test]
fn retry_state_machine_fixture_is_server_zone_and_panic_free() {
    let clean = SourceFile::from_source(
        "crates/transport/src/fixture_retry.rs",
        r#"
fn round_trip_with(max_attempts: u32, frame: &mut [u8]) -> Result<(), ()> {
    let mut attempt: u32 = 0;
    loop {
        attempt = attempt.saturating_add(1);
        let shift = attempt.saturating_sub(2).min(16);
        let backoff_ms = 10u64.saturating_mul(1u64 << shift);
        if let Some(byte) = frame.get_mut(backoff_ms as usize % frame.len().max(1)) {
            *byte ^= 1;
            return Ok(());
        }
        if attempt >= max_attempts.max(1) {
            return Err(());
        }
    }
}
"#,
    );
    assert_eq!(
        zone_for(
            "crates/transport/src/fixture_retry.rs",
            Some("round_trip_with")
        ),
        Zone::Server,
        "retry/fault code must sit in the zero-panic Server zone"
    );
    assert!(
        panic_findings(&clean).is_empty(),
        "panic-free retry fixture must stay clean: {:?}",
        panic_findings(&clean)
    );

    // The careless twin: indexing and unwrap in the same shapes the real
    // retry loop would be tempted to use.
    let careless = SourceFile::from_source(
        "crates/transport/src/fixture_retry.rs",
        r#"
fn round_trip_with(max_attempts: u32, frame: &mut [u8]) -> Result<(), ()> {
    let at = usize::try_from(max_attempts).unwrap();
    frame[at] ^= 1;
    Ok(())
}
"#,
    );
    let findings = panic_findings(&careless);
    assert!(
        findings.iter().any(|f| f.kind == PanicKind::Unwrap),
        "unwrap in retry fixture not caught: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.kind == PanicKind::SliceIndex),
        "indexing in retry fixture not caught: {findings:?}"
    );
}
