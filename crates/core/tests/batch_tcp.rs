//! Mixed-outcome `BatchKnn` over a **real TCP socket**: one malformed
//! sub-query (short distance vector — the routing a buggy or hostile
//! client could ship) travels in the same batch as healthy siblings. The
//! wire contract under test: per-slot `Result`s (the bad query fails alone,
//! its siblings' candidate sets still arrive), and the server's batch
//! stats cover exactly the successful sub-queries.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_core::protocol::{KnnQuery, Request, Response};
use simcloud_core::{
    client_for, connect_tcp, serve_tcp_concurrent, ClientConfig, CloudServer, SecretKey,
};
use simcloud_metric::{ObjectId, PivotSelection, Vector, L2};
use simcloud_mindex::{MIndexConfig, Routing, RoutingStrategy};
use simcloud_storage::MemoryStore;
use simcloud_transport::{TcpTransport, Transport};

const PIVOTS: usize = 4;

fn deployment(n: usize, seed: u64) -> (Arc<CloudServer<MemoryStore>>, SecretKey, Vec<Vector>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let vectors: Vec<Vector> = (0..n)
        .map(|_| Vector::new((0..3).map(|_| rng.gen_range(-4.0f32..4.0)).collect()))
        .collect();
    let (key, _) = SecretKey::generate(&vectors, PIVOTS, &L2, PivotSelection::Random, seed ^ 0xaa);
    let server = Arc::new(
        CloudServer::new(
            MIndexConfig {
                num_pivots: PIVOTS,
                max_level: 2,
                bucket_capacity: 8,
                strategy: RoutingStrategy::Distances,
            },
            MemoryStore::new(),
        )
        .unwrap(),
    );
    let mut owner = client_for(
        key.clone(),
        L2,
        Arc::clone(&server),
        ClientConfig::distances(),
    )
    .with_rng_seed(seed ^ 1);
    let objects: Vec<(ObjectId, Vector)> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    owner.insert_bulk(&objects).unwrap();
    (server, key, vectors)
}

/// Raw-protocol variant: a hand-built batch with a short distance vector in
/// slot 1, sent over a real socket. Healthy slots answer; the bad slot
/// carries its own error; the batch's per-request stats count only the
/// successes.
#[test]
fn batch_with_malformed_subquery_answers_per_slot_over_tcp() {
    let (server, _key, _vectors) = deployment(30, 7);
    let handle = serve_tcp_concurrent(Arc::clone(&server)).unwrap();
    let mut raw = TcpTransport::connect(handle.addr()).unwrap();

    let batch = Request::BatchKnn(vec![
        KnnQuery {
            routing: Routing::from_distances(&[0.5, 0.5, 0.5, 0.5]),
            cand_size: 6,
        },
        KnnQuery {
            // Dimension mismatch: before PR 4's fix this could index past a
            // root pivot and kill the server remotely; now it must land as
            // a per-slot error.
            routing: Routing::from_distances(&[0.5, 0.5]),
            cand_size: 6,
        },
        KnnQuery {
            routing: Routing::from_distances(&[1.0, 1.0, 1.0, 1.0]),
            cand_size: 3,
        },
    ]);
    let resp = Response::decode(&raw.round_trip(&batch.encode()).unwrap()).unwrap();
    match resp {
        Response::CandidateSets(sets) => {
            assert_eq!(sets.len(), 3, "every slot answers, even the failed one");
            assert_eq!(sets[0].as_ref().unwrap().headers.len(), 6);
            let msg = sets[1].as_ref().unwrap_err();
            assert!(msg.contains("pivot distances"), "{msg}");
            assert_eq!(sets[2].as_ref().unwrap().headers.len(), 3);
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        server.last_search_stats().candidates,
        9,
        "batch stats cover only the successful sub-queries"
    );
    assert_eq!(server.total_search_stats().candidates, 9);

    // The server survives the bad slot: the same connection keeps serving.
    let again = Response::decode(
        &raw.round_trip(
            &Request::ApproxKnn {
                routing: Routing::from_distances(&[0.5, 0.5, 0.5, 0.5]),
                cand_size: 2,
            }
            .encode(),
        )
        .unwrap(),
    )
    .unwrap();
    assert!(matches!(again, Response::CandidateList(_)));
    drop(raw);
    handle.shutdown();
}

/// Client-API variant over TCP: `knn_approx_batch` surfaces the per-slot
/// server error as `ClientError::Server` in that slot while the sibling
/// queries refine to real neighbors. (The client itself always ships
/// well-formed routing, so the bad slot is injected through a second,
/// raw-protocol connection sharing the server — proving slot isolation is
/// a *server* property, not client-side courtesy.)
#[test]
fn client_batch_api_isolates_server_side_slot_failures() {
    let (server, key, vectors) = deployment(24, 9);
    let handle = serve_tcp_concurrent(Arc::clone(&server)).unwrap();

    // Raw connection injects the mixed batch and checks slot shapes.
    let mut raw = TcpTransport::connect(handle.addr()).unwrap();
    let resp = Response::decode(
        &raw.round_trip(
            &Request::BatchKnn(vec![
                KnnQuery {
                    routing: Routing::from_distances(&[0.1, 0.2, 0.3]), // short
                    cand_size: 4,
                },
                KnnQuery {
                    routing: Routing::from_distances(&[0.1, 0.2, 0.3, 0.4]),
                    cand_size: 4,
                },
            ])
            .encode(),
        )
        .unwrap(),
    )
    .unwrap();
    match resp {
        Response::CandidateSets(sets) => {
            assert!(sets[0].is_err() && sets[1].is_ok());
        }
        other => panic!("unexpected {other:?}"),
    }

    // The normal client's batch API on the same server: all slots healthy,
    // results refine, and a deliberately failing slot would surface as
    // ClientError::Server (shape checked via the raw probe above).
    let mut client = connect_tcp(key, L2, handle.addr(), ClientConfig::distances()).unwrap();
    let queries: Vec<Vector> = vectors.iter().take(3).cloned().collect();
    let (results, costs) = client.knn_approx_batch(&queries, 2, 12).unwrap();
    assert_eq!(results.len(), 3);
    for (i, r) in results.iter().enumerate() {
        let neighbors = r.as_ref().unwrap();
        assert_eq!(
            neighbors[0].0,
            ObjectId(i as u64),
            "member query finds itself"
        );
    }
    assert!(costs.candidates > 0);
    drop(raw);
    drop(client);
    handle.shutdown();
}
