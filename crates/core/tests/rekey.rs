//! Key rotation / client revocation: after `rekey_into`, the old key is
//! useless against the new deployment, and the new deployment answers
//! queries identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_core::{in_process, ClientConfig, SecretKey};
use simcloud_metric::{ObjectId, PivotSelection, Vector, L2};
use simcloud_mindex::{MIndexConfig, RoutingStrategy};
use simcloud_storage::MemoryStore;

fn data(n: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Vector::new((0..4).map(|_| rng.gen_range(-5.0..5.0)).collect()))
        .collect()
}

#[test]
fn rekey_revokes_old_key_and_preserves_answers() {
    let data = data(200, 1);
    let cfg = MIndexConfig {
        num_pivots: 6,
        max_level: 2,
        bucket_capacity: 16,
        strategy: RoutingStrategy::Distances,
    };
    let (old_key, _) = SecretKey::generate(&data, 6, &L2, PivotSelection::Random, 2);
    let mut old_cloud = in_process(
        old_key.clone(),
        L2,
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .unwrap()
    .with_rng_seed(3);
    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v))
        .collect();
    old_cloud.insert_bulk(&objects).unwrap();

    // Export under the old key.
    let (exported, costs) = old_cloud.export_all().unwrap();
    assert_eq!(exported.len(), 200);
    assert_eq!(costs.candidates, 200);
    assert_eq!(exported[7].1, data[7]);

    // Rotate: fresh key (same pivots, new cipher), fresh server.
    let (new_key, new_master) = SecretKey::generate(&data, 6, &L2, PivotSelection::Random, 99);
    let mut new_cloud = in_process(
        new_key.clone(),
        L2,
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .unwrap()
    .with_rng_seed(4);
    old_cloud.rekey_into(&mut new_cloud, 64).unwrap();

    // Answers agree between old and new deployments.
    let q = &data[11];
    let (old_res, _) = old_cloud.knn_approx(q, 5, 200).unwrap();
    let (new_res, _) = new_cloud.knn_approx(q, 5, 200).unwrap();
    assert_eq!(
        old_res.iter().map(|x| x.0).collect::<Vec<_>>(),
        new_res.iter().map(|x| x.0).collect::<Vec<_>>()
    );

    // Revocation: a payload sealed under the new key cannot be opened by
    // the old key (and vice versa).
    use rand::RngCore;
    let mut rng = StdRng::seed_from_u64(5);
    let mut iv = [0u8; 16];
    rng.fill_bytes(&mut iv);
    let sealed_new = new_key.cipher().seal_with_iv(b"obj", new_key.mode(), &iv);
    assert!(old_key.cipher().unseal(&sealed_new).is_err());

    // A client rebuilt from the distributed new master can read it.
    let client_key = SecretKey::from_master(new_key.pivots().to_vec(), &new_master);
    assert_eq!(client_key.cipher().unseal(&sealed_new).unwrap(), b"obj");
}
