//! Concurrent serving mode: one shared `CloudServer` hammered by parallel
//! query threads while an insert thread runs, plus the protocol-correctness
//! regressions that the shared-read refactor fixed on the way (boundary
//! range distances on the wire, partial-insert reporting, NaN-poisoned
//! candidates).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_core::protocol::{KnnQuery, Request, Response};
use simcloud_core::{client_for, ClientConfig, ClientError, CloudServer, SecretKey};
use simcloud_metric::{Metric, ObjectId, PivotSelection, Vector, L2};
use simcloud_mindex::{IndexEntry, MIndexConfig, Routing, RoutingStrategy};
use simcloud_storage::MemoryStore;
use simcloud_transport::{SharedRequestHandler, Transport};

fn random_data(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Vector::new((0..dim).map(|_| rng.gen_range(-8.0..8.0)).collect()))
        .collect()
}

fn config(pivots: usize) -> MIndexConfig {
    MIndexConfig {
        num_pivots: pivots,
        max_level: 2,
        bucket_capacity: 16,
        strategy: RoutingStrategy::Distances,
    }
}

fn objects(data: &[Vector]) -> Vec<(ObjectId, Vector)> {
    data.iter()
        .cloned()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v))
        .collect()
}

/// N query threads hammer `ApproxKnn` against one shared server while an
/// insert thread keeps adding entries. Every response must decode, and the
/// server's accumulated stats must equal the per-thread sums exactly.
#[test]
fn concurrent_queries_with_live_inserts() {
    const THREADS: usize = 4;
    const QUERIES_PER_THREAD: usize = 50;

    let server = Arc::new(
        CloudServer::new(
            MIndexConfig {
                num_pivots: 4,
                max_level: 2,
                bucket_capacity: 8,
                strategy: RoutingStrategy::Distances,
            },
            MemoryStore::new(),
        )
        .unwrap(),
    );

    // Seed the index at the raw protocol level (the server is routing-only:
    // no key material needed to exercise concurrency).
    let entry = |id: u64, ds: [f64; 4]| IndexEntry::new(id, Routing::from_distances(&ds), vec![7]);
    let mut rng = StdRng::seed_from_u64(99);
    let mut rand_ds = move || {
        let mut ds = [0.0f64; 4];
        for d in &mut ds {
            *d = rng.gen_range(0.1..9.9);
        }
        ds
    };
    let mut seed_entries = Vec::new();
    for id in 0..200u64 {
        seed_entries.push(entry(id, rand_ds()));
    }
    match Response::decode(&server.handle_shared(&Request::Insert(seed_entries).encode())).unwrap()
    {
        Response::Inserted(200) => {}
        other => panic!("seed insert failed: {other:?}"),
    }

    let per_thread_candidates: Vec<u64> = std::thread::scope(|scope| {
        // Writer: keeps inserting while queries run.
        let writer = {
            let server = Arc::clone(&server);
            let mut rand_ds = {
                let mut rng = StdRng::seed_from_u64(7331);
                move || {
                    let mut ds = [0.0f64; 4];
                    for d in &mut ds {
                        *d = rng.gen_range(0.1..9.9);
                    }
                    ds
                }
            };
            scope.spawn(move || {
                for id in 1000..1200u64 {
                    let req = Request::Insert(vec![entry(id, rand_ds())]).encode();
                    match Response::decode(&server.handle_shared(&req)).unwrap() {
                        Response::Inserted(1) => {}
                        other => panic!("live insert failed: {other:?}"),
                    }
                }
            })
        };
        let readers: Vec<_> = (0..THREADS)
            .map(|t| {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t as u64);
                    let mut sum = 0u64;
                    for _ in 0..QUERIES_PER_THREAD {
                        let mut ds = [0.0f64; 4];
                        for d in &mut ds {
                            *d = rng.gen_range(0.1..9.9);
                        }
                        let req = Request::ApproxKnn {
                            routing: Routing::from_distances(&ds),
                            cand_size: 10,
                        }
                        .encode();
                        match Response::decode(&server.handle_shared(&req)).unwrap() {
                            Response::CandidateList(list) => {
                                assert!(!list.headers.is_empty(), "index is non-empty");
                                sum += list.headers.len() as u64;
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    sum
                })
            })
            .collect();
        writer.join().unwrap();
        readers.into_iter().map(|r| r.join().unwrap()).collect()
    });

    let total: u64 = per_thread_candidates.iter().sum();
    assert_eq!(
        server.total_search_stats().candidates,
        total,
        "atomic stats must equal the per-thread candidate sum"
    );
    // All writer inserts landed alongside the reads.
    match Response::decode(&server.handle_shared(&Request::Info.encode())).unwrap() {
        Response::Info { entries, .. } => assert_eq!(entries, 200 + 200),
        other => panic!("unexpected {other:?}"),
    }
}

/// Concurrent *encrypted clients* (each thread owns a client + key clone)
/// against one shared server produce exactly the same answers as a single
/// client asking sequentially.
#[test]
fn shared_server_answers_match_single_client() {
    let data = random_data(300, 4, 5);
    let (key, _) = SecretKey::generate(&data, 8, &L2, PivotSelection::Random, 6);
    let server = Arc::new(CloudServer::new(config(8), MemoryStore::new()).unwrap());

    let mut owner = client_for(
        key.clone(),
        L2,
        Arc::clone(&server),
        ClientConfig::distances(),
    )
    .with_rng_seed(7);
    owner.insert_bulk(&objects(&data)).unwrap();

    // Sequential reference answers.
    let reference: Vec<Vec<(ObjectId, f64)>> = (0..20)
        .map(|qi| owner.knn_approx(&data[qi * 13], 10, 60).unwrap().0)
        .collect();

    let answers: Vec<Vec<Vec<(ObjectId, f64)>>> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                let server = Arc::clone(&server);
                let key = key.clone();
                scope.spawn({
                    let data = &data;
                    move || {
                        let mut client =
                            client_for(key, L2, server, ClientConfig::distances()).with_rng_seed(8);
                        (0..20)
                            .map(|qi| client.knn_approx(&data[qi * 13], 10, 60).unwrap().0)
                            .collect::<Vec<_>>()
                    }
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for per_thread in &answers {
        assert_eq!(per_thread, &reference);
    }
}

/// The batch API is one round trip and returns exactly the per-query
/// results of the sequential API.
#[test]
fn batch_knn_matches_sequential_in_one_round_trip() {
    let data = random_data(250, 4, 15);
    let (key, _) = SecretKey::generate(&data, 8, &L2, PivotSelection::Random, 16);
    let server = Arc::new(CloudServer::new(config(8), MemoryStore::new()).unwrap());
    let mut client = client_for(
        key.clone(),
        L2,
        Arc::clone(&server),
        ClientConfig::distances(),
    )
    .with_rng_seed(17);
    client.insert_bulk(&objects(&data)).unwrap();

    let queries: Vec<Vector> = (0..16).map(|i| data[i * 11].clone()).collect();
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| client.knn_approx(q, 5, 50).unwrap().0)
        .collect();

    let requests_before = client.transport().stats().requests;
    let (batched, costs) = client.knn_approx_batch(&queries, 5, 50).unwrap();
    assert_eq!(
        client.transport().stats().requests,
        requests_before + 1,
        "a batch is ONE round trip"
    );
    let batched: Vec<_> = batched
        .into_iter()
        .map(|r| r.expect("per-query result"))
        .collect();
    assert_eq!(batched, sequential);
    assert_eq!(costs.candidates, 16 * 50);

    // Server-side: the batch counted as one search request.
    assert_eq!(server.last_search_stats().candidates, 16 * 50);

    // Empty batch is legal and cheap.
    let (empty, _) = client.knn_approx_batch(&[], 5, 50).unwrap();
    assert!(empty.is_empty());
}

/// Regression (f32 wire): an object at distance *exactly* `radius` must be
/// returned. The crafted query puts a cell boundary where f32-rounded wire
/// distances flip the hyperplane pruning decision: `d(q,p0) = 0.7` rounds
/// *down* in f32, `d(q,p1) = 1 − 1e-9` rounds *up* to 1.0, so the old wire
/// pruned the cell holding the boundary object; full f64 keeps it.
#[test]
fn range_boundary_object_survives_wire_precision() {
    let server = CloudServer::new(
        MIndexConfig {
            num_pivots: 2,
            max_level: 1,
            bucket_capacity: 64,
            strategy: RoutingStrategy::Distances,
        },
        MemoryStore::new(),
    )
    .unwrap();
    // Object in pivot-1's cell, pivot distances within radius+slack of the
    // query's (the server-side filter must keep it).
    let boundary = IndexEntry::new(42, Routing::Distances(vec![0.85, 0.849_99]), vec![1]);
    match server.process(Request::Insert(vec![boundary])) {
        Response::Inserted(1) => {}
        other => panic!("unexpected {other:?}"),
    }
    let resp = server.process(Request::Range {
        distances: vec![0.7, 1.0 - 1e-9],
        radius: 0.15,
    });
    match resp {
        Response::CandidateList(list) => {
            assert_eq!(
                list.headers.iter().map(|h| h.id).collect::<Vec<_>>(),
                vec![42],
                "boundary object pruned — wire precision regression"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// End-to-end boundary guarantee: querying with radius exactly equal to a
/// true distance returns that object, including at magnitudes where f32
/// rounding error exceeds any fixed slack.
#[test]
fn range_radius_exactly_at_object_distance() {
    let data: Vec<Vector> = random_data(200, 3, 23)
        .into_iter()
        .map(|v| Vector::new(v.as_slice().iter().map(|c| c * 1.0e5).collect()))
        .collect();
    let (key, _) = SecretKey::generate(&data, 6, &L2, PivotSelection::Random, 24);
    let server = Arc::new(CloudServer::new(config(6), MemoryStore::new()).unwrap());
    let mut client = client_for(key, L2, server, ClientConfig::distances()).with_rng_seed(25);
    client.insert_bulk(&objects(&data)).unwrap();

    for (qi, oi) in [(0usize, 77usize), (10, 150), (33, 34), (50, 50)] {
        let q = &data[qi];
        let radius = Metric::<Vector>::distance(&L2, q, &data[oi]);
        let (res, _) = client.range(q, radius).unwrap();
        assert!(
            res.iter().any(|(id, _)| *id == ObjectId(oi as u64)),
            "object {oi} at distance exactly {radius} missing from R(q{qi}, {radius})"
        );
    }
}

/// A correctly-sealed payload that decodes to a NaN vector (a buggy or
/// malicious *authorized* writer) must never panic the refinement sort.
/// Since the decrypt-on-demand refactor it must not abort the query either:
/// the bad candidate is skipped and recorded in the `CostReport`, and the
/// query only fails when the answer itself is short of `k`.
#[test]
fn nan_distance_candidate_rejected_not_panicking() {
    let clean = random_data(64, 2, 31);
    let (key, _) = SecretKey::generate(&clean, 2, &L2, PivotSelection::Random, 32);
    let server = Arc::new(
        CloudServer::new(
            MIndexConfig {
                num_pivots: 2,
                max_level: 1,
                bucket_capacity: 16,
                strategy: RoutingStrategy::Distances,
            },
            MemoryStore::new(),
        )
        .unwrap(),
    );
    // Plant an entry with honest routing but a NaN payload, sealed under
    // the real key so it authenticates and decrypts cleanly.
    let poison = Vector::new(vec![f32::NAN, 0.0]);
    let mut plain = Vec::new();
    poison.encode(&mut plain);
    let mut rng = StdRng::seed_from_u64(3333);
    // Sealed exactly as an authorized writer would: MAC-bound to its id.
    let sealed = key
        .cipher()
        .seal_with_aad(&plain, &1u64.to_le_bytes(), key.mode(), &mut rng);
    let routing = Routing::from_distances(&key.pivot_distances(&L2, &clean[1]));
    match server.process(Request::Insert(vec![IndexEntry::new(1, routing, sealed)])) {
        Response::Inserted(1) => {}
        other => panic!("unexpected {other:?}"),
    }

    let mut client = client_for(
        key.clone(),
        L2,
        Arc::clone(&server),
        ClientConfig::distances(),
    )
    .with_rng_seed(33);
    let mut good: Vec<(ObjectId, Vector)> = objects(&clean);
    good.remove(1); // id 1 is the poisoned entry
    client.insert_bulk(&good).unwrap();

    // Plenty of good candidates: the poisoned entry is skipped, recorded,
    // and the k good neighbors survive instead of being thrown away.
    match client.knn_approx(&clean[1], 3, 64) {
        Ok((res, costs)) => {
            assert_eq!(res.len(), 3);
            assert!(
                res.iter().all(|(id, _)| *id != ObjectId(1)),
                "poisoned candidate must not appear in the answer: {res:?}"
            );
            assert_eq!(costs.bad_candidates, 1, "the skip must be accounted");
        }
        Err(e) => panic!("one bad candidate must not abort the query: {e}"),
    }

    // But when the damage is visible — more neighbors requested than good
    // candidates exist — the query must fail loudly, not return quietly
    // short.
    match client.knn_approx(&clean[1], 64, 64) {
        Err(ClientError::BadObject(id)) => assert_eq!(id, 1),
        Ok((res, _)) => panic!("short answer ({} of 64) must error", res.len()),
        Err(other) => panic!("wrong error: {other}"),
    }
}

/// Partial insert failures surface the stored-prefix count end to end.
#[test]
fn partial_insert_error_reaches_client() {
    let server = Arc::new(
        CloudServer::new(
            MIndexConfig {
                num_pivots: 3,
                max_level: 2,
                bucket_capacity: 8,
                strategy: RoutingStrategy::Distances,
            },
            MemoryStore::new(),
        )
        .unwrap(),
    );
    // Protocol level: 2 good entries, then one with mismatched dimensions.
    let good = |id: u64| IndexEntry::new(id, Routing::from_distances(&[0.1, 0.2, 0.3]), vec![0]);
    let bad = IndexEntry::new(9, Routing::from_distances(&[0.1, 0.2]), vec![0]);
    let resp = server.process(Request::Insert(vec![good(1), good(2), bad, good(3)]));
    match resp {
        Response::InsertError { inserted, .. } => assert_eq!(inserted, 2),
        other => panic!("unexpected {other:?}"),
    }

    // Client level: the typed error carries the count. This client's key
    // disagrees with the server's pivot count, so the server rejects the
    // first entry — the error must say 0 landed.
    let data = random_data(8, 3, 41);
    let mismatched = Arc::new(
        CloudServer::new(
            MIndexConfig {
                num_pivots: 4,
                max_level: 2,
                bucket_capacity: 8,
                strategy: RoutingStrategy::Distances,
            },
            MemoryStore::new(),
        )
        .unwrap(),
    );
    let mut wrong = client_for(
        SecretKey::generate(&data, 3, &L2, PivotSelection::Random, 44).0,
        L2,
        mismatched,
        ClientConfig::distances(),
    )
    .with_rng_seed(45);
    let err = wrong
        .insert_bulk(&objects(&data))
        .expect_err("3-pivot routing against a 4-pivot index must fail");
    match err {
        ClientError::PartialInsert { inserted, message } => {
            assert_eq!(inserted, 0);
            assert!(message.contains("pivot distances"), "{message}");
        }
        other => panic!("wrong error: {other}"),
    }
}

/// The batch protocol handles the mixed-routing case: distance and
/// permutation queries in one batch against a distances index.
#[test]
fn batch_accepts_mixed_routing() {
    let server = CloudServer::new(
        MIndexConfig {
            num_pivots: 3,
            max_level: 2,
            bucket_capacity: 8,
            strategy: RoutingStrategy::Distances,
        },
        MemoryStore::new(),
    )
    .unwrap();
    for id in 0..10u64 {
        let ds = [0.1 * id as f64 + 0.05, 0.5, 0.9];
        server.process(Request::Insert(vec![IndexEntry::new(
            id,
            Routing::from_distances(&ds),
            vec![],
        )]));
    }
    let resp = server.process(Request::BatchKnn(vec![
        KnnQuery {
            routing: Routing::from_distances(&[0.05, 0.5, 0.9]),
            cand_size: 3,
        },
        KnnQuery {
            routing: Routing::permutation_prefix(&[0.05, 0.5, 0.9], 3),
            cand_size: 3,
        },
    ]));
    match resp {
        Response::CandidateSets(sets) => {
            assert_eq!(sets.len(), 2);
            assert_eq!(sets[0].as_ref().unwrap().headers.len(), 3);
            assert!(!sets[1].as_ref().unwrap().headers.is_empty());
        }
        other => panic!("unexpected {other:?}"),
    }
}
