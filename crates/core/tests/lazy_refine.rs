//! Lazy (decrypt-on-demand) refinement must be **invisible in the answers**:
//! for the distances strategy the early exit is proven sound by the wire
//! lower bounds, so every query — k-NN, batch, range, transformed — returns
//! byte-identical results to eager refinement, including ties at the k-th
//! distance. These tests drive lazy and eager clients against the *same*
//! shared server state and compare exactly.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_core::{
    client_for, ClientConfig, CloudServer, LazyRefine, Neighbor, SecretKey, ServerConfig,
    SharedCloud,
};
use simcloud_metric::{ObjectId, PivotSelection, Vector, L2};
use simcloud_mindex::{MIndexConfig, RoutingStrategy};
use simcloud_storage::MemoryStore;

/// Random data with deliberate duplicates: every fourth point is a copy of
/// an earlier one, so k-th-distance ties are common, exercising the strict
/// early-exit comparison.
fn data_with_ties(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vector> = Vec::with_capacity(n);
    for i in 0..n {
        if i % 4 == 3 {
            let j = rng.gen_range(0..out.len());
            out.push(out[j].clone());
        } else {
            out.push(Vector::new(
                (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect(),
            ));
        }
    }
    out
}

struct Deployment {
    server: Arc<CloudServer<MemoryStore>>,
    key: SecretKey,
    data: Vec<Vector>,
}

fn build(n: usize, dim: usize, pivots: usize, seed: u64, strategy: RoutingStrategy) -> Deployment {
    build_with(n, dim, pivots, seed, strategy, ServerConfig::default())
}

/// `build` with an explicit [`ServerConfig`] — a budgeted server answers
/// phase 1 with headers + a bounded payload prefix, forcing the client
/// through real phase-2 fetches.
fn build_with(
    n: usize,
    dim: usize,
    pivots: usize,
    seed: u64,
    strategy: RoutingStrategy,
    server_config: ServerConfig,
) -> Deployment {
    let data = data_with_ties(n, dim, seed);
    let (key, _) = SecretKey::generate(&data, pivots, &L2, PivotSelection::Random, seed ^ 0xfeed);
    let server = Arc::new(
        CloudServer::with_config(
            MIndexConfig {
                num_pivots: pivots,
                max_level: 2.min(pivots),
                bucket_capacity: 16,
                strategy,
            },
            server_config,
            MemoryStore::new(),
        )
        .unwrap(),
    );
    let base = match strategy {
        RoutingStrategy::Distances => ClientConfig::distances(),
        RoutingStrategy::Permutation => ClientConfig::permutations(),
    };
    let mut owner = client_for(key.clone(), L2, Arc::clone(&server), base).with_rng_seed(seed ^ 1);
    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    owner.insert_bulk(&objects).unwrap();
    Deployment { server, key, data }
}

fn client(dep: &Deployment, config: ClientConfig, seed: u64) -> SharedCloud<L2, MemoryStore> {
    client_for(dep.key.clone(), L2, Arc::clone(&dep.server), config).with_rng_seed(seed)
}

/// Bit-exact comparison: same ids in the same order, same distance bits.
fn assert_identical(lazy: &[Neighbor], eager: &[Neighbor]) -> Result<(), TestCaseError> {
    prop_assert_eq!(lazy.len(), eager.len());
    for ((li, ld), (ei, ed)) in lazy.iter().zip(eager) {
        prop_assert_eq!(li, ei);
        prop_assert_eq!(ld.to_bits(), ed.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// k-NN: lazy refinement returns byte-identical neighbors to full
    /// refinement across random datasets, k and cand_size — ties included.
    #[test]
    fn lazy_knn_equals_eager_knn(
        seed in 0u64..10_000,
        n in 24usize..160,
        dim in 1usize..5,
        pivots in 2usize..9,
        k in 1usize..24,
        cand_frac in 1usize..5,
    ) {
        let dep = build(n, dim, pivots.min(n), seed, RoutingStrategy::Distances);
        let cand_size = (n * cand_frac / 4).max(1);
        let mut lazy = client(&dep, ClientConfig::distances(), seed ^ 2);
        let mut eager = client(
            &dep,
            ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
            seed ^ 3,
        );
        for qi in [0usize, n / 3, n - 1] {
            let q = &dep.data[qi];
            let (lr, lc) = lazy.knn_approx(q, k, cand_size).unwrap();
            let (er, ec) = eager.knn_approx(q, k, cand_size).unwrap();
            assert_identical(&lr, &er)?;
            prop_assert_eq!(ec.decrypted, ec.candidates);
            prop_assert!(lc.decrypted <= lc.candidates);
        }
    }

    /// Range: the lazy skip (bounds beyond the radius) never loses a result,
    /// including objects at exactly the boundary distance.
    #[test]
    fn lazy_range_equals_eager_range(
        seed in 0u64..10_000,
        n in 24usize..120,
        radius in 0.0f64..6.0,
    ) {
        let dep = build(n, 3, 5, seed, RoutingStrategy::Distances);
        let mut lazy = client(&dep, ClientConfig::distances(), seed ^ 2);
        let mut eager = client(
            &dep,
            ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
            seed ^ 3,
        );
        let q = &dep.data[seed as usize % n];
        let (lr, _) = lazy.range(q, radius).unwrap();
        let (er, _) = eager.range(q, radius).unwrap();
        assert_identical(&lr, &er)?;
    }

    /// Two-phase k-NN: against a byte-budgeted server (headers + partial
    /// inline prefix; the rest pulled with FetchObjects in adaptive
    /// batches) every combination of fetch tuning returns byte-identical
    /// neighbors to eager refinement on a fully-inlined server — whatever
    /// the inline prefix and wherever the batch boundaries land relative
    /// to the early-exit point.
    #[test]
    fn two_phase_knn_equals_eager(
        seed in 0u64..10_000,
        n in 24usize..160,
        dim in 1usize..5,
        pivots in 2usize..9,
        k in 1usize..24,
        budget in 0usize..3000,
        alpha in 1usize..5,
        min_batch in 1usize..9,
    ) {
        let pivots = pivots.min(n);
        let two_phase = build_with(
            n, dim, pivots, seed,
            RoutingStrategy::Distances,
            ServerConfig::budgeted(budget),
        );
        let full = build(n, dim, pivots, seed, RoutingStrategy::Distances);
        let cand_size = (n / 2).max(1);
        let mut lazy2p = client(
            &two_phase,
            ClientConfig::distances().with_fetch_batching(alpha, min_batch),
            seed ^ 2,
        );
        let mut eager2p = client(
            &two_phase,
            ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
            seed ^ 3,
        );
        let mut eager_full = client(
            &full,
            ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
            seed ^ 4,
        );
        for qi in [0usize, n / 2, n - 1] {
            let q = &two_phase.data[qi];
            let (lr, lc) = lazy2p.knn_approx(q, k, cand_size).unwrap();
            let (e2r, e2c) = eager2p.knn_approx(q, k, cand_size).unwrap();
            let (efr, _) = eager_full.knn_approx(q, k, cand_size).unwrap();
            assert_identical(&lr, &e2r)?;
            assert_identical(&lr, &efr)?;
            // Eager pulls every non-inlined payload; lazy can only pull a
            // subset of those.
            prop_assert!(lc.fetched <= e2c.fetched);
            prop_assert!(lc.decrypted <= lc.candidates);
            prop_assert_eq!(e2c.decrypted, e2c.candidates);
        }
    }

    /// Two-phase range queries: identical results across budgets.
    #[test]
    fn two_phase_range_equals_eager(
        seed in 0u64..10_000,
        n in 24usize..120,
        radius in 0.0f64..6.0,
        budget in 0usize..2000,
    ) {
        let two_phase = build_with(
            n, 3, 5, seed,
            RoutingStrategy::Distances,
            ServerConfig::budgeted(budget),
        );
        let full = build(n, 3, 5, seed, RoutingStrategy::Distances);
        let mut lazy2p = client(
            &two_phase,
            ClientConfig::distances().with_fetch_batching(1, 2),
            seed ^ 2,
        );
        let mut eager_full = client(
            &full,
            ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
            seed ^ 3,
        );
        let q = &two_phase.data[seed as usize % n];
        let (lr, _) = lazy2p.range(q, radius).unwrap();
        let (er, _) = eager_full.range(q, radius).unwrap();
        assert_identical(&lr, &er)?;
    }
}

/// The early exit must actually fire: a member query over a sizable
/// candidate set finds its k neighbors long before the bound-sorted tail.
#[test]
fn early_exit_fires_on_member_queries() {
    let dep = build(400, 4, 8, 77, RoutingStrategy::Distances);
    let mut lazy = client(&dep, ClientConfig::distances(), 78);
    let (res, costs) = lazy.knn_approx(&dep.data[10], 10, 400).unwrap();
    assert_eq!(res.len(), 10);
    assert!(
        costs.decrypted < costs.candidates,
        "no early exit: decrypted {} of {}",
        costs.decrypted,
        costs.candidates
    );
}

/// The level-4 distance transform moves the wire bounds into `T`-space;
/// the client compares through `s_max·d`, so lazy results stay identical.
#[test]
fn lazy_is_exact_under_distance_transform() {
    use simcloud_core::DistanceTransform;
    let dep = build(200, 3, 6, 99, RoutingStrategy::Distances);
    let transform = DistanceTransform::from_seed(5, 40.0, 6);
    let mut lazy = client(
        &dep,
        ClientConfig::distances().with_transform(transform.clone()),
        100,
    );
    let mut eager = client(
        &dep,
        ClientConfig::distances()
            .with_transform(transform)
            .with_lazy_refine(LazyRefine::Off),
        101,
    );
    for qi in [0usize, 50, 199] {
        let q = &dep.data[qi];
        let (lr, _) = lazy.knn_approx(q, 8, 120).unwrap();
        let (er, _) = eager.knn_approx(q, 8, 120).unwrap();
        assert_eq!(lr, er, "transform + lazy diverged on query {qi}");
    }
}

/// Under permutation routing the wire "bound" is a heuristic penalty, so
/// `Sound` must refuse to early-exit (decrypting everything, results equal
/// eager); `Heuristic` may stop early but still returns k valid neighbors.
#[test]
fn permutation_strategy_gates_lazy_mode() {
    let dep = build(160, 3, 6, 123, RoutingStrategy::Permutation);
    let mut sound = client(&dep, ClientConfig::permutations(), 124);
    let mut eager = client(
        &dep,
        ClientConfig::permutations().with_lazy_refine(LazyRefine::Off),
        125,
    );
    let mut heuristic = client(
        &dep,
        ClientConfig::permutations().with_lazy_refine(LazyRefine::Heuristic),
        126,
    );
    let q = &dep.data[7];
    let (sr, sc) = sound.knn_approx(q, 5, 80).unwrap();
    let (er, _) = eager.knn_approx(q, 5, 80).unwrap();
    assert_eq!(sr, er, "Sound must fall back to full refinement");
    assert_eq!(
        sc.decrypted, sc.candidates,
        "no early exit without sound bounds"
    );
    let (hr, hc) = heuristic.knn_approx(q, 5, 80).unwrap();
    assert_eq!(hr.len(), 5);
    assert!(hc.decrypted <= hc.candidates);
}

/// A server that mis-orders the candidate set (here: worst bounds first)
/// may cost the lazy client its early exit but never its answer — the
/// suffix-minimum pre-pass re-establishes soundness for any order.
#[test]
fn missorted_candidates_cost_speed_not_correctness() {
    use simcloud_core::protocol::Response;
    use simcloud_core::EncryptedClient;
    use simcloud_transport::{InProcessTransport, RequestHandler};

    struct Reverser<H>(H);
    impl<H: RequestHandler> RequestHandler for Reverser<H> {
        fn handle(&mut self, request: &[u8]) -> Vec<u8> {
            let resp = self.0.handle(request);
            match Response::decode(&resp) {
                // Reverse headers and payloads together: candidates keep
                // their own payloads but arrive worst-bound-first.
                Ok(Response::CandidateList(mut list))
                    if list.payloads.len() == list.headers.len() =>
                {
                    list.headers.reverse();
                    list.payloads.reverse();
                    Response::CandidateList(list).encode()
                }
                _ => resp,
            }
        }
    }

    let data = data_with_ties(200, 3, 31);
    let (key, _) = SecretKey::generate(&data, 6, &L2, PivotSelection::Random, 32);
    let cfg = MIndexConfig {
        num_pivots: 6,
        max_level: 2,
        bucket_capacity: 16,
        strategy: RoutingStrategy::Distances,
    };
    let make = |lazy: LazyRefine, seed: u64| {
        let server = CloudServer::new(cfg, MemoryStore::new()).unwrap();
        let transport = InProcessTransport::new(Reverser(server));
        let mut c = EncryptedClient::new(
            key.clone(),
            L2,
            transport,
            ClientConfig::distances().with_lazy_refine(lazy),
        )
        .with_rng_seed(seed);
        let objects: Vec<(ObjectId, Vector)> = data
            .iter()
            .enumerate()
            .map(|(i, v)| (ObjectId(i as u64), v.clone()))
            .collect();
        c.insert_bulk(&objects).unwrap();
        c
    };
    let mut lazy = make(LazyRefine::Sound, 33);
    let mut eager = make(LazyRefine::Off, 34);
    for qi in [0usize, 42, 199] {
        let q = &data[qi];
        let (lr, _) = lazy.knn_approx(q, 7, 100).unwrap();
        let (er, _) = eager.knn_approx(q, 7, 100).unwrap();
        assert_eq!(lr, er, "reversed candidate order changed the answer");
    }
}

/// NaN wire bounds must not defeat the suffix-minimum pre-pass:
/// `f64::min` ignores NaN operands, so without sanitization a malicious
/// server could ship NaN bounds, leave the suffix minima at +∞ and trick
/// the client into skipping true neighbors. Non-finite bounds collapse to
/// 0.0 (forced decryption) instead — answers stay identical to eager.
#[test]
fn nan_bounds_force_decryption_not_wrong_answers() {
    use simcloud_core::protocol::Response;
    use simcloud_core::EncryptedClient;
    use simcloud_transport::{InProcessTransport, RequestHandler};

    struct NanBounds<H>(H);
    impl<H: RequestHandler> RequestHandler for NanBounds<H> {
        fn handle(&mut self, request: &[u8]) -> Vec<u8> {
            let resp = self.0.handle(request);
            match Response::decode(&resp) {
                Ok(Response::CandidateList(mut list)) => {
                    for h in &mut list.headers {
                        h.lower_bound = f64::NAN;
                    }
                    Response::CandidateList(list).encode()
                }
                _ => resp,
            }
        }
    }

    let data = data_with_ties(120, 3, 71);
    let (key, _) = SecretKey::generate(&data, 5, &L2, PivotSelection::Random, 72);
    let cfg = MIndexConfig {
        num_pivots: 5,
        max_level: 2,
        bucket_capacity: 16,
        strategy: RoutingStrategy::Distances,
    };
    let server = CloudServer::new(cfg, MemoryStore::new()).unwrap();
    let mut lazy = EncryptedClient::new(
        key.clone(),
        L2,
        InProcessTransport::new(NanBounds(server)),
        ClientConfig::distances(),
    )
    .with_rng_seed(73);
    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    lazy.insert_bulk(&objects).unwrap();

    // Honest deployment for the expected answers.
    let honest = CloudServer::new(cfg, MemoryStore::new()).unwrap();
    let mut eager = EncryptedClient::new(
        key.clone(),
        L2,
        InProcessTransport::new(honest),
        ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
    )
    .with_rng_seed(74);
    eager.insert_bulk(&objects).unwrap();
    for qi in [0usize, 30, 119] {
        let q = &data[qi];
        let (lr, lc) = lazy.knn_approx(q, 6, 60).unwrap();
        let (er, _) = eager.knn_approx(q, 6, 60).unwrap();
        assert_eq!(lr, er, "NaN bounds changed the answer for query {qi}");
        assert_eq!(
            lc.decrypted, lc.candidates,
            "NaN bounds must disable the early exit, not trigger it"
        );
        let (lrange, _) = lazy.range(q, 3.0).unwrap();
        let (erange, _) = eager.range(q, 3.0).unwrap();
        assert_eq!(lrange, erange, "NaN bounds broke the range query {qi}");
    }
}

/// Batch queries refine lazily too, one early exit per query.
#[test]
fn batch_lazy_equals_batch_eager() {
    let dep = build(240, 3, 6, 55, RoutingStrategy::Distances);
    let mut lazy = client(&dep, ClientConfig::distances(), 56);
    let mut eager = client(
        &dep,
        ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
        57,
    );
    let queries: Vec<Vector> = (0..12).map(|i| dep.data[i * 17].clone()).collect();
    let (lr, lc) = lazy.knn_approx_batch(&queries, 10, 120).unwrap();
    let (er, ec) = eager.knn_approx_batch(&queries, 10, 120).unwrap();
    let lr: Vec<_> = lr.into_iter().map(|r| r.unwrap()).collect();
    let er: Vec<_> = er.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(lr, er);
    assert!(lc.decrypted < ec.decrypted, "batch path must exit early");
    assert_eq!(ec.decrypted, ec.candidates);
}

/// k = 0 is a degenerate but legal request: the lazy path decrypts nothing.
#[test]
fn zero_k_decrypts_nothing() {
    let dep = build(80, 2, 4, 11, RoutingStrategy::Distances);
    let mut lazy = client(&dep, ClientConfig::distances(), 12);
    let (res, costs) = lazy.knn_approx(&dep.data[0], 0, 40).unwrap();
    assert!(res.is_empty());
    assert_eq!(costs.decrypted, 0, "k = 0 needs no decryption at all");
    assert!(costs.candidates > 0);
}

/// k = 0 against a headers-only server: phase 2 must never fire — the
/// early exit precedes the first fetch decision.
#[test]
fn zero_k_two_phase_fetches_nothing() {
    let dep = build_with(
        80,
        2,
        4,
        11,
        RoutingStrategy::Distances,
        ServerConfig::budgeted(0),
    );
    let mut lazy = client(&dep, ClientConfig::distances(), 12);
    let (res, costs) = lazy.knn_approx(&dep.data[0], 0, 40).unwrap();
    assert!(res.is_empty());
    assert_eq!(costs.decrypted, 0);
    assert_eq!(costs.fetched, 0, "k = 0 must not issue phase-2 fetches");
    assert_eq!(costs.fetch_requests, 0);
    assert!(costs.candidates > 0, "headers still arrive");
}

/// k ≥ candidate count: the lazy two-phase client ends up decrypting (and
/// therefore fetching) every candidate — and the answer still matches
/// eager refinement exactly.
#[test]
fn k_exceeding_candidates_fetches_everything() {
    let dep = build_with(
        60,
        3,
        5,
        21,
        RoutingStrategy::Distances,
        ServerConfig::budgeted(0),
    );
    let full = build(60, 3, 5, 21, RoutingStrategy::Distances);
    let mut lazy = client(
        &dep,
        ClientConfig::distances().with_fetch_batching(2, 4),
        22,
    );
    let mut eager = client(
        &full,
        ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
        23,
    );
    let q = &dep.data[5];
    let (lr, lc) = lazy.knn_approx(q, 100, 40).unwrap();
    let (er, _) = eager.knn_approx(q, 100, 40).unwrap();
    assert_eq!(lr, er);
    assert_eq!(
        lc.fetched, lc.candidates,
        "k >= candidates leaves nothing to skip"
    );
    assert_eq!(lc.decrypted, lc.candidates);
    // α·k = 200 exceeds the candidate count, so one batch covers it all.
    assert_eq!(lc.fetch_requests, 1);
}

/// Per-candidate batches (α = 1, floor 1 ⇒ fetch sizes 1, 2, 4, …) put a
/// batch boundary at *every* candidate position, including exactly at the
/// early-exit point — answers must still match eager refinement, and the
/// over-fetch past the exit is bounded by the last batch.
#[test]
fn batch_boundary_at_early_exit_is_exact() {
    let dep = build_with(
        200,
        3,
        6,
        77,
        RoutingStrategy::Distances,
        ServerConfig::budgeted(0),
    );
    let full = build(200, 3, 6, 77, RoutingStrategy::Distances);
    let mut lazy = client(
        &dep,
        ClientConfig::distances().with_fetch_batching(1, 1),
        78,
    );
    let mut eager = client(
        &full,
        ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
        79,
    );
    let mut lazy_full = client(&full, ClientConfig::distances(), 80);
    for (qi, k) in [(0usize, 1usize), (50, 3), (120, 10), (199, 7)] {
        let q = &dep.data[qi];
        let (lr, lc) = lazy.knn_approx(q, k, 100).unwrap();
        let (er, _) = eager.knn_approx(q, k, 100).unwrap();
        let (flr, flc) = lazy_full.knn_approx(q, k, 100).unwrap();
        assert_eq!(lr, er, "query {qi} diverged");
        assert_eq!(lr, flr);
        assert_eq!(
            lc.decrypted, flc.decrypted,
            "the early exit must fire at the same candidate whether the \
             payloads were inlined or fetched"
        );
        assert!(lc.fetched >= lc.decrypted);
        assert!(
            lc.fetched < lc.candidates,
            "two-phase must not ship the whole set for a member query"
        );
    }
}

/// Lazy-vs-lazy across budgets: the early exit decrypts the *same*
/// candidates whether payloads came inlined or fetched — the exit decision
/// never looks at payload availability.
#[test]
fn decrypted_count_is_budget_invariant() {
    let full = build(160, 3, 6, 91, RoutingStrategy::Distances);
    let budgets = [0usize, 300, 1500, 6000];
    let mut counts = Vec::new();
    for &b in &budgets {
        let dep = build_with(
            160,
            3,
            6,
            91,
            RoutingStrategy::Distances,
            ServerConfig::budgeted(b),
        );
        let mut c = client(
            &dep,
            ClientConfig::distances().with_fetch_batching(2, 3),
            92,
        );
        let (res, costs) = c.knn_approx(&dep.data[33], 8, 80).unwrap();
        counts.push((res, costs.decrypted));
    }
    let mut reference = client(&full, ClientConfig::distances(), 93);
    let (ref_res, ref_costs) = reference.knn_approx(&full.data[33], 8, 80).unwrap();
    for (res, decrypted) in counts {
        assert_eq!(res, ref_res);
        assert_eq!(decrypted, ref_costs.decrypted);
    }
}

/// Malicious phase-2 answers must abort the query, never corrupt it:
/// payload swaps behind correct ids trip the id-bound MAC; duplicated,
/// never-requested, dropped or reordered ids trip the mirror check.
#[test]
fn malicious_fetch_answers_are_detected() {
    use simcloud_core::protocol::Response;
    use simcloud_core::{ClientError, EncryptedClient};
    use simcloud_transport::{InProcessTransport, RequestHandler};

    /// What the wrapper does to a phase-2 `Objects` answer.
    #[derive(Clone, Copy)]
    enum Attack {
        SwapPayloads,
        DuplicateFirst,
        UnrequestedId,
        DropLast,
    }

    struct Tamperer<H> {
        inner: H,
        attack: Attack,
    }
    impl<H: RequestHandler> RequestHandler for Tamperer<H> {
        fn handle(&mut self, request: &[u8]) -> Vec<u8> {
            let resp = self.inner.handle(request);
            match Response::decode(&resp) {
                Ok(Response::Objects(mut objs)) if objs.len() >= 2 => {
                    match self.attack {
                        Attack::SwapPayloads => {
                            // ids keep their requested order; contents swap.
                            let p0 = objs[0].payload.clone();
                            objs[0].payload = objs[1].payload.clone();
                            objs[1].payload = p0;
                        }
                        Attack::DuplicateFirst => objs[1] = objs[0].clone(),
                        Attack::UnrequestedId => objs[0].id = u64::MAX - 7,
                        Attack::DropLast => {
                            objs.pop();
                        }
                    }
                    Response::Objects(objs).encode()
                }
                _ => resp,
            }
        }
    }

    let data = data_with_ties(150, 3, 61);
    let (key, _) = SecretKey::generate(&data, 6, &L2, PivotSelection::Random, 62);
    let cfg = MIndexConfig {
        num_pivots: 6,
        max_level: 2,
        bucket_capacity: 16,
        strategy: RoutingStrategy::Distances,
    };
    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    let run = |attack: Attack| {
        // Headers-only responses force refinement through phase 2.
        let server =
            CloudServer::with_config(cfg, ServerConfig::budgeted(0), MemoryStore::new()).unwrap();
        let mut client = EncryptedClient::new(
            key.clone(),
            L2,
            InProcessTransport::new(Tamperer {
                inner: server,
                attack,
            }),
            ClientConfig::distances().with_fetch_batching(2, 4),
        )
        .with_rng_seed(63);
        client.insert_bulk(&objects).unwrap();
        client.knn_approx(&data[9], 5, 80).unwrap_err()
    };

    match run(Attack::SwapPayloads) {
        ClientError::Seal(_) => {}
        other => panic!("payload swap must fail the id-bound MAC, got {other}"),
    }
    match run(Attack::DuplicateFirst) {
        ClientError::FetchMismatch(m) => assert!(m.contains("requested"), "{m}"),
        other => panic!("duplicate id must be a fetch mismatch, got {other}"),
    }
    match run(Attack::UnrequestedId) {
        ClientError::FetchMismatch(m) => assert!(m.contains("requested"), "{m}"),
        other => panic!("unrequested id must be a fetch mismatch, got {other}"),
    }
    match run(Attack::DropLast) {
        ClientError::FetchMismatch(m) => assert!(m.contains("objects for"), "{m}"),
        other => panic!("short answer must be a fetch mismatch, got {other}"),
    }
}

/// A per-query error injected into a batched response stays in its slot:
/// the sibling queries' answers survive and match the sequential API.
#[test]
fn batch_per_query_error_spares_siblings() {
    use simcloud_core::protocol::Response;
    use simcloud_core::{ClientError, EncryptedClient};
    use simcloud_transport::{InProcessTransport, RequestHandler};

    struct FailSecond<H>(H);
    impl<H: RequestHandler> RequestHandler for FailSecond<H> {
        fn handle(&mut self, request: &[u8]) -> Vec<u8> {
            let resp = self.0.handle(request);
            match Response::decode(&resp) {
                Ok(Response::CandidateSets(mut sets)) if sets.len() >= 2 => {
                    sets[1] = Err("injected storage failure".into());
                    Response::CandidateSets(sets).encode()
                }
                _ => resp,
            }
        }
    }

    let data = data_with_ties(120, 3, 41);
    let (key, _) = SecretKey::generate(&data, 5, &L2, PivotSelection::Random, 42);
    let cfg = MIndexConfig {
        num_pivots: 5,
        max_level: 2,
        bucket_capacity: 16,
        strategy: RoutingStrategy::Distances,
    };
    let server = CloudServer::new(cfg, MemoryStore::new()).unwrap();
    let mut client = EncryptedClient::new(
        key.clone(),
        L2,
        InProcessTransport::new(FailSecond(server)),
        ClientConfig::distances(),
    )
    .with_rng_seed(43);
    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    client.insert_bulk(&objects).unwrap();

    let queries: Vec<Vector> = vec![data[0].clone(), data[10].clone(), data[20].clone()];
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| client.knn_approx(q, 5, 40).unwrap().0)
        .collect();
    let (batched, _) = client.knn_approx_batch(&queries, 5, 40).unwrap();
    assert_eq!(batched.len(), 3);
    assert_eq!(batched[0].as_ref().unwrap(), &sequential[0]);
    match batched[1].as_ref().unwrap_err() {
        ClientError::Server(m) => assert!(m.contains("injected"), "{m}"),
        other => panic!("wrong error kind: {other}"),
    }
    assert_eq!(batched[2].as_ref().unwrap(), &sequential[2]);
}

/// Batched queries against a budgeted server go two-phase per query and
/// still match the fully-inlined eager batch exactly.
#[test]
fn batch_two_phase_equals_eager() {
    let dep = build_with(
        240,
        3,
        6,
        55,
        RoutingStrategy::Distances,
        ServerConfig::budgeted(2_000),
    );
    let full = build(240, 3, 6, 55, RoutingStrategy::Distances);
    let mut lazy = client(
        &dep,
        ClientConfig::distances().with_fetch_batching(2, 8),
        56,
    );
    let mut eager = client(
        &full,
        ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
        57,
    );
    let queries: Vec<Vector> = (0..12).map(|i| dep.data[i * 17].clone()).collect();
    let (lr, lc) = lazy.knn_approx_batch(&queries, 10, 120).unwrap();
    let (er, _) = eager.knn_approx_batch(&queries, 10, 120).unwrap();
    let lr: Vec<_> = lr.into_iter().map(|r| r.unwrap()).collect();
    let er: Vec<_> = er.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(lr, er);
    assert!(
        lc.fetched < lc.candidates,
        "phase 2 must not re-ship the whole batch"
    );
}

/// Coalesced phase 2: a batch's stalled queries share one `FetchObjects`
/// round trip per refinement round, so the batch's `fetch_requests` drops
/// far below the sum of solo runs — while `fetched`/`decrypted` stay
/// exactly the solo sums (the per-query decision sequences are unchanged).
#[test]
fn batch_coalesces_fetch_round_trips() {
    let dep = build_with(
        240,
        3,
        6,
        55,
        RoutingStrategy::Distances,
        // Inline nothing: every query must go through real phase-2 fetches.
        ServerConfig::budgeted(0),
    );
    let queries: Vec<Vector> = (0..12).map(|i| dep.data[i * 17].clone()).collect();
    let cfg = ClientConfig::distances().with_fetch_batching(2, 8);
    let mut batch = client(&dep, cfg.clone(), 56);
    let (br, bc) = batch.knn_approx_batch(&queries, 10, 120).unwrap();
    let mut solo = client(&dep, cfg, 57);
    let mut solo_costs = simcloud_core::CostReport::default();
    let mut sr = Vec::new();
    for q in &queries {
        let (r, c) = solo.knn_approx(q, 10, 120).unwrap();
        sr.push(r);
        solo_costs.merge(&c);
    }
    let br: Vec<_> = br.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(br, sr, "coalescing must not change any answer");
    assert_eq!(bc.fetched, solo_costs.fetched, "same ids fetched");
    assert_eq!(bc.decrypted, solo_costs.decrypted, "same decryption work");
    assert!(
        solo_costs.fetch_requests >= queries.len() as u64,
        "every solo query on a zero-budget server fetches at least once"
    );
    assert!(
        bc.fetch_requests < solo_costs.fetch_requests,
        "batch rounds ({}) must undercut the solo round trips ({})",
        bc.fetch_requests,
        solo_costs.fetch_requests
    );
}
