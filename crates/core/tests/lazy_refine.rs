//! Lazy (decrypt-on-demand) refinement must be **invisible in the answers**:
//! for the distances strategy the early exit is proven sound by the wire
//! lower bounds, so every query — k-NN, batch, range, transformed — returns
//! byte-identical results to eager refinement, including ties at the k-th
//! distance. These tests drive lazy and eager clients against the *same*
//! shared server state and compare exactly.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_core::{
    client_for, ClientConfig, CloudServer, LazyRefine, Neighbor, SecretKey, SharedCloud,
};
use simcloud_metric::{ObjectId, PivotSelection, Vector, L2};
use simcloud_mindex::{MIndexConfig, RoutingStrategy};
use simcloud_storage::MemoryStore;

/// Random data with deliberate duplicates: every fourth point is a copy of
/// an earlier one, so k-th-distance ties are common, exercising the strict
/// early-exit comparison.
fn data_with_ties(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vector> = Vec::with_capacity(n);
    for i in 0..n {
        if i % 4 == 3 {
            let j = rng.gen_range(0..out.len());
            out.push(out[j].clone());
        } else {
            out.push(Vector::new(
                (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect(),
            ));
        }
    }
    out
}

struct Deployment {
    server: Arc<CloudServer<MemoryStore>>,
    key: SecretKey,
    data: Vec<Vector>,
}

fn build(n: usize, dim: usize, pivots: usize, seed: u64, strategy: RoutingStrategy) -> Deployment {
    let data = data_with_ties(n, dim, seed);
    let (key, _) = SecretKey::generate(&data, pivots, &L2, PivotSelection::Random, seed ^ 0xfeed);
    let server = Arc::new(
        CloudServer::new(
            MIndexConfig {
                num_pivots: pivots,
                max_level: 2.min(pivots),
                bucket_capacity: 16,
                strategy,
            },
            MemoryStore::new(),
        )
        .unwrap(),
    );
    let base = match strategy {
        RoutingStrategy::Distances => ClientConfig::distances(),
        RoutingStrategy::Permutation => ClientConfig::permutations(),
    };
    let mut owner = client_for(key.clone(), L2, Arc::clone(&server), base).with_rng_seed(seed ^ 1);
    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    owner.insert_bulk(&objects).unwrap();
    Deployment { server, key, data }
}

fn client(dep: &Deployment, config: ClientConfig, seed: u64) -> SharedCloud<L2, MemoryStore> {
    client_for(dep.key.clone(), L2, Arc::clone(&dep.server), config).with_rng_seed(seed)
}

/// Bit-exact comparison: same ids in the same order, same distance bits.
fn assert_identical(lazy: &[Neighbor], eager: &[Neighbor]) -> Result<(), TestCaseError> {
    prop_assert_eq!(lazy.len(), eager.len());
    for ((li, ld), (ei, ed)) in lazy.iter().zip(eager) {
        prop_assert_eq!(li, ei);
        prop_assert_eq!(ld.to_bits(), ed.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// k-NN: lazy refinement returns byte-identical neighbors to full
    /// refinement across random datasets, k and cand_size — ties included.
    #[test]
    fn lazy_knn_equals_eager_knn(
        seed in 0u64..10_000,
        n in 24usize..160,
        dim in 1usize..5,
        pivots in 2usize..9,
        k in 1usize..24,
        cand_frac in 1usize..5,
    ) {
        let dep = build(n, dim, pivots.min(n), seed, RoutingStrategy::Distances);
        let cand_size = (n * cand_frac / 4).max(1);
        let mut lazy = client(&dep, ClientConfig::distances(), seed ^ 2);
        let mut eager = client(
            &dep,
            ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
            seed ^ 3,
        );
        for qi in [0usize, n / 3, n - 1] {
            let q = &dep.data[qi];
            let (lr, lc) = lazy.knn_approx(q, k, cand_size).unwrap();
            let (er, ec) = eager.knn_approx(q, k, cand_size).unwrap();
            assert_identical(&lr, &er)?;
            prop_assert_eq!(ec.decrypted, ec.candidates);
            prop_assert!(lc.decrypted <= lc.candidates);
        }
    }

    /// Range: the lazy skip (bounds beyond the radius) never loses a result,
    /// including objects at exactly the boundary distance.
    #[test]
    fn lazy_range_equals_eager_range(
        seed in 0u64..10_000,
        n in 24usize..120,
        radius in 0.0f64..6.0,
    ) {
        let dep = build(n, 3, 5, seed, RoutingStrategy::Distances);
        let mut lazy = client(&dep, ClientConfig::distances(), seed ^ 2);
        let mut eager = client(
            &dep,
            ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
            seed ^ 3,
        );
        let q = &dep.data[seed as usize % n];
        let (lr, _) = lazy.range(q, radius).unwrap();
        let (er, _) = eager.range(q, radius).unwrap();
        assert_identical(&lr, &er)?;
    }
}

/// The early exit must actually fire: a member query over a sizable
/// candidate set finds its k neighbors long before the bound-sorted tail.
#[test]
fn early_exit_fires_on_member_queries() {
    let dep = build(400, 4, 8, 77, RoutingStrategy::Distances);
    let mut lazy = client(&dep, ClientConfig::distances(), 78);
    let (res, costs) = lazy.knn_approx(&dep.data[10], 10, 400).unwrap();
    assert_eq!(res.len(), 10);
    assert!(
        costs.decrypted < costs.candidates,
        "no early exit: decrypted {} of {}",
        costs.decrypted,
        costs.candidates
    );
}

/// The level-4 distance transform moves the wire bounds into `T`-space;
/// the client compares through `s_max·d`, so lazy results stay identical.
#[test]
fn lazy_is_exact_under_distance_transform() {
    use simcloud_core::DistanceTransform;
    let dep = build(200, 3, 6, 99, RoutingStrategy::Distances);
    let transform = DistanceTransform::from_seed(5, 40.0, 6);
    let mut lazy = client(
        &dep,
        ClientConfig::distances().with_transform(transform.clone()),
        100,
    );
    let mut eager = client(
        &dep,
        ClientConfig::distances()
            .with_transform(transform)
            .with_lazy_refine(LazyRefine::Off),
        101,
    );
    for qi in [0usize, 50, 199] {
        let q = &dep.data[qi];
        let (lr, _) = lazy.knn_approx(q, 8, 120).unwrap();
        let (er, _) = eager.knn_approx(q, 8, 120).unwrap();
        assert_eq!(lr, er, "transform + lazy diverged on query {qi}");
    }
}

/// Under permutation routing the wire "bound" is a heuristic penalty, so
/// `Sound` must refuse to early-exit (decrypting everything, results equal
/// eager); `Heuristic` may stop early but still returns k valid neighbors.
#[test]
fn permutation_strategy_gates_lazy_mode() {
    let dep = build(160, 3, 6, 123, RoutingStrategy::Permutation);
    let mut sound = client(&dep, ClientConfig::permutations(), 124);
    let mut eager = client(
        &dep,
        ClientConfig::permutations().with_lazy_refine(LazyRefine::Off),
        125,
    );
    let mut heuristic = client(
        &dep,
        ClientConfig::permutations().with_lazy_refine(LazyRefine::Heuristic),
        126,
    );
    let q = &dep.data[7];
    let (sr, sc) = sound.knn_approx(q, 5, 80).unwrap();
    let (er, _) = eager.knn_approx(q, 5, 80).unwrap();
    assert_eq!(sr, er, "Sound must fall back to full refinement");
    assert_eq!(
        sc.decrypted, sc.candidates,
        "no early exit without sound bounds"
    );
    let (hr, hc) = heuristic.knn_approx(q, 5, 80).unwrap();
    assert_eq!(hr.len(), 5);
    assert!(hc.decrypted <= hc.candidates);
}

/// A server that mis-orders the candidate set (here: worst bounds first)
/// may cost the lazy client its early exit but never its answer — the
/// suffix-minimum pre-pass re-establishes soundness for any order.
#[test]
fn missorted_candidates_cost_speed_not_correctness() {
    use simcloud_core::protocol::Response;
    use simcloud_core::EncryptedClient;
    use simcloud_transport::{InProcessTransport, RequestHandler};

    struct Reverser<H>(H);
    impl<H: RequestHandler> RequestHandler for Reverser<H> {
        fn handle(&mut self, request: &[u8]) -> Vec<u8> {
            let resp = self.0.handle(request);
            match Response::decode(&resp) {
                Ok(Response::Candidates(mut cands)) => {
                    cands.reverse();
                    Response::Candidates(cands).encode()
                }
                _ => resp,
            }
        }
    }

    let data = data_with_ties(200, 3, 31);
    let (key, _) = SecretKey::generate(&data, 6, &L2, PivotSelection::Random, 32);
    let cfg = MIndexConfig {
        num_pivots: 6,
        max_level: 2,
        bucket_capacity: 16,
        strategy: RoutingStrategy::Distances,
    };
    let make = |lazy: LazyRefine, seed: u64| {
        let server = CloudServer::new(cfg, MemoryStore::new()).unwrap();
        let transport = InProcessTransport::new(Reverser(server));
        let mut c = EncryptedClient::new(
            key.clone(),
            L2,
            transport,
            ClientConfig::distances().with_lazy_refine(lazy),
        )
        .with_rng_seed(seed);
        let objects: Vec<(ObjectId, Vector)> = data
            .iter()
            .enumerate()
            .map(|(i, v)| (ObjectId(i as u64), v.clone()))
            .collect();
        c.insert_bulk(&objects).unwrap();
        c
    };
    let mut lazy = make(LazyRefine::Sound, 33);
    let mut eager = make(LazyRefine::Off, 34);
    for qi in [0usize, 42, 199] {
        let q = &data[qi];
        let (lr, _) = lazy.knn_approx(q, 7, 100).unwrap();
        let (er, _) = eager.knn_approx(q, 7, 100).unwrap();
        assert_eq!(lr, er, "reversed candidate order changed the answer");
    }
}

/// NaN wire bounds must not defeat the suffix-minimum pre-pass:
/// `f64::min` ignores NaN operands, so without sanitization a malicious
/// server could ship NaN bounds, leave the suffix minima at +∞ and trick
/// the client into skipping true neighbors. Non-finite bounds collapse to
/// 0.0 (forced decryption) instead — answers stay identical to eager.
#[test]
fn nan_bounds_force_decryption_not_wrong_answers() {
    use simcloud_core::protocol::Response;
    use simcloud_core::EncryptedClient;
    use simcloud_transport::{InProcessTransport, RequestHandler};

    struct NanBounds<H>(H);
    impl<H: RequestHandler> RequestHandler for NanBounds<H> {
        fn handle(&mut self, request: &[u8]) -> Vec<u8> {
            let resp = self.0.handle(request);
            match Response::decode(&resp) {
                Ok(Response::Candidates(mut cands)) => {
                    for c in &mut cands {
                        c.lower_bound = f64::NAN;
                    }
                    Response::Candidates(cands).encode()
                }
                _ => resp,
            }
        }
    }

    let data = data_with_ties(120, 3, 71);
    let (key, _) = SecretKey::generate(&data, 5, &L2, PivotSelection::Random, 72);
    let cfg = MIndexConfig {
        num_pivots: 5,
        max_level: 2,
        bucket_capacity: 16,
        strategy: RoutingStrategy::Distances,
    };
    let server = CloudServer::new(cfg, MemoryStore::new()).unwrap();
    let mut lazy = EncryptedClient::new(
        key.clone(),
        L2,
        InProcessTransport::new(NanBounds(server)),
        ClientConfig::distances(),
    )
    .with_rng_seed(73);
    let objects: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    lazy.insert_bulk(&objects).unwrap();

    // Honest deployment for the expected answers.
    let honest = CloudServer::new(cfg, MemoryStore::new()).unwrap();
    let mut eager = EncryptedClient::new(
        key.clone(),
        L2,
        InProcessTransport::new(honest),
        ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
    )
    .with_rng_seed(74);
    eager.insert_bulk(&objects).unwrap();
    for qi in [0usize, 30, 119] {
        let q = &data[qi];
        let (lr, lc) = lazy.knn_approx(q, 6, 60).unwrap();
        let (er, _) = eager.knn_approx(q, 6, 60).unwrap();
        assert_eq!(lr, er, "NaN bounds changed the answer for query {qi}");
        assert_eq!(
            lc.decrypted, lc.candidates,
            "NaN bounds must disable the early exit, not trigger it"
        );
        let (lrange, _) = lazy.range(q, 3.0).unwrap();
        let (erange, _) = eager.range(q, 3.0).unwrap();
        assert_eq!(lrange, erange, "NaN bounds broke the range query {qi}");
    }
}

/// Batch queries refine lazily too, one early exit per query.
#[test]
fn batch_lazy_equals_batch_eager() {
    let dep = build(240, 3, 6, 55, RoutingStrategy::Distances);
    let mut lazy = client(&dep, ClientConfig::distances(), 56);
    let mut eager = client(
        &dep,
        ClientConfig::distances().with_lazy_refine(LazyRefine::Off),
        57,
    );
    let queries: Vec<Vector> = (0..12).map(|i| dep.data[i * 17].clone()).collect();
    let (lr, lc) = lazy.knn_approx_batch(&queries, 10, 120).unwrap();
    let (er, ec) = eager.knn_approx_batch(&queries, 10, 120).unwrap();
    assert_eq!(lr, er);
    assert!(lc.decrypted < ec.decrypted, "batch path must exit early");
    assert_eq!(ec.decrypted, ec.candidates);
}

/// k = 0 is a degenerate but legal request: the lazy path decrypts nothing.
#[test]
fn zero_k_decrypts_nothing() {
    let dep = build(80, 2, 4, 11, RoutingStrategy::Distances);
    let mut lazy = client(&dep, ClientConfig::distances(), 12);
    let (res, costs) = lazy.knn_approx(&dep.data[0], 0, 40).unwrap();
    assert!(res.is_empty());
    assert_eq!(costs.decrypted, 0, "k = 0 needs no decryption at all");
    assert!(costs.candidates > 0);
}
