//! Protocol robustness: the server parses bytes from the network; the
//! client parses bytes from an untrusted server. Neither side may panic on
//! arbitrary input, and encode∘decode must be the identity on valid
//! messages.

use proptest::prelude::*;
use simcloud_core::protocol::{
    Candidate, CandidateHeader, CandidateList, FetchedObject, Request, Response,
};
use simcloud_mindex::{IndexEntry, Routing};

fn arb_routing() -> impl Strategy<Value = Routing> {
    prop_oneof![
        proptest::collection::vec(0.0f64..1000.0, 1..64)
            .prop_map(|ds| Routing::from_distances(&ds)),
        (proptest::collection::vec(0.0f64..1000.0, 1..64), 1usize..8).prop_map(|(ds, l)| {
            let l = l.min(ds.len());
            Routing::permutation_prefix(&ds, l)
        }),
    ]
}

fn arb_entry() -> impl Strategy<Value = IndexEntry> {
    (
        any::<u64>(),
        arb_routing(),
        proptest::collection::vec(any::<u8>(), 0..128),
    )
        .prop_map(|(id, routing, payload)| IndexEntry::new(id, routing, payload))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
    }

    #[test]
    fn response_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn insert_request_round_trips(entries in proptest::collection::vec(arb_entry(), 0..8)) {
        let req = Request::Insert(entries);
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn range_request_round_trips(ds in proptest::collection::vec(-1e6f64..1e6, 0..64),
                                 radius in 0.0f64..1e9) {
        let req = Request::Range { distances: ds, radius };
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn knn_request_round_trips(routing in arb_routing(), cand in any::<u32>()) {
        let req = Request::ApproxKnn { routing, cand_size: cand };
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn candidates_response_round_trips(
        cands in proptest::collection::vec(
            (any::<u64>(), 0.0f64..1e12, proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(id, lower_bound, payload)| Candidate { id, lower_bound, payload }),
            0..16,
        )
    ) {
        let resp = Response::Candidates(cands);
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn fetch_request_round_trips(ids in proptest::collection::vec(any::<u64>(), 0..64)) {
        let req = Request::FetchObjects { ids };
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn candidate_list_response_round_trips(
        headers in proptest::collection::vec(
            (any::<u64>(), 0.0f64..1e12)
                .prop_map(|(id, lower_bound)| CandidateHeader { id, lower_bound }),
            0..24,
        ),
        payload_seed in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 0..24),
    ) {
        // Inline prefix length clamped to the header count (wire invariant).
        let m = payload_seed.len().min(headers.len());
        let list = CandidateList { payloads: payload_seed[..m].to_vec(), headers };
        let resp = Response::CandidateList(list);
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn candidate_sets_response_round_trips(
        slots in proptest::collection::vec(
            prop_oneof![
                (proptest::collection::vec(
                    (any::<u64>(), 0.0f64..1e9)
                        .prop_map(|(id, lower_bound)| CandidateHeader { id, lower_bound }),
                    0..8,
                ), any::<bool>()).prop_map(|(headers, inline)| {
                    let payloads = if inline {
                        headers.iter().map(|h| vec![h.id as u8; 3]).collect()
                    } else {
                        Vec::new()
                    };
                    Ok(CandidateList { headers, payloads })
                }),
                ".{0,80}".prop_map(Err),
            ],
            0..8,
        )
    ) {
        let resp = Response::CandidateSets(slots);
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn objects_response_round_trips(
        objects in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(id, payload)| FetchedObject { id, payload }),
            0..16,
        )
    ) {
        let resp = Response::Objects(objects);
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn error_response_round_trips(msg in ".{0,200}") {
        let resp = Response::Error(msg.clone());
        match Response::decode(&resp.encode()).unwrap() {
            Response::Error(m) => prop_assert_eq!(m, msg),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn batch_knn_request_round_trips(
        queries in proptest::collection::vec(
            (arb_routing(), any::<u32>())
                .prop_map(|(routing, cand_size)| simcloud_core::protocol::KnnQuery {
                    routing,
                    cand_size,
                }),
            0..8,
        )
    ) {
        let req = Request::BatchKnn(queries);
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn inserted_response_round_trips(n in any::<u32>()) {
        let resp = Response::Inserted(n);
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn info_round_trips(entries in any::<u64>(), leaves in any::<u32>(), depth in any::<u32>()) {
        // The Info request carries no fields; the response carries three.
        let req = Request::Info;
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        // ExportAll is field-free too; piggyback on the same case budget.
        let req = Request::ExportAll;
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let resp = Response::Info { entries, leaves, depth };
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn insert_error_response_round_trips(inserted in any::<u32>(), message in ".{0,120}") {
        let resp = Response::InsertError { inserted, message };
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// Ops-surface wire v2: both parameterless requests and the two
    /// response shapes round-trip, and truncations fail cleanly.
    #[test]
    fn health_round_trips(status in any::<u8>(), entries in any::<u64>(),
                          shards in any::<u32>(), uptime_nanos in any::<u64>()) {
        let req = Request::Health;
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let req = Request::MetricsSnapshot;
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let resp = Response::Health {
            status,
            protocol: simcloud_core::protocol::PROTOCOL_VERSION,
            entries,
            shards,
            uptime_nanos,
        };
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        // Any truncation of the fixed-size health body must error, not panic.
        let bytes = Response::Health {
            status, protocol: 2, entries, shards, uptime_nanos,
        }.encode();
        for cut in 1..bytes.len() {
            prop_assert!(Response::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn metrics_snapshot_round_trips(text in ".{0,400}") {
        let resp = Response::MetricsSnapshot(text.clone());
        match Response::decode(&resp.encode()).unwrap() {
            Response::MetricsSnapshot(t) => prop_assert_eq!(t, text),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// A server fed arbitrary bytes must answer (with an error), not panic —
    /// the handler is exposed to the network.
    #[test]
    fn server_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        use simcloud_mindex::{MIndexConfig, RoutingStrategy};
        use simcloud_storage::MemoryStore;
        use simcloud_transport::RequestHandler;
        let mut server = simcloud_core::CloudServer::new(
            MIndexConfig {
                num_pivots: 4,
                max_level: 2,
                bucket_capacity: 8,
                strategy: RoutingStrategy::Distances,
            },
            MemoryStore::new(),
        )
        .unwrap();
        let resp = server.handle(&bytes);
        // The response must itself be decodable.
        prop_assert!(Response::decode(&resp).is_ok());
    }
}
