//! Ops surface over real TCP: `Health` and `MetricsSnapshot` must be
//! answered by **both** server front ends while an insert holds the index
//! write lock — the whole point of serving them from pre-aggregated
//! atomics. A store whose `append` blocks on a condvar pins the write
//! lock mid-insert; probe clients carry a short read timeout so a
//! regression fails as `TimedOut` instead of hanging the suite. Also
//! pins the slow-query log capturing a deliberately slow query with its
//! per-phase breakdown.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_core::protocol::{Request, Response, PROTOCOL_VERSION};
use simcloud_core::{
    client_for, serve_tcp_concurrent, ClientConfig, CloudServer, SecretKey, SLOW_LOG_CAPACITY,
};
use simcloud_metric::{ObjectId, PivotSelection, Vector, L2};
use simcloud_mindex::{IndexEntry, MIndexConfig, Routing, RoutingStrategy};
use simcloud_shard::{serve_tcp_concurrent_sharded, HashRouter, ShardedCloudServer};
use simcloud_storage::{BucketId, BucketStore, IoStats, MemoryStore, Record, StorageError};
use simcloud_transport::{RetryPolicy, TcpClientConfig, TcpTransport, Transport};

/// Condvar gate shared between a blocking store and the test driver.
#[derive(Default)]
struct Gate {
    state: Mutex<GateState>,
    cond: Condvar,
}

#[derive(Default)]
struct GateState {
    armed: bool,
    entered: bool,
    released: bool,
}

impl Gate {
    /// The next `append` will block until [`Gate::release`].
    fn arm(&self) {
        self.state.lock().unwrap().armed = true;
    }

    /// Blocks until an armed `append` is inside the gate (i.e. the index
    /// write lock is held); panics after `timeout` instead of hanging.
    fn await_entered(&self, timeout: Duration) {
        let guard = self.state.lock().unwrap();
        let (guard, wait) = self
            .cond
            .wait_timeout_while(guard, timeout, |s| !s.entered)
            .unwrap();
        assert!(!wait.timed_out(), "insert never reached the store");
        drop(guard);
    }

    fn release(&self) {
        let mut s = self.state.lock().unwrap();
        s.released = true;
        self.cond.notify_all();
    }

    /// Called by the store from inside `append`.
    fn pass(&self) {
        let mut s = self.state.lock().unwrap();
        if !s.armed {
            return;
        }
        s.armed = false;
        s.entered = true;
        self.cond.notify_all();
        let s = self
            .cond
            .wait_timeout_while(s, Duration::from_secs(20), |s| !s.released)
            .unwrap()
            .0;
        drop(s);
    }
}

/// A `MemoryStore` whose `append` can block on a [`Gate`] and whose
/// `read_bucket` can be slowed down — the two knobs these tests need.
struct SlowStore {
    inner: MemoryStore,
    gate: Arc<Gate>,
    read_delay: Duration,
}

impl SlowStore {
    fn gated(gate: Arc<Gate>) -> Self {
        SlowStore {
            inner: MemoryStore::new(),
            gate,
            read_delay: Duration::ZERO,
        }
    }

    fn slow_reads(delay: Duration) -> Self {
        SlowStore {
            inner: MemoryStore::new(),
            gate: Arc::new(Gate::default()),
            read_delay: delay,
        }
    }
}

impl BucketStore for SlowStore {
    fn append(&mut self, bucket: BucketId, record: Record) -> Result<(), StorageError> {
        self.gate.pass();
        self.inner.append(bucket, record)
    }
    fn read_bucket(&self, bucket: BucketId) -> Result<Vec<Record>, StorageError> {
        if self.read_delay > Duration::ZERO {
            std::thread::sleep(self.read_delay);
        }
        self.inner.read_bucket(bucket)
    }
    fn bucket_len(&self, bucket: BucketId) -> usize {
        self.inner.bucket_len(bucket)
    }
    fn delete_bucket(&mut self, bucket: BucketId) -> Result<(), StorageError> {
        self.inner.delete_bucket(bucket)
    }
    fn bucket_ids(&self) -> Vec<BucketId> {
        self.inner.bucket_ids()
    }
    fn total_records(&self) -> u64 {
        self.inner.total_records()
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        self.inner.flush()
    }
    fn stats(&self) -> IoStats {
        self.inner.stats()
    }
    fn backend_name(&self) -> &'static str {
        "slow-memory"
    }
}

fn config(pivots: usize) -> MIndexConfig {
    MIndexConfig {
        num_pivots: pivots,
        max_level: 2,
        bucket_capacity: 8,
        strategy: RoutingStrategy::Distances,
    }
}

fn entry(id: u64, seed: u64) -> IndexEntry {
    let mut rng = StdRng::seed_from_u64(seed ^ id);
    let ds: Vec<f64> = (0..4).map(|_| rng.gen_range(0.1..9.9)).collect();
    IndexEntry::new(id, Routing::from_distances(&ds), vec![id as u8])
}

/// A probe connection that fails fast instead of hanging if the ops
/// surface ever blocks on the index lock.
fn probe(addr: std::net::SocketAddr) -> TcpTransport {
    TcpTransport::connect_with(
        addr,
        TcpClientConfig {
            read_timeout: Some(Duration::from_secs(2)),
            request_deadline: Some(Duration::from_secs(2)),
            retry: RetryPolicy::none(),
            ..TcpClientConfig::default()
        },
    )
    .expect("probe connect")
}

fn health_of(t: &mut TcpTransport) -> (u8, u32, u64, u32) {
    let resp = Response::decode(&t.round_trip(&Request::Health.encode()).expect("health rt"))
        .expect("health decode");
    match resp {
        Response::Health {
            status,
            protocol,
            entries,
            shards,
            ..
        } => (status, protocol, entries, shards),
        other => panic!("expected Health, got {other:?}"),
    }
}

fn metrics_of(t: &mut TcpTransport) -> String {
    let resp = Response::decode(
        &t.round_trip(&Request::MetricsSnapshot.encode())
            .expect("metrics rt"),
    )
    .expect("metrics decode");
    match resp {
        Response::MetricsSnapshot(text) => text,
        other => panic!("expected MetricsSnapshot, got {other:?}"),
    }
}

/// Single server: health + metrics answered over TCP while an insert is
/// blocked inside the store with the index write lock held.
#[test]
fn single_server_answers_ops_requests_during_blocked_insert() {
    let gate = Arc::new(Gate::default());
    let server =
        Arc::new(CloudServer::new(config(4), SlowStore::gated(Arc::clone(&gate))).unwrap());
    // Seed a few entries while the gate is open.
    let seed: Vec<IndexEntry> = (0..10).map(|id| entry(id, 7)).collect();
    match Response::decode(&simcloud_transport::SharedRequestHandler::handle_shared(
        &*server,
        &Request::Insert(seed).encode(),
    ))
    .unwrap()
    {
        Response::Inserted(10) => {}
        other => panic!("seed insert failed: {other:?}"),
    }

    let handle = serve_tcp_concurrent(Arc::clone(&server)).unwrap();
    let addr = handle.addr();

    gate.arm();
    let blocked = std::thread::spawn(move || {
        let mut t = TcpTransport::connect(addr).unwrap();
        Response::decode(
            &t.round_trip(&Request::Insert(vec![entry(99, 7)]).encode())
                .unwrap(),
        )
        .unwrap()
    });
    gate.await_entered(Duration::from_secs(10));

    // The write lock is held by the blocked insert right now.
    let mut t = probe(addr);
    let (status, protocol, entries, shards) = health_of(&mut t);
    assert_eq!(status, 0);
    assert_eq!(protocol, PROTOCOL_VERSION);
    assert_eq!(entries, 10, "blocked insert must not be counted yet");
    assert_eq!(shards, 1);
    let text = metrics_of(&mut t);
    assert!(text.contains("counter server.requests"), "{text}");
    assert!(text.contains("gauge server.entries 10"), "{text}");
    assert!(text.contains("histogram server.request"), "{text}");

    gate.release();
    match blocked.join().unwrap() {
        Response::Inserted(1) => {}
        other => panic!("blocked insert failed: {other:?}"),
    }
    let (_, _, entries, _) = health_of(&mut t);
    assert_eq!(entries, 11, "entries gauge follows the finished insert");
    drop(t);
    handle.shutdown();
}

/// Sharded server: same contract — the scatter-gather front end answers
/// ops requests while one of its shards is stuck mid-insert.
#[test]
fn sharded_server_answers_ops_requests_during_blocked_insert() {
    let gate = Arc::new(Gate::default());
    let stores: Vec<SlowStore> = (0..2)
        .map(|_| SlowStore::gated(Arc::clone(&gate)))
        .collect();
    let server =
        Arc::new(ShardedCloudServer::new(config(4), Box::new(HashRouter), stores).unwrap());
    let seed: Vec<IndexEntry> = (0..12).map(|id| entry(id, 13)).collect();
    match server.process(Request::Insert(seed)) {
        Response::Inserted(12) => {}
        other => panic!("seed insert failed: {other:?}"),
    }

    let handle = serve_tcp_concurrent_sharded(Arc::clone(&server)).unwrap();
    let addr = handle.addr();

    gate.arm();
    let blocked = std::thread::spawn(move || {
        let mut t = TcpTransport::connect(addr).unwrap();
        Response::decode(
            &t.round_trip(&Request::Insert(vec![entry(77, 13)]).encode())
                .unwrap(),
        )
        .unwrap()
    });
    gate.await_entered(Duration::from_secs(10));

    let mut t = probe(addr);
    let (status, protocol, entries, shards) = health_of(&mut t);
    assert_eq!(status, 0);
    assert_eq!(protocol, PROTOCOL_VERSION);
    assert_eq!(entries, 12);
    assert_eq!(shards, 2);
    let text = metrics_of(&mut t);
    assert!(text.contains("counter server.requests"), "{text}");
    assert!(
        text.contains("histogram shard.open"),
        "sharded exposition must carry shard histograms: {text}"
    );

    gate.release();
    match blocked.join().unwrap() {
        Response::Inserted(1) => {}
        other => panic!("blocked insert failed: {other:?}"),
    }
    let (_, _, entries, _) = health_of(&mut t);
    assert_eq!(entries, 13);
    drop(t);
    handle.shutdown();
}

/// Both front ends render the same exposition *shape*: every metric line
/// family the single server emits is present in the sharded server's
/// snapshot too (the sharded one adds only its `shard.*` histograms).
#[test]
fn both_servers_expose_identically_shaped_metrics() {
    let single = CloudServer::new(config(4), MemoryStore::new()).unwrap();
    let sharded = ShardedCloudServer::new(
        config(4),
        Box::new(HashRouter),
        vec![MemoryStore::new(), MemoryStore::new()],
    )
    .unwrap();
    let shape = |text: &str| {
        let mut keys: Vec<String> = text
            .lines()
            .filter_map(|l| {
                let mut parts = l.split_whitespace();
                let kind = parts.next()?;
                let name = parts.next()?;
                (kind != "slow_query" && !name.starts_with("shard."))
                    .then(|| format!("{kind} {name}"))
            })
            .collect();
        keys.sort();
        keys
    };
    assert_eq!(
        shape(&single.telemetry().metrics_text()),
        shape(&sharded.telemetry().metrics_text()),
        "one ServerTelemetry snapshot path must yield one shape"
    );
}

/// A deliberately slow query (10 ms bucket reads) lands in the slow-query
/// log with its per-phase breakdown.
#[test]
fn slow_query_log_captures_a_slow_knn_with_phases() {
    let delay = Duration::from_millis(10);
    let server = Arc::new(CloudServer::new(config(4), SlowStore::slow_reads(delay)).unwrap());
    let mut rng = StdRng::seed_from_u64(31);
    let vectors: Vec<Vector> = (0..24)
        .map(|_| Vector::new((0..3).map(|_| rng.gen_range(-5.0f32..5.0)).collect()))
        .collect();
    let (key, _) = SecretKey::generate(&vectors, 4, &L2, PivotSelection::Random, 5);
    let objects: Vec<(ObjectId, Vector)> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    let mut client = client_for(key, L2, Arc::clone(&server), ClientConfig::distances());
    client.insert_bulk(&objects).unwrap();
    let (res, _) = client.knn_approx(&vectors[3], 3, 12).unwrap();
    assert_eq!(res[0].0, ObjectId(3));

    let slow = server.telemetry().slow_queries();
    assert!(slow.len() <= SLOW_LOG_CAPACITY);
    let knn = slow
        .iter()
        .find(|q| q.label == "knn")
        .expect("knn query must be retained");
    assert!(
        knn.total_nanos >= delay.as_nanos() as u64,
        "total {} ns must include the {delay:?} bucket-read stall",
        knn.total_nanos
    );
    assert!(
        !knn.phases.is_empty(),
        "slow query must carry its phase breakdown"
    );
    for phase in ["decode", "open", "pull", "encode"] {
        assert!(
            knn.phases.iter().any(|(name, _)| *name == phase),
            "phase {phase} missing from {:?}",
            knn.phases
        );
    }
    let stalled = knn
        .phases
        .iter()
        .map(|(_, nanos)| *nanos)
        .max()
        .unwrap_or(0);
    assert!(
        stalled >= delay.as_nanos() as u64,
        "some phase must absorb the stall: {:?}",
        knn.phases
    );

    // The client-side ops helpers see the same data over the wire.
    let health = client.health().unwrap();
    assert_eq!(health.status, 0);
    assert_eq!(health.protocol, PROTOCOL_VERSION);
    assert_eq!(health.entries, 24);
    assert_eq!(health.shards, 1);
    assert!(health.uptime_nanos > 0);
    let text = client.metrics_text().unwrap();
    assert!(text.contains("slow_query rank=1"), "{text}");
    assert!(text.contains("counter search.candidates"), "{text}");
}
