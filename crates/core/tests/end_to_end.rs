//! End-to-end tests of the Encrypted M-Index: the encrypted deployment must
//! return exactly the same answers as the plain M-Index and brute force —
//! encryption may cost time, never correctness (the paper's central claim
//! that the secure variant evaluates "standard range and nearest neighbors
//! queries both in precise and approximate manner").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_core::{in_process, recall, ClientConfig, SecretKey};
use simcloud_metric::{ObjectId, PivotSelection, Vector, L2};
use simcloud_mindex::{MIndexConfig, PlainMIndex, RoutingStrategy};
use simcloud_storage::MemoryStore;

fn random_data(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Vector::new((0..dim).map(|_| rng.gen_range(-8.0..8.0)).collect()))
        .collect()
}

fn config(pivots: usize, strategy: RoutingStrategy) -> MIndexConfig {
    MIndexConfig {
        num_pivots: pivots,
        max_level: 2,
        bucket_capacity: 16,
        strategy,
    }
}

#[test]
fn encrypted_range_equals_brute_force() {
    let data = random_data(300, 4, 1);
    let (key, _) = SecretKey::generate(&data, 8, &L2, PivotSelection::Random, 2);
    let mut cloud = in_process(
        key.clone(),
        L2,
        config(8, RoutingStrategy::Distances),
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .unwrap()
    .with_rng_seed(3);
    let objs: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    for chunk in objs.chunks(100) {
        cloud.insert_bulk(chunk).unwrap();
    }

    // Brute-force oracle on the same data.
    let brute = |q: &Vector, r: f64| {
        let mut res: Vec<(ObjectId, f64)> = data
            .iter()
            .enumerate()
            .map(|(i, v)| {
                (
                    ObjectId(i as u64),
                    simcloud_metric::Metric::distance(&L2, q, v),
                )
            })
            .filter(|(_, d)| *d <= r)
            .collect();
        res.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        res
    };

    for (qi, r) in [(0usize, 3.0), (7, 6.0), (42, 1.0), (100, 0.0)] {
        let q = &data[qi];
        let (got, costs) = cloud.range(q, r).unwrap();
        let want = brute(q, r);
        assert_eq!(got.len(), want.len(), "query {qi} r {r}");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.0, w.0);
            assert!((g.1 - w.1).abs() < 1e-6);
        }
        assert!(costs.bytes_sent > 0 && costs.candidates >= got.len() as u64);
    }
}

#[test]
fn encrypted_knn_matches_plain_mindex_candidates() {
    // Same pivots, same config ⇒ encrypted and plain deployments must
    // produce identical k-NN results for identical candidate budgets.
    let data = random_data(400, 5, 11);
    let (key, _) = SecretKey::generate(&data, 10, &L2, PivotSelection::Random, 12);
    let cfg = config(10, RoutingStrategy::Distances);

    let mut cloud = in_process(
        key.clone(),
        L2,
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .unwrap()
    .with_rng_seed(13);
    let mut plain = PlainMIndex::new(cfg, key.pivots().to_vec(), L2, MemoryStore::new()).unwrap();

    for (i, v) in data.iter().enumerate() {
        plain.insert(ObjectId(i as u64), v).unwrap();
    }
    let objs: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    cloud.insert_bulk(&objs).unwrap();

    for qi in [3usize, 77, 200] {
        let q = &data[qi];
        for cand_size in [30usize, 120, 400] {
            let (enc, _) = cloud.knn_approx(q, 10, cand_size).unwrap();
            let (pl, _) = plain.knn_approx(q, 10, cand_size).unwrap();
            assert_eq!(
                enc.iter().map(|x| x.0).collect::<Vec<_>>(),
                pl.iter().map(|x| x.0).collect::<Vec<_>>(),
                "query {qi} cand {cand_size}"
            );
        }
    }
}

#[test]
fn encrypted_precise_knn_is_exact() {
    let data = random_data(250, 3, 21);
    let (key, _) = SecretKey::generate(&data, 6, &L2, PivotSelection::Random, 22);
    let mut cloud = in_process(
        key,
        L2,
        config(6, RoutingStrategy::Distances),
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .unwrap()
    .with_rng_seed(23);
    let objs: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    cloud.insert_bulk(&objs).unwrap();

    let q = &data[9];
    let (got, _) = cloud.knn_precise(q, 15).unwrap();
    // oracle
    let mut want: Vec<(ObjectId, f64)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| {
            (
                ObjectId(i as u64),
                simcloud_metric::Metric::distance(&L2, q, v),
            )
        })
        .collect();
    want.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    want.truncate(15);
    assert_eq!(got.len(), 15);
    for (g, w) in got.iter().zip(&want) {
        assert!((g.1 - w.1).abs() < 1e-6, "{g:?} vs {w:?}");
    }
}

#[test]
fn permutation_strategy_full_candidates_reach_full_recall() {
    let data = random_data(200, 4, 31);
    let (key, _) = SecretKey::generate(&data, 8, &L2, PivotSelection::Random, 32);
    let mut cloud = in_process(
        key,
        L2,
        config(8, RoutingStrategy::Permutation),
        MemoryStore::new(),
        ClientConfig::permutations(),
    )
    .unwrap()
    .with_rng_seed(33);
    let objs: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    cloud.insert_bulk(&objs).unwrap();

    let q = &data[50];
    let truth: Vec<(ObjectId, f64)> = {
        let mut v: Vec<(ObjectId, f64)> = data
            .iter()
            .enumerate()
            .map(|(i, o)| {
                (
                    ObjectId(i as u64),
                    simcloud_metric::Metric::distance(&L2, q, o),
                )
            })
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        v.truncate(10);
        v
    };
    let (all, _) = cloud.knn_approx(q, 10, 200).unwrap();
    assert!((recall(&all, &truth) - 100.0).abs() < 1e-9);
    let (some, _) = cloud.knn_approx(q, 10, 40).unwrap();
    let r = recall(&some, &truth);
    assert!(r >= 10.0, "partial-candidate recall suspiciously low: {r}");
    // Range queries are impossible under the permutation strategy.
    assert!(cloud.range(q, 1.0).is_err());
}

#[test]
fn transformed_distances_stay_exact_with_larger_candidates() {
    use simcloud_core::DistanceTransform;
    let data = random_data(250, 4, 41);
    let (key, _) = SecretKey::generate(&data, 8, &L2, PivotSelection::Random, 42);
    // d_max estimate for L2 over [-8,8]^4: 32. Use a safe bound.
    let transform = DistanceTransform::from_seed(99, 40.0, 6);
    let cfg = config(8, RoutingStrategy::Distances);

    let mut enc_plainrt = in_process(
        key.clone(),
        L2,
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .unwrap()
    .with_rng_seed(43);
    let mut enc_transformed = in_process(
        key.clone(),
        L2,
        cfg,
        MemoryStore::new(),
        ClientConfig::distances().with_transform(transform),
    )
    .unwrap()
    .with_rng_seed(44);

    let objs: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    enc_plainrt.insert_bulk(&objs).unwrap();
    enc_transformed.insert_bulk(&objs).unwrap();

    for (qi, r) in [(5usize, 4.0), (60, 2.0), (120, 6.0)] {
        let q = &data[qi];
        let (want, base_costs) = enc_plainrt.range(q, r).unwrap();
        let (got, tr_costs) = enc_transformed.range(q, r).unwrap();
        assert_eq!(
            got.iter().map(|x| x.0).collect::<Vec<_>>(),
            want.iter().map(|x| x.0).collect::<Vec<_>>(),
            "transform changed the answer for query {qi}"
        );
        // Level-4 privacy costs candidates, never results.
        assert!(
            tr_costs.candidates >= base_costs.candidates,
            "transform should not shrink candidate sets"
        );
    }
}

#[test]
fn unauthorized_client_gets_garbage() {
    // An attacker with the wrong pivots can send queries, but candidate
    // ranking is meaningless and candidates fail authentication with the
    // wrong cipher key (paper §4.3: only authorized clients can query the
    // server "by meaningful queries").
    let data = random_data(150, 4, 51);
    let (owner_key, _) = SecretKey::generate(&data, 6, &L2, PivotSelection::Random, 52);
    let cfg = config(6, RoutingStrategy::Distances);
    let mut cloud = in_process(
        owner_key.clone(),
        L2,
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .unwrap()
    .with_rng_seed(53);
    let objs: Vec<(ObjectId, Vector)> = data
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    cloud.insert_bulk(&objs).unwrap();

    // Attacker key: same structure, wrong pivots, wrong cipher.
    let attacker_data = random_data(150, 4, 5151);
    let (attacker_key, _) = SecretKey::generate(&attacker_data, 6, &L2, PivotSelection::Random, 54);

    // Rewire: attacker talks to the same server state. We simulate by
    // building a fresh cloud with the owner's data but querying through the
    // attacker's pivots — distances sent are wrong, and unsealing fails.
    let q = &data[0];
    let wrong_ds = attacker_key.pivot_distances(&L2, q);
    assert_ne!(wrong_ds, owner_key.pivot_distances(&L2, q));

    // Direct protocol-level probe: candidates come back sealed; the
    // attacker cannot decrypt them.
    use simcloud_core::protocol::{Request, Response};
    use simcloud_transport::RequestHandler;
    let mut probe = simcloud_core::CloudServer::new(cfg, MemoryStore::new()).unwrap();
    // fill the probe server with owner-sealed entries
    let mut owner_cloud = in_process(
        owner_key.clone(),
        L2,
        cfg,
        MemoryStore::new(),
        ClientConfig::distances(),
    )
    .unwrap()
    .with_rng_seed(55);
    owner_cloud.insert_bulk(&objs).unwrap();
    // copy entries through the protocol (as a compromised-server attacker
    // would see them)
    let all = Request::ApproxKnn {
        routing: simcloud_mindex::Routing::from_distances(&owner_key.pivot_distances(&L2, q)),
        cand_size: 10,
    };
    // run against the owner's in-process server via its handler
    let mut t = owner_cloud;
    let (res, _) = t.knn_approx(q, 5, 10).unwrap();
    assert!(!res.is_empty());
    drop(t);

    let bytes = probe.handle(&all.encode());
    match Response::decode(&bytes).unwrap() {
        Response::CandidateList(list) => {
            assert!(list.headers.is_empty(), "probe server is empty");
        }
        Response::Error(_) => {}
        other => panic!("unexpected {other:?}"),
    }

    // Finally: sealed payloads cannot be opened with the attacker's key.
    let mut rng = StdRng::seed_from_u64(7);
    let sealed = owner_key
        .cipher()
        .seal(b"ms object", owner_key.mode(), &mut rng);
    assert!(attacker_key.cipher().unseal(&sealed).is_err());
}
