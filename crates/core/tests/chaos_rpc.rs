//! Chaos sweep over the full protocol: disconnect the wire at **every
//! socket op** in each direction while a budgeted server forces the
//! two-phase lazy-refinement path (ApproxKnn → FetchObjects), and assert
//! the invariants the fault-tolerant RPC layer promises:
//!
//! * a query with retries enabled returns the **byte-identical** answer of
//!   an undisturbed run, or a typed error — never a hang, never a wrong
//!   answer;
//! * an interrupted bulk insert is **exactly-once** after
//!   [`EncryptedClient::insert_bulk_resume`] — no lost and no duplicated
//!   entries, whichever frame the cut tore;
//! * crypto aborts (key mismatch → `Seal`, tampered phase-2 answers →
//!   `FetchMismatch`) are **terminal**: the transport never retries them.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcloud_core::protocol::{Request, Response};
use simcloud_core::{
    client_for, serve_tcp_concurrent_with, ClientConfig, ClientError, CloudServer, EncryptedClient,
    SecretKey, ServerConfig,
};
use simcloud_metric::{ObjectId, PivotSelection, Vector, L2};
use simcloud_mindex::{MIndexConfig, RoutingStrategy};
use simcloud_storage::MemoryStore;
use simcloud_transport::{
    serve_tcp, Direction, FaultAction, FaultRule, FaultScript, RetryPolicy, ServeOptions,
    SharedRequestHandler, TcpClientConfig, TcpTransport, Transport,
};

const PIVOTS: usize = 4;
const N: usize = 30;

fn index_config() -> MIndexConfig {
    MIndexConfig {
        num_pivots: PIVOTS,
        max_level: 2,
        bucket_capacity: 8,
        strategy: RoutingStrategy::Distances,
    }
}

fn dataset(seed: u64) -> (SecretKey, Vec<(ObjectId, Vector)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let vectors: Vec<Vector> = (0..N)
        .map(|_| Vector::new((0..3).map(|_| rng.gen_range(-4.0f32..4.0)).collect()))
        .collect();
    let (key, _) = SecretKey::generate(&vectors, PIVOTS, &L2, PivotSelection::Random, seed ^ 0xaa);
    let objects = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (ObjectId(i as u64), v.clone()))
        .collect();
    (key, objects)
}

/// A loaded, byte-budget-0 server: every candidate payload must come back
/// through an explicit phase-2 [`Request::FetchObjects`], so each query is
/// a genuine multi-frame conversation for the sweep to tear.
fn loaded_server(key: &SecretKey, objects: &[(ObjectId, Vector)]) -> Arc<CloudServer<MemoryStore>> {
    let server = Arc::new(
        CloudServer::with_config(
            index_config(),
            ServerConfig::budgeted(0),
            MemoryStore::new(),
        )
        .unwrap(),
    );
    let mut owner = client_for(
        key.clone(),
        L2,
        Arc::clone(&server),
        ClientConfig::distances(),
    )
    .with_rng_seed(1);
    owner.insert_bulk(objects).unwrap();
    server
}

/// Server options that free torn-frame workers quickly, so the sweep's
/// dozens of cut connections never pile up or slow shutdown.
fn quick_serve_options() -> ServeOptions {
    ServeOptions {
        read_timeout: Some(Duration::from_millis(200)),
        drain_timeout: Duration::from_secs(2),
        ..ServeOptions::default()
    }
}

/// Client config with generous retries and a hard per-request deadline:
/// the no-hang guarantee under test.
fn chaos_client_config() -> TcpClientConfig {
    TcpClientConfig {
        read_timeout: Some(Duration::from_millis(500)),
        request_deadline: Some(Duration::from_secs(10)),
        retry: RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 0xc0de,
        },
        ..TcpClientConfig::default()
    }
}

fn faulty_client(
    key: &SecretKey,
    addr: std::net::SocketAddr,
    script: Arc<FaultScript>,
) -> EncryptedClient<L2, TcpTransport> {
    let transport = TcpTransport::connect_faulty(addr, chaos_client_config(), script).unwrap();
    EncryptedClient::new(key.clone(), L2, transport, ClientConfig::distances())
}

/// Tentpole sweep: cut the connection at every socket op of a two-phase
/// k-NN query, in both directions. With retries enabled the answer must be
/// byte-identical to the undisturbed run, within the deadline, every time.
#[test]
fn knn_answers_survive_a_cut_at_every_frame() {
    let (key, objects) = dataset(11);
    let server = loaded_server(&key, &objects);
    let handle = serve_tcp_concurrent_with(Arc::clone(&server), quick_serve_options()).unwrap();
    let q = &objects[3].1;

    // Baseline run through a quiet script: the expected answer plus the op
    // count of the whole conversation, which bounds the sweep.
    let quiet = FaultScript::quiet();
    let mut baseline = faulty_client(&key, handle.addr(), Arc::clone(&quiet));
    let (expected, costs) = baseline.knn_approx(q, 5, 12).unwrap();
    assert!(
        costs.fetch_requests >= 1,
        "budget-0 server must force phase-2 fetches, got {} fetch requests",
        costs.fetch_requests
    );
    drop(baseline);

    for dir in [Direction::Send, Direction::Recv] {
        let ops = quiet.ops(dir);
        assert!(ops >= 2, "baseline must have counted {dir:?} ops");
        for at in 0..ops {
            let script = FaultScript::new(vec![FaultRule::once(dir, at, FaultAction::Cut)]);
            let mut client = faulty_client(&key, handle.addr(), Arc::clone(&script));
            let start = Instant::now();
            let (got, _) = client.knn_approx(q, 5, 12).unwrap_or_else(|e| {
                panic!("cut at {dir:?} op {at}: query failed after retries: {e}")
            });
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "cut at {dir:?} op {at} must stay inside the deadline"
            );
            assert_eq!(got, expected, "cut at {dir:?} op {at} changed the answer");
            assert_eq!(script.injected(), 1, "the cut at {dir:?} op {at} must fire");
        }
    }
    handle.shutdown();
}

/// Same sweep, precise range query: the other full two-phase conversation.
#[test]
fn range_answers_survive_cuts() {
    let (key, objects) = dataset(13);
    let server = loaded_server(&key, &objects);
    let handle = serve_tcp_concurrent_with(Arc::clone(&server), quick_serve_options()).unwrap();
    let q = &objects[7].1;

    let quiet = FaultScript::quiet();
    let mut baseline = faulty_client(&key, handle.addr(), Arc::clone(&quiet));
    let (expected, _) = baseline.range(q, 3.0).unwrap();
    assert!(!expected.is_empty(), "pick a radius with matches");
    drop(baseline);

    for dir in [Direction::Send, Direction::Recv] {
        for at in 0..quiet.ops(dir) {
            let script = FaultScript::new(vec![FaultRule::once(dir, at, FaultAction::Cut)]);
            let mut client = faulty_client(&key, handle.addr(), Arc::clone(&script));
            let (got, _) = client.range(q, 3.0).unwrap_or_else(|e| {
                panic!("cut at {dir:?} op {at}: range failed after retries: {e}")
            });
            assert_eq!(got, expected, "cut at {dir:?} op {at} changed the answer");
        }
    }
    handle.shutdown();
}

/// A transient stall longer than the read timeout: the retry hides it; a
/// short one passes through with zero retries.
#[test]
fn delays_are_retried_only_when_they_breach_the_read_timeout() {
    let (key, objects) = dataset(17);
    let server = loaded_server(&key, &objects);
    let handle = serve_tcp_concurrent_with(Arc::clone(&server), quick_serve_options()).unwrap();
    let q = &objects[0].1;

    let mut baseline = faulty_client(&key, handle.addr(), FaultScript::quiet());
    let (expected, _) = baseline.knn_approx(q, 4, 10).unwrap();
    drop(baseline);

    // 800 ms stall on the first response read, against a 500 ms read
    // timeout: attempt 1 times out, attempt 2 succeeds.
    let long = FaultScript::new(vec![FaultRule::once(
        Direction::Recv,
        0,
        FaultAction::Delay(Duration::from_millis(800)),
    )]);
    let mut client = faulty_client(&key, handle.addr(), Arc::clone(&long));
    let (got, _) = client.knn_approx(q, 4, 10).unwrap();
    assert_eq!(got, expected);
    assert!(client.transport().stats().retries >= 1, "stall must retry");
    drop(client);

    // 50 ms stall: tolerated, no retry.
    let short = FaultScript::new(vec![FaultRule::once(
        Direction::Recv,
        0,
        FaultAction::Delay(Duration::from_millis(50)),
    )]);
    let mut client = faulty_client(&key, handle.addr(), short);
    let (got, _) = client.knn_approx(q, 4, 10).unwrap();
    assert_eq!(got, expected);
    assert_eq!(client.transport().stats().retries, 0);
    drop(client);
    handle.shutdown();
}

/// Exactly-once ingest: cut the wire at each op of the insert exchange.
/// The failure must surface as the resumable [`ClientError::InsertInterrupted`]
/// (never a silent retry — the transport refuses to replay inserts), and
/// [`EncryptedClient::insert_bulk_resume`] must land the server on exactly
/// `N` entries: none lost, none duplicated.
#[test]
fn interrupted_inserts_are_exactly_once_after_resume() {
    let (key, objects) = dataset(19);
    for dir in [Direction::Send, Direction::Recv] {
        for at in 0..2u64 {
            // Fresh empty server per cut point: the sweep measures ingest.
            let server = Arc::new(
                CloudServer::with_config(
                    index_config(),
                    ServerConfig::budgeted(0),
                    MemoryStore::new(),
                )
                .unwrap(),
            );
            let handle =
                serve_tcp_concurrent_with(Arc::clone(&server), quick_serve_options()).unwrap();
            let script = FaultScript::new(vec![FaultRule::once(dir, at, FaultAction::Cut)]);
            let mut client = faulty_client(&key, handle.addr(), Arc::clone(&script));

            match client.insert_bulk(&objects) {
                Ok(_) => {
                    // The cut landed outside the insert exchange (e.g. a
                    // later op index than the exchange used) — fine.
                }
                Err(ClientError::InsertInterrupted { acked, .. }) => {
                    assert_eq!(acked, 0, "single-frame bulk never acks a prefix");
                    assert_eq!(
                        client.transport().stats().retries,
                        0,
                        "inserts must never be blindly retried (cut at {dir:?} op {at})"
                    );
                    // Resume until clean; every probe is idempotent.
                    let mut resumed = None;
                    for _ in 0..4 {
                        match client.insert_bulk_resume(&objects) {
                            Ok(r) => {
                                resumed = Some(r);
                                break;
                            }
                            Err(ClientError::InsertInterrupted { .. }) => continue,
                            Err(e) => panic!("resume failed (cut at {dir:?} op {at}): {e}"),
                        }
                    }
                    let (stored_prefix, _) =
                        resumed.unwrap_or_else(|| panic!("resume never converged at {dir:?} {at}"));
                    assert!(stored_prefix <= objects.len());
                }
                Err(e) => panic!("expected InsertInterrupted at {dir:?} op {at}, got {e}"),
            }

            assert_eq!(
                server.index().len(),
                objects.len() as u64,
                "cut at {dir:?} op {at}: entries lost or duplicated"
            );
            // Every id answers a fetch — nothing double-inserted under a
            // different routing, nothing missing.
            let mut check = faulty_client(&key, handle.addr(), FaultScript::quiet());
            let (neighbors, _) = check.knn_approx(&objects[0].1, 3, 8).unwrap();
            assert_eq!(neighbors[0].0, objects[0].0);
            drop(check);
            drop(client);
            handle.shutdown();
        }
    }
}

/// A key mismatch makes every candidate fail authentication. That is a
/// crypto abort, not a network fault: the client must surface `Seal`
/// without the transport ever retrying.
#[test]
fn seal_aborts_are_never_retried() {
    let (key, objects) = dataset(23);
    let server = loaded_server(&key, &objects);
    let handle = serve_tcp_concurrent_with(Arc::clone(&server), quick_serve_options()).unwrap();

    // A *different* key over the same vectors: routing stays well-formed
    // (same pivot count), but every unseal fails its MAC.
    let vectors: Vec<Vector> = objects.iter().map(|(_, v)| v.clone()).collect();
    let (wrong_key, _) = SecretKey::generate(&vectors, PIVOTS, &L2, PivotSelection::Random, 999);
    let mut intruder = faulty_client(&wrong_key, handle.addr(), FaultScript::quiet());
    match intruder.knn_approx(&objects[0].1, 3, 8) {
        Err(ClientError::Seal(_)) => {}
        other => panic!("expected Seal abort, got {other:?}"),
    }
    assert_eq!(
        intruder.transport().stats().retries,
        0,
        "a crypto abort must never be retried"
    );
    drop(intruder);
    handle.shutdown();
}

/// A server that reorders phase-2 fetch answers is indistinguishable from
/// an attack: the client aborts with `FetchMismatch`, terminally — the
/// transport saw only well-formed frames, so it has nothing to retry.
#[test]
fn tampered_fetch_answers_abort_without_retry() {
    let (key, objects) = dataset(29);
    let server = loaded_server(&key, &objects);

    // Wrap the real server in a tampering handler: any FetchObjects answer
    // with at least two payloads comes back with the first two swapped.
    let inner = Arc::clone(&server);
    let tamper = move |req: &[u8]| -> Vec<u8> {
        let resp_bytes = inner.handle_shared(req);
        if let Ok(Request::FetchObjects { .. }) = Request::decode(req) {
            if let Ok(Response::Objects(mut objs)) = Response::decode(&resp_bytes) {
                if objs.len() >= 2 {
                    objs.swap(0, 1);
                    return Response::Objects(objs).encode();
                }
            }
        }
        resp_bytes
    };
    let handle = serve_tcp(tamper).unwrap();

    let mut client = faulty_client(&key, handle.addr(), FaultScript::quiet());
    match client.knn_approx(&objects[0].1, 5, 12) {
        Err(ClientError::FetchMismatch(_)) => {}
        other => panic!("expected FetchMismatch abort, got {other:?}"),
    }
    assert_eq!(
        client.transport().stats().retries,
        0,
        "a tampering server must not trigger transport retries"
    );
    drop(client);
    handle.shutdown();
}
