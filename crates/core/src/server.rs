//! The similarity-cloud server: an M-Index that never sees plaintext.
//!
//! [`CloudServer`] implements [`RequestHandler`] over the byte protocol, so
//! it can be deployed behind any transport (in-process for measurements,
//! TCP for the real client/server setup, cf. paper §4.4). It holds the
//! M-Index over a bucket store and the per-query search statistics; it holds
//! **no key material** — compromising it yields sealed payloads and routing
//! information only (§4.3).

use simcloud_mindex::{
    IndexEntry, MIndex, MIndexConfig, MIndexError, PromiseEvaluator, Routing, SearchStats,
};
use simcloud_storage::BucketStore;
use simcloud_transport::RequestHandler;

use crate::protocol::{Candidate, Request, Response};

/// Server half of the Encrypted M-Index.
pub struct CloudServer<S: BucketStore> {
    index: MIndex<S>,
    last_search_stats: SearchStats,
    total_search_stats: SearchStats,
}

impl<S: BucketStore> CloudServer<S> {
    /// Creates a server with the given index configuration and store.
    pub fn new(config: MIndexConfig, store: S) -> Result<Self, MIndexError> {
        Ok(Self {
            index: MIndex::new(config, store)?,
            last_search_stats: SearchStats::default(),
            total_search_stats: SearchStats::default(),
        })
    }

    /// The underlying index (shape and storage inspection).
    pub fn index(&self) -> &MIndex<S> {
        &self.index
    }

    /// Statistics of the most recent search request.
    pub fn last_search_stats(&self) -> SearchStats {
        self.last_search_stats
    }

    /// Accumulated statistics over all search requests.
    pub fn total_search_stats(&self) -> SearchStats {
        self.total_search_stats
    }

    fn candidates_response(
        &mut self,
        result: Result<(Vec<IndexEntry>, SearchStats), MIndexError>,
    ) -> Response {
        match result {
            Ok((entries, stats)) => {
                self.last_search_stats = stats;
                self.total_search_stats.merge(&stats);
                Response::Candidates(
                    entries
                        .into_iter()
                        .map(|e| Candidate {
                            id: e.id,
                            payload: e.payload,
                        })
                        .collect(),
                )
            }
            Err(e) => Response::Error(e.to_string()),
        }
    }

    /// Processes one decoded request (the typed core of the handler).
    pub fn process(&mut self, request: Request) -> Response {
        match request {
            Request::Insert(entries) => {
                let mut n = 0u32;
                for e in entries {
                    match self.index.insert(e) {
                        Ok(()) => n += 1,
                        Err(e) => return Response::Error(e.to_string()),
                    }
                }
                Response::Inserted(n)
            }
            Request::Range { distances, radius } => {
                let qd: Vec<f64> = distances.iter().map(|&d| d as f64).collect();
                let result = self.index.range_candidates(&qd, radius);
                self.candidates_response(result)
            }
            Request::ApproxKnn { routing, cand_size } => {
                let evaluator = match routing {
                    Routing::Distances(ds) => {
                        PromiseEvaluator::from_distances(ds.iter().map(|&d| d as f64).collect())
                    }
                    Routing::Permutation(p) => PromiseEvaluator::from_permutation(p),
                };
                let result = self.index.knn_candidates(&evaluator, cand_size as usize);
                self.candidates_response(result)
            }
            Request::Info => {
                let shape = self.index.shape();
                Response::Info {
                    entries: self.index.len(),
                    leaves: shape.leaves as u32,
                    depth: shape.max_depth as u32,
                }
            }
            Request::ExportAll => match self.index.all_entries() {
                Ok(entries) => Response::Candidates(
                    entries
                        .into_iter()
                        .map(|e| Candidate {
                            id: e.id,
                            payload: e.payload,
                        })
                        .collect(),
                ),
                Err(e) => Response::Error(e.to_string()),
            },
        }
    }
}

impl<S: BucketStore> RequestHandler for CloudServer<S> {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        let response = match Request::decode(request) {
            Ok(req) => self.process(req),
            Err(e) => Response::Error(e.to_string()),
        };
        response.encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud_mindex::RoutingStrategy;
    use simcloud_storage::MemoryStore;

    fn server() -> CloudServer<MemoryStore> {
        CloudServer::new(
            MIndexConfig {
                num_pivots: 3,
                max_level: 2,
                bucket_capacity: 4,
                strategy: RoutingStrategy::Distances,
            },
            MemoryStore::new(),
        )
        .unwrap()
    }

    fn entry(id: u64, ds: &[f64]) -> IndexEntry {
        IndexEntry::new(id, Routing::from_distances(ds), vec![id as u8; 3])
    }

    #[test]
    fn insert_then_info() {
        let mut s = server();
        let resp = s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.9, 0.1, 0.5]),
        ]));
        assert_eq!(resp, Response::Inserted(2));
        match s.process(Request::Info) {
            Response::Info {
                entries, leaves, ..
            } => {
                assert_eq!(entries, 2);
                assert_eq!(leaves, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn range_returns_candidates() {
        let mut s = server();
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.12, 0.52, 0.88]),
            entry(3, &[0.9, 0.1, 0.2]),
        ]));
        let resp = s.process(Request::Range {
            distances: vec![0.11, 0.51, 0.89],
            radius: 0.05,
        });
        match resp {
            Response::Candidates(c) => {
                let ids: Vec<u64> = c.iter().map(|x| x.id).collect();
                assert!(ids.contains(&1) && ids.contains(&2));
                assert!(!ids.contains(&3), "far object filtered: {ids:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.last_search_stats().entries_scanned >= 2);
    }

    #[test]
    fn knn_via_bytes_round_trip() {
        let mut s = server();
        s.handle(
            &Request::Insert(vec![
                entry(1, &[0.1, 0.5, 0.9]),
                entry(2, &[0.2, 0.6, 0.8]),
                entry(3, &[0.9, 0.1, 0.2]),
            ])
            .encode(),
        );
        let resp_bytes = s.handle(
            &Request::ApproxKnn {
                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                cand_size: 2,
            }
            .encode(),
        );
        match Response::decode(&resp_bytes).unwrap() {
            Response::Candidates(c) => {
                assert_eq!(c.len(), 2);
                assert_eq!(c[0].id, 1, "query matches object 1's distances exactly");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_request_yields_error_response() {
        let mut s = server();
        let resp = Response::decode(&s.handle(&[0xFF, 0x00])).unwrap();
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn wrong_strategy_yields_error_response() {
        let mut s = server();
        let resp = s.process(Request::ApproxKnn {
            routing: Routing::permutation_prefix(&[0.3, 0.2, 0.1], 2),
            cand_size: 5,
        });
        // Permutation queries are fine against a distances index — the
        // evaluator just ranks cells by permutation. But inserts must match:
        let bad_insert = s.process(Request::Insert(vec![IndexEntry::new(
            9,
            Routing::permutation_prefix(&[0.1, 0.2, 0.3], 2),
            vec![],
        )]));
        assert!(matches!(bad_insert, Response::Error(_)));
        // and the knn above returned an empty candidate set, not an error
        assert!(matches!(resp, Response::Candidates(_)));
    }

    #[test]
    fn stats_accumulate_across_queries() {
        let mut s = server();
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6, 0.8]),
        ]));
        for _ in 0..3 {
            s.process(Request::ApproxKnn {
                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                cand_size: 2,
            });
        }
        assert_eq!(s.total_search_stats().candidates, 6);
        assert_eq!(s.last_search_stats().candidates, 2);
    }
}
