//! The similarity-cloud server: an M-Index that never sees plaintext.
//!
//! [`CloudServer`] implements both handler traits of the transport layer:
//! the classic `&mut self` [`RequestHandler`] and the *shared-read*
//! [`SharedRequestHandler`], so one `Arc<CloudServer>` can answer any
//! number of concurrent client connections (paper §4.4 serves independent
//! clients). Internally the index sits behind a reader–writer lock —
//! searches take shared read access and run in parallel, inserts take the
//! write lock — and all statistics live in atomics/locks so the whole
//! request path needs only `&self`. The server holds **no key material** —
//! compromising it yields sealed payloads and routing information only
//! (§4.3).

use parking_lot::{RwLock, RwLockReadGuard};
use simcloud_mindex::{
    CandidateCursor, IndexEntry, MIndex, MIndexConfig, MIndexError, PromiseEvaluator, Routing,
    SearchStats, FIRST_CELL_ONLY,
};
use simcloud_storage::BucketStore;
use simcloud_telemetry::Trace;
use simcloud_transport::{RequestHandler, SharedRequestHandler};

use crate::protocol::{
    Candidate, CandidateHeader, CandidateList, FetchedObject, Request, Response,
    MAX_CANDIDATE_HEADERS,
};
use crate::telemetry::{request_label, ServerTelemetry};

/// Server-side configuration beyond the index shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Byte budget for **one phase-1 candidate list**. Headers (16 bytes
    /// per candidate) **always** ship — they are the answer — and sealed
    /// payloads are inlined in bound order while the encoded list stays
    /// within the budget, saving the client a [`Request::FetchObjects`]
    /// round trip for the candidates it is most likely to decrypt. `None`
    /// inlines every payload (the eager pre-two-phase wire behavior).
    ///
    /// The budget is **per candidate list**, not per response: a
    /// [`Request::BatchKnn`] answer contains one list per query, so its
    /// total size scales with the batch. The accounting mirrors the
    /// single-response framing and is a few bytes approximate inside a
    /// batch slot — it is an inlining dial, not a hard frame-size cap.
    pub max_inline_response_bytes: Option<usize>,
}

impl Default for ServerConfig {
    /// Inline everything: existing single-phase deployments keep their
    /// exact wire behavior unless a budget is configured.
    fn default() -> Self {
        Self {
            max_inline_response_bytes: None,
        }
    }
}

impl ServerConfig {
    /// A budgeted configuration (two-phase responses beyond `bytes`).
    pub fn budgeted(bytes: usize) -> Self {
        Self {
            max_inline_response_bytes: Some(bytes),
        }
    }
}

/// Server half of the Encrypted M-Index.
pub struct CloudServer<S: BucketStore> {
    index: RwLock<MIndex<S>>,
    config: ServerConfig,
    telemetry: ServerTelemetry,
}

impl<S: BucketStore> std::fmt::Debug for CloudServer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudServer").finish_non_exhaustive()
    }
}

impl<S: BucketStore> CloudServer<S> {
    /// Creates a server with the given index configuration and store, and
    /// the default [`ServerConfig`] (no inline budget).
    pub fn new(config: MIndexConfig, store: S) -> Result<Self, MIndexError> {
        Self::with_config(config, ServerConfig::default(), store)
    }

    /// Creates a server with an explicit [`ServerConfig`].
    pub fn with_config(
        config: MIndexConfig,
        server_config: ServerConfig,
        store: S,
    ) -> Result<Self, MIndexError> {
        Ok(Self {
            index: RwLock::new(MIndex::new(config, store)?),
            config: server_config,
            telemetry: ServerTelemetry::new(),
        })
    }

    /// Creates a server over a store that already holds records (e.g. a
    /// crash-recovered [`DiskStore`]), rebuilding the in-memory cell tree
    /// from the stored entries via [`MIndex::rebuild`].
    ///
    /// [`DiskStore`]: https://docs.rs/simcloud-storage
    pub fn rebuilt(config: MIndexConfig, store: S) -> Result<Self, MIndexError> {
        let index = MIndex::rebuild(config, store)?;
        let telemetry = ServerTelemetry::new();
        // Seed the ops-surface gauge: Health answers from this atomic,
        // never from the index lock.
        telemetry.set_entries(index.len());
        Ok(Self {
            index: RwLock::new(index),
            config: ServerConfig::default(),
            telemetry,
        })
    }

    /// The server configuration.
    pub fn server_config(&self) -> ServerConfig {
        self.config
    }

    /// Read access to the underlying index (shape and storage inspection).
    /// Holds the shared lock for the guard's lifetime — keep it short.
    pub fn index(&self) -> RwLockReadGuard<'_, MIndex<S>> {
        self.index.read()
    }

    /// Commits the store to durable storage (see [`MIndex::flush`]).
    /// Takes the index write lock, so in-flight queries drain first.
    pub fn flush(&self) -> Result<(), MIndexError> {
        self.index.write().flush()
    }

    /// Statistics of the most recent search request. Zeroed when the most
    /// recent search *failed*, so cost accounting never attributes a
    /// previous query's work to a failed request.
    pub fn last_search_stats(&self) -> SearchStats {
        self.telemetry.last_search_stats()
    }

    /// Accumulated statistics over all search requests (lock-free atomic
    /// counters; exact once in-flight queries finish).
    pub fn total_search_stats(&self) -> SearchStats {
        self.telemetry.total_search_stats()
    }

    /// The server's telemetry: registry, phase histograms, slow-query
    /// log, the enabled switch and the [`Request::Health`] /
    /// [`Request::MetricsSnapshot`] answer path.
    pub fn telemetry(&self) -> &ServerTelemetry {
        &self.telemetry
    }

    /// Stages a ranked candidate set for the phase-1 wire (see
    /// [`stage_candidates`]) under this server's inline budget.
    fn stage(&self, entries: Vec<(IndexEntry, f64)>) -> CandidateList {
        stage_candidates(entries, self.config.max_inline_response_bytes)
    }

    fn candidates_response(
        &self,
        result: Result<(Vec<(IndexEntry, f64)>, SearchStats), MIndexError>,
        trace: &mut Trace,
    ) -> Response {
        match result {
            Ok((entries, stats)) => {
                self.telemetry.record_search(stats);
                let list = {
                    let _stage = trace.span("stage", self.telemetry.stage_hist());
                    self.stage(entries)
                };
                Response::CandidateList(list)
            }
            Err(e) => {
                // A failed search did no accountable work: zero the
                // per-request stats instead of leaving the previous
                // query's numbers in place.
                self.telemetry.record_failed_search();
                Response::Error(e.to_string())
            }
        }
    }

    /// Processes one decoded request (the typed core of the handler).
    /// Needs only `&self`: searches share the index read lock, inserts
    /// briefly take the write lock. Wraps [`CloudServer::process_traced`]
    /// in its own request trace, so direct callers (in-process
    /// transports, tests) feed the same histograms as the byte handler.
    pub fn process(&self, request: Request) -> Response {
        let mut trace = self.telemetry.trace_labeled(request_label(&request));
        let response = self.process_traced(request, &mut trace);
        self.telemetry.note_response(&response);
        self.telemetry.finish(trace);
        response
    }

    /// [`CloudServer::process`] with the caller's request trace: each
    /// lifecycle phase (route → open → pull → stage, or insert) is timed
    /// into its histogram and the trace's phase breakdown.
    fn process_traced(&self, request: Request, trace: &mut Trace) -> Response {
        match request {
            Request::Insert(entries) => {
                let n_entries;
                let response = {
                    let _insert = trace.span("insert", self.telemetry.insert_hist());
                    let mut index = self.index.write();
                    let mut n = 0u32;
                    let mut failure = None;
                    for e in entries {
                        match index.insert(e) {
                            Ok(()) => n += 1,
                            // Bulk inserts are not atomic: the already-
                            // inserted prefix stays, so the error must
                            // carry the count.
                            Err(e) => {
                                failure = Some(e.to_string());
                                break;
                            }
                        }
                    }
                    n_entries = u64::from(n);
                    match failure {
                        Some(message) => Response::InsertError {
                            inserted: n,
                            message,
                        },
                        None => Response::Inserted(n),
                    }
                };
                // The ops surface answers `entries` from this gauge, so
                // Health never waits on the write lock above.
                self.telemetry.add_entries(n_entries);
                response
            }
            Request::Range { distances, radius } => {
                let cursor = {
                    let _open = trace.span("open", self.telemetry.open_hist());
                    self.index.read().range_cursor(&distances, radius)
                };
                let result = match cursor {
                    Ok(cursor) => {
                        // Guard released: the pull decodes payloads from
                        // the cursor's own staged records, lock-free.
                        let _pull = trace.span("pull", self.telemetry.pull_hist());
                        cursor.collect_up_to(None)
                    }
                    Err(e) => Err(e),
                };
                self.candidates_response(result, trace)
            }
            Request::ApproxKnn { routing, cand_size } => match check_cand_size(cand_size) {
                // An oversized request is refused before any index work:
                // its answer could never be decoded by the requester. A
                // refused search did no accountable work, so the
                // per-request stats are zeroed like any failed search.
                Err(msg) => {
                    self.telemetry.record_failed_search();
                    Response::Error(msg)
                }
                Ok(()) => {
                    let evaluator = {
                        let _route = trace.span("route", self.telemetry.route_hist());
                        evaluator_for(routing)
                    };
                    let cand_size = cand_size as usize;
                    // Same cap rule as `MIndex::knn_candidates`:
                    // `FIRST_CELL_ONLY` drains the whole first cell.
                    let cap = if cand_size == FIRST_CELL_ONLY {
                        None
                    } else {
                        Some(cand_size)
                    };
                    let cursor = {
                        let _open = trace.span("open", self.telemetry.open_hist());
                        self.index.read().knn_cursor(&evaluator, cand_size)
                    };
                    let result = match cursor {
                        Ok(cursor) => {
                            let _pull = trace.span("pull", self.telemetry.pull_hist());
                            cursor.collect_up_to(cap)
                        }
                        Err(e) => Err(e),
                    };
                    self.candidates_response(result, trace)
                }
            },
            Request::BatchKnn(queries) => {
                // One read-lock acquisition opens every query's cursor;
                // queries from other connections still interleave freely.
                // Cursors own their staged records, so the guard is
                // released before any payload is decoded and before
                // staging touches the storage layer (lock discipline: no
                // guard across stage_candidates, no pull under a guard).
                // Oversized queries are refused up front and never reach
                // the index — their slots carry the clamp error.
                let opened: Vec<Result<(CandidateCursor, Option<usize>), String>> = {
                    let _open = trace.span("open", self.telemetry.open_hist());
                    let index = self.index.read();
                    queries
                        .into_iter()
                        .map(|q| {
                            check_cand_size(q.cand_size)?;
                            let evaluator = evaluator_for(q.routing);
                            let cand_size = q.cand_size as usize;
                            // Same cap rule as `MIndex::knn_candidates`:
                            // `FIRST_CELL_ONLY` drains the whole first cell.
                            let cap = if cand_size == FIRST_CELL_ONLY {
                                None
                            } else {
                                Some(cand_size)
                            };
                            index
                                .knn_cursor(&evaluator, cand_size)
                                .map(|cursor| (cursor, cap))
                                .map_err(|e| e.to_string())
                        })
                        .collect()
                };
                let mut sets = Vec::with_capacity(opened.len());
                let mut batch_stats = SearchStats::default();
                for result in opened {
                    let collected = {
                        let _pull = trace.span("pull", self.telemetry.pull_hist());
                        result.and_then(|(cursor, cap)| {
                            cursor.collect_up_to(cap).map_err(|e| e.to_string())
                        })
                    };
                    match collected {
                        Ok((entries, stats)) => {
                            batch_stats.merge(&stats);
                            let list = {
                                let _stage = trace.span("stage", self.telemetry.stage_hist());
                                self.stage(entries)
                            };
                            sets.push(Ok(list));
                        }
                        // A failing query answers in its own slot; its
                        // siblings' candidate sets still ship. The failed
                        // query did no accountable work, so the batch stats
                        // are exactly the successful queries' sum.
                        Err(e) => sets.push(Err(e)),
                    }
                }
                self.telemetry.record_search(batch_stats);
                Response::CandidateSets(sets)
            }
            Request::FetchObjects { ids } => {
                // Phase 2 of the two-phase fetch: stateless re-read by id
                // through the same shared read lock as searches — nothing
                // was pinned when phase 1 answered, so any number of
                // interleaved fetches from concurrent connections are safe.
                // Not a search: the search stats are left untouched.
                match self.index.read().fetch_entries(&ids) {
                    Ok(entries) => {
                        let mut objects = Vec::with_capacity(ids.len());
                        for (id, entry) in ids.iter().zip(entries) {
                            match entry {
                                Some(e) => objects.push(FetchedObject {
                                    id: *id,
                                    payload: e.payload,
                                }),
                                None => return Response::Error(format!("unknown object id {id}")),
                            }
                        }
                        Response::Objects(objects)
                    }
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::Info => {
                let index = self.index.read();
                let shape = index.shape();
                Response::Info {
                    entries: index.len(),
                    leaves: u32::try_from(shape.leaves).unwrap_or(u32::MAX),
                    depth: u32::try_from(shape.max_depth).unwrap_or(u32::MAX),
                }
            }
            Request::ExportAll => match self.index.read().all_entries() {
                // An export has no query, hence no bounds: every candidate
                // ships a trivial lower bound of zero ("could be anywhere").
                Ok(entries) => {
                    Response::Candidates(entries.into_iter().map(|e| candidate((e, 0.0))).collect())
                }
                Err(e) => Response::Error(e.to_string()),
            },
            // The ops surface: both answers come from ServerTelemetry's
            // atomics and side locks — never `self.index` — so they stay
            // fast while an insert holds the index write lock (the
            // integration test pins this by probing mid-insert).
            Request::Health => self.telemetry.health_response(1),
            Request::MetricsSnapshot => Response::MetricsSnapshot(self.telemetry.metrics_text()),
        }
    }
}

/// Stages a ranked candidate set for the phase-1 wire: **every** header
/// ships (they are the ranked answer), and sealed payloads are inlined in
/// bound order while the encoded response stays within `budget` — the
/// client decrypts in exactly that order, so the inlined prefix is the
/// part it is most likely to need. Payload inlining stops at the first
/// candidate that would overflow the budget (the wire carries a positional
/// prefix, not a best-fit subset); `None` inlines everything.
///
/// Public because every server front end — [`CloudServer`] and the sharded
/// scatter-gather server — must stage identically for the wire to be
/// byte-compatible between deployments.
pub fn stage_candidates(entries: Vec<(IndexEntry, f64)>, budget: Option<usize>) -> CandidateList {
    // Encoded list size so far: tag + header count + 16 per header +
    // payload count; each inline payload adds 4 + len.
    let mut used = 1 + 4 + 16 * entries.len() + 4;
    let mut headers = Vec::with_capacity(entries.len());
    let mut payloads = Vec::new();
    let mut inlining = true;
    for (e, lower_bound) in entries {
        headers.push(CandidateHeader {
            id: e.id,
            lower_bound,
        });
        if inlining {
            match budget {
                Some(b) if used + 4 + e.payload.len() > b => inlining = false,
                _ => {
                    used += 4 + e.payload.len();
                    payloads.push(e.payload);
                }
            }
        }
    }
    CandidateList { headers, payloads }
}

fn candidate((e, lower_bound): (IndexEntry, f64)) -> Candidate {
    Candidate {
        id: e.id,
        lower_bound,
        payload: e.payload,
    }
}

/// Refuses a `cand_size` whose phase-1 header list could not fit the
/// protocol's decode cap even with zero payloads inlined — the requester
/// itself could never decode the answer, so the server rejects the
/// request up front ([`Response::Error`]) instead of doing the search
/// work and shipping an undecodable frame. Shared by every server front
/// end so single and sharded deployments clamp identically.
pub fn check_cand_size(cand_size: u32) -> Result<(), String> {
    if cand_size as usize > MAX_CANDIDATE_HEADERS {
        Err(format!(
            "cand_size {cand_size} exceeds the {MAX_CANDIDATE_HEADERS}-header response cap"
        ))
    } else {
        Ok(())
    }
}

/// Builds the promise evaluator a k-NN request's routing implies — shared
/// by every server front end so sharded and single deployments rank cells
/// identically.
pub fn evaluator_for(routing: Routing) -> PromiseEvaluator {
    match routing {
        Routing::Distances(ds) => {
            PromiseEvaluator::from_distances(ds.iter().map(|&d| d as f64).collect())
        }
        Routing::Permutation(p) => PromiseEvaluator::from_permutation(p),
    }
}

impl<S: BucketStore> SharedRequestHandler for CloudServer<S> {
    fn handle_shared(&self, request: &[u8]) -> Vec<u8> {
        let mut trace = self.telemetry.trace();
        let decoded = {
            let _decode = trace.span("decode", self.telemetry.decode_hist());
            Request::decode(request)
        };
        let response = match decoded {
            Ok(req) => {
                trace.set_label(request_label(&req));
                self.process_traced(req, &mut trace)
            }
            Err(e) => {
                trace.set_label("undecodable");
                Response::Error(e.to_string())
            }
        };
        self.telemetry.note_response(&response);
        let bytes = {
            let _encode = trace.span("encode", self.telemetry.encode_hist());
            response.encode()
        };
        self.telemetry.finish(trace);
        bytes
    }
}

/// `&mut self` adapter so existing single-threaded call sites (in-process
/// transports, tests) keep working unchanged.
impl<S: BucketStore> RequestHandler for CloudServer<S> {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self.handle_shared(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::KnnQuery;
    use simcloud_mindex::RoutingStrategy;
    use simcloud_storage::MemoryStore;

    fn server() -> CloudServer<MemoryStore> {
        CloudServer::new(
            MIndexConfig {
                num_pivots: 3,
                max_level: 2,
                bucket_capacity: 4,
                strategy: RoutingStrategy::Distances,
            },
            MemoryStore::new(),
        )
        .unwrap()
    }

    fn entry(id: u64, ds: &[f64]) -> IndexEntry {
        IndexEntry::new(id, Routing::from_distances(ds), vec![id as u8; 3])
    }

    #[test]
    fn insert_then_info() {
        let s = server();
        let resp = s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.9, 0.1, 0.5]),
        ]));
        assert_eq!(resp, Response::Inserted(2));
        match s.process(Request::Info) {
            Response::Info {
                entries, leaves, ..
            } => {
                assert_eq!(entries, 2);
                assert_eq!(leaves, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn range_returns_candidates() {
        let s = server();
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.12, 0.52, 0.88]),
            entry(3, &[0.9, 0.1, 0.2]),
        ]));
        let resp = s.process(Request::Range {
            distances: vec![0.11, 0.51, 0.89],
            radius: 0.05,
        });
        match resp {
            Response::CandidateList(list) => {
                let ids: Vec<u64> = list.headers.iter().map(|h| h.id).collect();
                assert!(ids.contains(&1) && ids.contains(&2));
                assert!(!ids.contains(&3), "far object filtered: {ids:?}");
                assert_eq!(
                    list.payloads.len(),
                    list.headers.len(),
                    "no budget: everything inlined"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.last_search_stats().entries_scanned >= 2);
    }

    #[test]
    fn knn_via_bytes_round_trip() {
        let mut s = server();
        s.handle(
            &Request::Insert(vec![
                entry(1, &[0.1, 0.5, 0.9]),
                entry(2, &[0.2, 0.6, 0.8]),
                entry(3, &[0.9, 0.1, 0.2]),
            ])
            .encode(),
        );
        let resp_bytes = s.handle(
            &Request::ApproxKnn {
                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                cand_size: 2,
            }
            .encode(),
        );
        match Response::decode(&resp_bytes).unwrap() {
            Response::CandidateList(list) => {
                assert_eq!(list.headers.len(), 2);
                assert_eq!(
                    list.headers[0].id, 1,
                    "query matches object 1's distances exactly"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_request_yields_error_response() {
        let mut s = server();
        let resp = Response::decode(&s.handle(&[0xFF, 0x00])).unwrap();
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn wrong_strategy_yields_error_response() {
        let s = server();
        let resp = s.process(Request::ApproxKnn {
            routing: Routing::permutation_prefix(&[0.3, 0.2, 0.1], 2),
            cand_size: 5,
        });
        // Permutation queries are fine against a distances index — the
        // evaluator just ranks cells by permutation. But inserts must match:
        let bad_insert = s.process(Request::Insert(vec![IndexEntry::new(
            9,
            Routing::permutation_prefix(&[0.1, 0.2, 0.3], 2),
            vec![],
        )]));
        assert!(matches!(bad_insert, Response::InsertError { .. }));
        // and the knn above returned an empty candidate set, not an error
        assert!(matches!(resp, Response::CandidateList(_)));
    }

    /// Candidate sets leave the server sorted by their wire lower bound
    /// with the bounds attached — the contract the lazy client exits on.
    #[test]
    fn knn_response_carries_ascending_lower_bounds() {
        let s = server();
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.4, 0.6, 0.7]),
            entry(3, &[0.9, 0.1, 0.2]),
            entry(4, &[0.11, 0.52, 0.9]),
        ]));
        let resp = s.process(Request::ApproxKnn {
            routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
            cand_size: 4,
        });
        match resp {
            Response::CandidateList(list) => {
                let h = &list.headers;
                assert_eq!(h.len(), 4);
                assert!(
                    h.windows(2).all(|w| w[0].lower_bound <= w[1].lower_bound),
                    "bounds not ascending: {:?}",
                    h.iter().map(|x| x.lower_bound).collect::<Vec<_>>()
                );
                assert!(h[0].lower_bound < h[3].lower_bound, "bounds all equal");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stats_accumulate_across_queries() {
        let s = server();
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6, 0.8]),
        ]));
        for _ in 0..3 {
            s.process(Request::ApproxKnn {
                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                cand_size: 2,
            });
        }
        assert_eq!(s.total_search_stats().candidates, 6);
        assert_eq!(s.last_search_stats().candidates, 2);
    }

    #[test]
    fn partial_insert_reports_stored_prefix() {
        let s = server();
        // Second entry has a dimension mismatch: the first one stays.
        let resp = s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6]),
            entry(3, &[0.9, 0.1, 0.2]),
        ]));
        match resp {
            Response::InsertError { inserted, message } => {
                assert_eq!(inserted, 1, "exactly the prefix before the bad entry");
                assert!(message.contains("pivot distances"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        match s.process(Request::Info) {
            Response::Info { entries, .. } => assert_eq!(entries, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failed_search_zeroes_last_stats() {
        let s = server();
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6, 0.8]),
        ]));
        let ok = s.process(Request::Range {
            distances: vec![0.1, 0.5, 0.9],
            radius: 1.0,
        });
        assert!(matches!(ok, Response::CandidateList(_)));
        let before_total = s.total_search_stats();
        assert!(s.last_search_stats().entries_scanned > 0);
        // Dimension mismatch: the search fails before doing any work.
        let bad = s.process(Request::Range {
            distances: vec![0.1],
            radius: 1.0,
        });
        assert!(matches!(bad, Response::Error(_)));
        assert_eq!(
            s.last_search_stats(),
            SearchStats::default(),
            "stale stats must not be attributed to the failed request"
        );
        assert_eq!(
            s.total_search_stats(),
            before_total,
            "failed searches add nothing to the totals"
        );
    }

    #[test]
    fn batch_knn_returns_one_set_per_query_in_order() {
        let s = server();
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6, 0.8]),
            entry(3, &[0.9, 0.1, 0.2]),
        ]));
        let resp = s.process(Request::BatchKnn(vec![
            KnnQuery {
                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                cand_size: 1,
            },
            KnnQuery {
                routing: Routing::from_distances(&[0.9, 0.1, 0.2]),
                cand_size: 2,
            },
        ]));
        match resp {
            Response::CandidateSets(sets) => {
                assert_eq!(sets.len(), 2);
                assert_eq!(sets[0].as_ref().unwrap().headers[0].id, 1);
                assert_eq!(sets[1].as_ref().unwrap().headers[0].id, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The batch counts as one search request in the per-request stats
        // and its full volume lands in the totals.
        assert_eq!(s.last_search_stats().candidates, 3);
        assert_eq!(s.total_search_stats().candidates, 3);
    }

    /// A budgeted server ships every header but only the payload prefix
    /// that fits; an unlimited server inlines everything.
    #[test]
    fn inline_budget_bounds_payload_prefix() {
        let s = CloudServer::with_config(
            MIndexConfig {
                num_pivots: 3,
                max_level: 2,
                bucket_capacity: 4,
                strategy: RoutingStrategy::Distances,
            },
            // Fixed budget: headers (4 × 16 + 9 framing) + two 3-byte
            // payloads (4 + 3 each) fit; the third does not.
            ServerConfig::budgeted(1 + 4 + 16 * 4 + 4 + 2 * (4 + 3)),
            MemoryStore::new(),
        )
        .unwrap();
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.11, 0.51, 0.89]),
            entry(3, &[0.4, 0.6, 0.7]),
            entry(4, &[0.9, 0.1, 0.2]),
        ]));
        let resp = s.process(Request::ApproxKnn {
            routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
            cand_size: 4,
        });
        match resp {
            Response::CandidateList(list) => {
                assert_eq!(list.headers.len(), 4, "headers always ship in full");
                assert_eq!(list.payloads.len(), 2, "payload prefix capped by budget");
                // The response encoding itself respects the budget.
                assert!(
                    Response::CandidateList(list).encode().len()
                        <= s.server_config().max_inline_response_bytes.unwrap()
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A budget too small for any payload still ships all headers.
    #[test]
    fn tiny_budget_ships_headers_only() {
        let s = CloudServer::with_config(
            MIndexConfig {
                num_pivots: 3,
                max_level: 2,
                bucket_capacity: 4,
                strategy: RoutingStrategy::Distances,
            },
            ServerConfig::budgeted(0),
            MemoryStore::new(),
        )
        .unwrap();
        s.process(Request::Insert(vec![entry(1, &[0.1, 0.5, 0.9])]));
        match s.process(Request::ApproxKnn {
            routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
            cand_size: 1,
        }) {
            Response::CandidateList(list) => {
                assert_eq!(list.headers.len(), 1);
                assert!(list.payloads.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Phase 2: fetches return payloads by id in request order, error on
    /// unknown ids, and work through `&self` (stateless between phases).
    #[test]
    fn fetch_objects_by_id() {
        let s = server();
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6, 0.8]),
            entry(3, &[0.9, 0.1, 0.2]),
        ]));
        match s.process(Request::FetchObjects { ids: vec![3, 1] }) {
            Response::Objects(objs) => {
                assert_eq!(objs.len(), 2);
                assert_eq!(objs[0].id, 3);
                assert_eq!(objs[0].payload, vec![3u8; 3]);
                assert_eq!(objs[1].id, 1);
                assert_eq!(objs[1].payload, vec![1u8; 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match s.process(Request::FetchObjects { ids: vec![1, 99] }) {
            Response::Error(msg) => assert!(msg.contains("99"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        // Fetches are not searches: per-request search stats untouched.
        assert_eq!(s.last_search_stats(), SearchStats::default());
    }

    /// One failing query in a batch answers in its own slot; its siblings'
    /// candidate sets still ship, and the batch stats cover exactly the
    /// successful queries.
    #[test]
    fn batch_query_failure_is_isolated_to_its_slot() {
        let s = server();
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6, 0.8]),
        ]));
        let resp = s.process(Request::BatchKnn(vec![
            KnnQuery {
                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                cand_size: 2,
            },
            KnnQuery {
                // Dimension mismatch: this query fails on its own.
                routing: Routing::from_distances(&[0.1, 0.5]),
                cand_size: 2,
            },
            KnnQuery {
                routing: Routing::from_distances(&[0.2, 0.6, 0.8]),
                cand_size: 1,
            },
        ]));
        match resp {
            Response::CandidateSets(sets) => {
                assert_eq!(sets.len(), 3);
                assert_eq!(sets[0].as_ref().unwrap().headers.len(), 2);
                let msg = sets[1].as_ref().unwrap_err();
                assert!(msg.contains("pivot distances"), "{msg}");
                assert_eq!(sets[2].as_ref().unwrap().headers.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.last_search_stats().candidates,
            3,
            "stats cover the successful queries only"
        );
        assert_eq!(s.total_search_stats().candidates, 3);
    }

    /// A `cand_size` whose headers alone would bust the 64 MiB decode cap
    /// is refused before any search work — solo requests get an error
    /// response (with zeroed per-request stats), batch slots carry the
    /// clamp error while their siblings still answer.
    #[test]
    fn oversized_cand_size_refused_before_search() {
        let s = server();
        s.process(Request::Insert(vec![entry(1, &[0.1, 0.5, 0.9])]));
        s.process(Request::ApproxKnn {
            routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
            cand_size: 1,
        });
        assert_eq!(s.last_search_stats().candidates, 1);
        let before_total = s.total_search_stats();
        let over = u32::try_from(MAX_CANDIDATE_HEADERS + 1).unwrap();
        match s.process(Request::ApproxKnn {
            routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
            cand_size: over,
        }) {
            Response::Error(msg) => assert!(msg.contains("header response cap"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.last_search_stats(), SearchStats::default());
        assert_eq!(s.total_search_stats(), before_total);
        match s.process(Request::BatchKnn(vec![
            KnnQuery {
                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                cand_size: over,
            },
            KnnQuery {
                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                cand_size: 1,
            },
        ])) {
            Response::CandidateSets(sets) => {
                assert_eq!(sets.len(), 2);
                let msg = sets[0].as_ref().unwrap_err();
                assert!(msg.contains("header response cap"), "{msg}");
                assert_eq!(sets[1].as_ref().unwrap().headers.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.last_search_stats().candidates, 1, "successes only");
    }

    #[test]
    fn shared_handle_serves_reads_from_many_threads() {
        let s = std::sync::Arc::new(server());
        s.process(Request::Insert(vec![
            entry(1, &[0.1, 0.5, 0.9]),
            entry(2, &[0.2, 0.6, 0.8]),
        ]));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..10 {
                        let bytes = s.handle_shared(
                            &Request::ApproxKnn {
                                routing: Routing::from_distances(&[0.1, 0.5, 0.9]),
                                cand_size: 2,
                            }
                            .encode(),
                        );
                        match Response::decode(&bytes).unwrap() {
                            Response::CandidateList(list) => assert_eq!(list.headers.len(), 2),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                });
            }
        });
        assert_eq!(s.total_search_stats().candidates, 4 * 10 * 2);
    }
}
