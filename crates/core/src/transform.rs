//! Keyed monotone distance transformation — the paper's future-work
//! extension for level-4 privacy (§2.3 fourth level, §6):
//!
//! > "we would like to study various types of distance transformations
//! > (i.e. transform the distances to pivots stored on the server for
//! > precise strategies); such transformation could better hide information
//! > about the data set distribution"
//!
//! ## Construction
//!
//! A piecewise-linear, strictly increasing map `T: [0, d_max] → [0, ∞)`
//! whose breakpoints and slopes are derived from a secret seed. The client
//! applies `T` to every distance it ships (insert routing and query
//! distances); the server stores and compares only transformed values.
//!
//! ## Why the server stays correct
//!
//! * `T` is strictly increasing ⇒ pivot permutations are unchanged ⇒ cell
//!   routing and promise ordering are identical.
//! * For pruning, slopes are bounded: `s_min ≤ T'(x) ≤ s_max`, so
//!   `|T(x) − T(y)| ≤ s_max · |x − y|`. The client ships the scaled radius
//!   `τ = s_max · r`; every server-side test (`hyperplane`, `range-pivot`,
//!   object pivot filtering) that was safe with `(d, r)` stays safe with
//!   `(T(d), τ)` because any true result has `|T(d_q) − T(d_o)| ≤ s_max ·
//!   |d_q − d_o| ≤ τ`.
//! * The cost is pruning power: the effective radius inflates by the ratio
//!   `s_max / s_min`, enlarging candidate sets. The `transform` ablation
//!   bench quantifies exactly this privacy/efficiency trade.
//!
//! ## What it hides
//!
//! Distance *values* and the shape of the distance distribution (the
//! histogram of `T(d)` can be made near-uniform); what it cannot hide is
//! the *ordering* information the index needs to function.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A keyed, strictly increasing piecewise-linear transformation.
#[derive(Debug, Clone)]
pub struct DistanceTransform {
    /// Segment breakpoints in the input domain, ascending, starting at 0.
    breaks: Vec<f64>,
    /// Output value at each breakpoint (prefix sums of segment rises).
    values: Vec<f64>,
    /// Per-segment slopes.
    slopes: Vec<f64>,
    s_min: f64,
    s_max: f64,
}

impl DistanceTransform {
    /// Derives a transform from a secret seed. `d_max` bounds the distances
    /// the metric produces on the data (larger inputs extrapolate with the
    /// last slope); `segments` controls how irregular the map is.
    pub fn from_seed(seed: u64, d_max: f64, segments: usize) -> Self {
        assert!(d_max > 0.0, "d_max must be positive");
        assert!(segments >= 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7261_6e73_666f_726d);
        let mut breaks = Vec::with_capacity(segments + 1);
        breaks.push(0.0);
        let mut cuts: Vec<f64> = (0..segments - 1)
            .map(|_| rng.gen_range(0.05..0.95) * d_max)
            .collect();
        cuts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        breaks.extend(cuts);
        breaks.push(d_max);
        // Slopes drawn from [0.5, 2.0]: s_max/s_min ≤ 4 bounds candidate
        // inflation while varying the shape substantially.
        let slopes: Vec<f64> = (0..breaks.len() - 1)
            .map(|_| rng.gen_range(0.5..2.0))
            .collect();
        let mut values = Vec::with_capacity(breaks.len());
        values.push(0.0);
        for i in 0..slopes.len() {
            let rise = slopes[i] * (breaks[i + 1] - breaks[i]);
            let prev = *values.last().unwrap();
            values.push(prev + rise);
        }
        let s_min = slopes.iter().cloned().fold(f64::INFINITY, f64::min);
        let s_max = slopes.iter().cloned().fold(0.0f64, f64::max);
        Self {
            breaks,
            values,
            slopes,
            s_min,
            s_max,
        }
    }

    /// Applies the transform to one distance.
    pub fn apply(&self, d: f64) -> f64 {
        assert!(d >= 0.0, "distances are non-negative");
        // binary search for the segment
        let seg = match self.breaks.binary_search_by(|b| b.partial_cmp(&d).unwrap()) {
            Ok(i) => i.min(self.slopes.len() - 1),
            Err(0) => 0,
            Err(i) => (i - 1).min(self.slopes.len() - 1),
        };
        self.values[seg] + self.slopes[seg] * (d - self.breaks[seg])
    }

    /// Applies the transform to a distance vector.
    pub fn apply_all(&self, ds: &[f64]) -> Vec<f64> {
        ds.iter().map(|&d| self.apply(d)).collect()
    }

    /// The radius to ship to the server so that all its pruning rules stay
    /// safe: `τ = s_max · r`.
    pub fn server_radius(&self, r: f64) -> f64 {
        self.s_max * r
    }

    /// Upper bound of the pruning-power loss: `s_max / s_min`.
    pub fn inflation_bound(&self) -> f64 {
        self.s_max / self.s_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud_metric::permutation_from_distances;

    #[test]
    fn transform_is_strictly_increasing() {
        let t = DistanceTransform::from_seed(42, 100.0, 8);
        let mut prev = -1.0;
        for i in 0..=1000 {
            let x = i as f64 * 0.1;
            let y = t.apply(x);
            assert!(y > prev, "not increasing at {x}: {y} <= {prev}");
            prev = y;
        }
        assert_eq!(t.apply(0.0), 0.0);
    }

    #[test]
    fn transform_extrapolates_beyond_dmax() {
        let t = DistanceTransform::from_seed(7, 10.0, 4);
        assert!(t.apply(20.0) > t.apply(10.0));
    }

    #[test]
    fn permutations_are_preserved() {
        let t = DistanceTransform::from_seed(9, 50.0, 6);
        let ds = vec![3.0, 17.5, 0.2, 44.0, 9.9, 9.8];
        let before = permutation_from_distances(&ds);
        let after = permutation_from_distances(&t.apply_all(&ds));
        assert_eq!(before, after);
    }

    #[test]
    fn lipschitz_bound_holds() {
        let t = DistanceTransform::from_seed(3, 20.0, 10);
        for (x, y) in [(0.0, 5.0), (1.0, 19.0), (7.3, 7.4), (15.0, 20.0)] {
            let lhs = (t.apply(x) - t.apply(y)).abs();
            let rhs = t.server_radius((x - y).abs());
            assert!(lhs <= rhs + 1e-9, "|T({x})-T({y})| = {lhs} exceeds {rhs}");
        }
    }

    #[test]
    fn pruning_safety_inequality() {
        // For any pair within radius r (|dq - do| <= r), transformed values
        // must be within the server radius tau.
        let t = DistanceTransform::from_seed(11, 10.0, 5);
        let r = 0.7;
        let tau = t.server_radius(r);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let dq: f64 = rng.gen_range(0.0..10.0);
            let off: f64 = rng.gen_range(-r..r);
            let do_ = (dq + off).clamp(0.0, 10.0);
            let diff = (t.apply(dq) - t.apply(do_)).abs();
            assert!(
                diff <= tau + 1e-9,
                "|T({dq})-T({do_})| = {diff} > tau = {tau}"
            );
        }
    }

    #[test]
    fn same_seed_same_transform_different_seed_different() {
        let a = DistanceTransform::from_seed(1, 10.0, 4);
        let b = DistanceTransform::from_seed(1, 10.0, 4);
        let c = DistanceTransform::from_seed(2, 10.0, 4);
        assert_eq!(a.apply(3.3), b.apply(3.3));
        assert_ne!(a.apply(3.3), c.apply(3.3));
    }

    #[test]
    fn inflation_bound_is_bounded_by_design() {
        for seed in 0..20 {
            let t = DistanceTransform::from_seed(seed, 10.0, 6);
            assert!(t.inflation_bound() <= 4.0 + 1e-9);
            assert!(t.inflation_bound() >= 1.0);
        }
    }
}
