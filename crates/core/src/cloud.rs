//! Deployment helpers: wire a client to a server in one call.
//!
//! Reproduces the two deployments of the paper's prototype (§4.4): both
//! processes on one machine. [`in_process`] keeps the server in the caller's
//! process with a modelled network (deterministic measurements);
//! [`over_tcp`] runs the server on a real TCP loopback socket in its own
//! thread, like the original MESSIF prototype.
//!
//! The *concurrent* serving mode shares one `Arc<CloudServer>` among any
//! number of clients: [`client_for`] wires additional in-process clients
//! (each thread gets its own), [`serve_tcp_concurrent`] accepts TCP
//! connections without serializing requests, and [`connect_tcp`] attaches
//! further authorized clients to a running server.

use std::sync::Arc;

use simcloud_metric::{Metric, Vector};
use simcloud_mindex::{MIndexConfig, MIndexError};
use simcloud_storage::BucketStore;
use simcloud_transport::{
    serve_tcp, serve_tcp_shared, serve_tcp_shared_with, InProcessTransport, NetworkModel,
    ServeOptions, Shared, TcpClientConfig, TcpTransport,
};

use crate::client::{ClientConfig, EncryptedClient};
use crate::key::SecretKey;
use crate::server::CloudServer;

/// In-process similarity cloud: client + embedded server over a modelled
/// network.
pub type InProcessCloud<M, S> = EncryptedClient<M, InProcessTransport<CloudServer<S>>>;

/// Builds an in-process deployment with the default loopback model.
pub fn in_process<M, S>(
    key: SecretKey,
    metric: M,
    index_config: MIndexConfig,
    store: S,
    client_config: ClientConfig,
) -> Result<InProcessCloud<M, S>, MIndexError>
where
    M: Metric<Vector>,
    S: BucketStore,
{
    in_process_with_model(
        key,
        metric,
        index_config,
        store,
        client_config,
        NetworkModel::loopback(),
    )
}

/// Builds an in-process deployment with an explicit network model (the WAN
/// ablation uses this).
pub fn in_process_with_model<M, S>(
    key: SecretKey,
    metric: M,
    index_config: MIndexConfig,
    store: S,
    client_config: ClientConfig,
    model: NetworkModel,
) -> Result<InProcessCloud<M, S>, MIndexError>
where
    M: Metric<Vector>,
    S: BucketStore,
{
    let server = CloudServer::new(index_config, store)?;
    let transport = InProcessTransport::with_model(server, model);
    Ok(EncryptedClient::new(key, metric, transport, client_config))
}

/// Re-attaches an in-process deployment to a store that already holds
/// sealed records — the restart / crash-recovery path. The server rebuilds
/// its cell tree from the stored entries ([`CloudServer::rebuilt`]); the
/// client must present the same [`SecretKey`] that sealed them, or every
/// later decryption fails authentication.
pub fn in_process_rebuilt<M, S>(
    key: SecretKey,
    metric: M,
    index_config: MIndexConfig,
    store: S,
    client_config: ClientConfig,
) -> Result<InProcessCloud<M, S>, MIndexError>
where
    M: Metric<Vector>,
    S: BucketStore,
{
    let server = CloudServer::rebuilt(index_config, store)?;
    let transport = InProcessTransport::with_model(server, NetworkModel::loopback());
    Ok(EncryptedClient::new(key, metric, transport, client_config))
}

/// A client sharing an `Arc`'d in-process server with other clients
/// (typically one such client per query thread).
pub type SharedCloud<M, S> = EncryptedClient<M, InProcessTransport<Shared<Arc<CloudServer<S>>>>>;

/// Wires an in-process client to an *existing shared* server with the
/// default loopback model. Every thread of a concurrent workload builds its
/// own client this way; queries hit the server's `&self` path in parallel.
pub fn client_for<M, S>(
    key: SecretKey,
    metric: M,
    server: Arc<CloudServer<S>>,
    client_config: ClientConfig,
) -> SharedCloud<M, S>
where
    M: Metric<Vector>,
    S: BucketStore,
{
    client_for_with_model(key, metric, server, client_config, NetworkModel::loopback())
}

/// [`client_for`] with an explicit network model.
pub fn client_for_with_model<M, S>(
    key: SecretKey,
    metric: M,
    server: Arc<CloudServer<S>>,
    client_config: ClientConfig,
    model: NetworkModel,
) -> SharedCloud<M, S>
where
    M: Metric<Vector>,
    S: BucketStore,
{
    let transport = InProcessTransport::with_model(Shared(server), model);
    EncryptedClient::new(key, metric, transport, client_config)
}

/// Concurrent TCP serving mode: accepts any number of connections against
/// one shared server, processing requests from different connections in
/// parallel (no handler lock — searches share the index read lock, inserts
/// take the write lock). The caller keeps its `Arc` for inspection; attach
/// clients with [`connect_tcp`].
pub fn serve_tcp_concurrent<S>(
    server: Arc<CloudServer<S>>,
) -> std::io::Result<simcloud_transport::tcp::TcpServerHandle>
where
    S: BucketStore + 'static,
{
    serve_tcp_shared(server)
}

/// [`serve_tcp_concurrent`] with explicit [`ServeOptions`]: per-connection
/// read/idle deadlines, a connection-count limit with typed load shedding,
/// a bounded shutdown drain — and, in tests, server-side fault injection.
pub fn serve_tcp_concurrent_with<S>(
    server: Arc<CloudServer<S>>,
    options: ServeOptions,
) -> std::io::Result<simcloud_transport::tcp::TcpServerHandle>
where
    S: BucketStore + 'static,
{
    serve_tcp_shared_with(server, options)
}

/// Connects one more authorized client to a running TCP server (started
/// with [`over_tcp`] or [`serve_tcp_concurrent`]).
pub fn connect_tcp<M>(
    key: SecretKey,
    metric: M,
    addr: std::net::SocketAddr,
    client_config: ClientConfig,
) -> std::io::Result<EncryptedClient<M, TcpTransport>>
where
    M: Metric<Vector>,
{
    let transport = TcpTransport::connect(addr)?;
    Ok(EncryptedClient::new(key, metric, transport, client_config))
}

/// [`connect_tcp`] with an explicit [`TcpClientConfig`]: socket timeouts, a
/// per-request deadline, and the retry/reconnect policy the transport
/// applies to idempotent requests.
pub fn connect_tcp_with<M>(
    key: SecretKey,
    metric: M,
    addr: std::net::SocketAddr,
    client_config: ClientConfig,
    tcp_config: TcpClientConfig,
) -> std::io::Result<EncryptedClient<M, TcpTransport>>
where
    M: Metric<Vector>,
{
    let transport = TcpTransport::connect_with(addr, tcp_config)?;
    Ok(EncryptedClient::new(key, metric, transport, client_config))
}

/// TCP deployment: spawns the server thread, connects a client. Returns the
/// client and the server handle (shut it down when done).
pub fn over_tcp<M, S>(
    key: SecretKey,
    metric: M,
    index_config: MIndexConfig,
    store: S,
    client_config: ClientConfig,
) -> Result<
    (
        EncryptedClient<M, TcpTransport>,
        simcloud_transport::tcp::TcpServerHandle,
    ),
    Box<dyn std::error::Error>,
>
where
    M: Metric<Vector>,
    S: BucketStore + 'static,
{
    let server = CloudServer::new(index_config, store)?;
    let handle = serve_tcp(server)?;
    let transport = TcpTransport::connect(handle.addr())?;
    Ok((
        EncryptedClient::new(key, metric, transport, client_config),
        handle,
    ))
}
