//! Deployment helpers: wire a client to a server in one call.
//!
//! Reproduces the two deployments of the paper's prototype (§4.4): both
//! processes on one machine. [`in_process`] keeps the server in the caller's
//! process with a modelled network (deterministic measurements);
//! [`over_tcp`] runs the server on a real TCP loopback socket in its own
//! thread, like the original MESSIF prototype.

use simcloud_metric::{Metric, Vector};
use simcloud_mindex::{MIndexConfig, MIndexError};
use simcloud_storage::BucketStore;
use simcloud_transport::{serve_tcp, InProcessTransport, NetworkModel, TcpTransport};

use crate::client::{ClientConfig, EncryptedClient};
use crate::key::SecretKey;
use crate::server::CloudServer;

/// In-process similarity cloud: client + embedded server over a modelled
/// network.
pub type InProcessCloud<M, S> = EncryptedClient<M, InProcessTransport<CloudServer<S>>>;

/// Builds an in-process deployment with the default loopback model.
pub fn in_process<M, S>(
    key: SecretKey,
    metric: M,
    index_config: MIndexConfig,
    store: S,
    client_config: ClientConfig,
) -> Result<InProcessCloud<M, S>, MIndexError>
where
    M: Metric<Vector>,
    S: BucketStore,
{
    in_process_with_model(
        key,
        metric,
        index_config,
        store,
        client_config,
        NetworkModel::loopback(),
    )
}

/// Builds an in-process deployment with an explicit network model (the WAN
/// ablation uses this).
pub fn in_process_with_model<M, S>(
    key: SecretKey,
    metric: M,
    index_config: MIndexConfig,
    store: S,
    client_config: ClientConfig,
    model: NetworkModel,
) -> Result<InProcessCloud<M, S>, MIndexError>
where
    M: Metric<Vector>,
    S: BucketStore,
{
    let server = CloudServer::new(index_config, store)?;
    let transport = InProcessTransport::with_model(server, model);
    Ok(EncryptedClient::new(key, metric, transport, client_config))
}

/// TCP deployment: spawns the server thread, connects a client. Returns the
/// client and the server handle (shut it down when done).
pub fn over_tcp<M, S>(
    key: SecretKey,
    metric: M,
    index_config: MIndexConfig,
    store: S,
    client_config: ClientConfig,
) -> Result<
    (
        EncryptedClient<M, TcpTransport>,
        simcloud_transport::tcp::TcpServerHandle,
    ),
    Box<dyn std::error::Error>,
>
where
    M: Metric<Vector>,
    S: BucketStore + 'static,
{
    let server = CloudServer::new(index_config, store)?;
    let handle = serve_tcp(server)?;
    let transport = TcpTransport::connect(handle.addr())?;
    Ok((
        EncryptedClient::new(key, metric, transport, client_config),
        handle,
    ))
}
