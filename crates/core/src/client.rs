//! The authorized encryption client (paper Alg. 1 and Alg. 2).
//!
//! The client owns the secret key (pivots + cipher) and the metric; the
//! server owns nothing sensitive. Every operation returns its results
//! together with a [`CostReport`] whose components correspond one-to-one to
//! the rows of the paper's evaluation tables.

use std::sync::Arc;
use std::time::Instant;

use simcloud_crypto::SealError;
use simcloud_metric::{CountingMetric, Metric, ObjectId, Vector};
use simcloud_mindex::{IndexEntry, Routing, RoutingStrategy};
use simcloud_transport::{Stopwatch, Transport, TransportError};

use crate::costs::CostReport;
use crate::key::SecretKey;
use crate::protocol::{Candidate, Request, Response};
use crate::transform::DistanceTransform;

/// A search answer: object id and true distance to the query.
pub type Neighbor = (ObjectId, f64);

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Transport(TransportError),
    /// The server answered with an error message.
    Server(String),
    /// A bulk insert failed mid-batch. Bulk inserts are **not atomic**:
    /// `inserted` entries of the batch prefix are stored on the server; the
    /// caller decides whether to retry the remainder or compensate.
    PartialInsert {
        /// Entries of the batch that the server stored before failing.
        inserted: u32,
        /// The server's failure description.
        message: String,
    },
    /// The server's response did not match the request type.
    UnexpectedResponse(String),
    /// A candidate failed decryption/authentication — tampering or key
    /// mismatch.
    Seal(SealError),
    /// A decrypted payload was not a valid object encoding.
    BadObject(u64),
    /// Operation requires the distance routing strategy.
    NeedsDistances,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::PartialInsert { inserted, message } => write!(
                f,
                "bulk insert failed after {inserted} stored entries: {message}"
            ),
            ClientError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
            ClientError::Seal(e) => write!(f, "candidate rejected: {e}"),
            ClientError::BadObject(id) => write!(f, "object {id} undecodable after unseal"),
            ClientError::NeedsDistances => {
                write!(
                    f,
                    "precise range queries require the distance routing strategy"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<SealError> for ClientError {
    fn from(e: SealError) -> Self {
        ClientError::Seal(e)
    }
}

/// Client configuration: routing strategy and optional extensions.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Routing information stored with objects (must match the server's
    /// index configuration).
    pub strategy: RoutingStrategy,
    /// Prefix length for permutation routing (defaults to the full
    /// permutation, as Alg. 1 line 7 stores `(1)_o … (n)_o`; shorter
    /// prefixes leak and cost less).
    pub permutation_prefix: Option<usize>,
    /// Level-4 privacy extension (paper §6 future work): monotone keyed
    /// transformation of all distances shipped to the server.
    pub transform: Option<DistanceTransform>,
}

impl ClientConfig {
    /// Distance routing, no transform — the paper's precise-strategy setup.
    pub fn distances() -> Self {
        Self {
            strategy: RoutingStrategy::Distances,
            permutation_prefix: None,
            transform: None,
        }
    }

    /// Permutation routing — the paper's approximate-strategy setup.
    pub fn permutations() -> Self {
        Self {
            strategy: RoutingStrategy::Permutation,
            permutation_prefix: None,
            transform: None,
        }
    }

    /// Adds the distance transformation (level-4 privacy).
    pub fn with_transform(mut self, t: DistanceTransform) -> Self {
        self.transform = Some(t);
        self
    }
}

/// The authorized client.
pub struct EncryptedClient<M: Metric<Vector>, T: Transport> {
    key: SecretKey,
    metric: Arc<CountingMetric<M>>,
    transport: T,
    config: ClientConfig,
    rng: rand::rngs::StdRng,
    total: CostReport,
}

impl<M: Metric<Vector>, T: Transport> EncryptedClient<M, T> {
    /// Creates a client. `config.strategy` must match the server index.
    pub fn new(key: SecretKey, metric: M, transport: T, config: ClientConfig) -> Self {
        use rand::SeedableRng;
        Self {
            key,
            metric: Arc::new(CountingMetric::new(metric)),
            transport,
            config,
            rng: rand::rngs::StdRng::from_entropy(),
            total: CostReport::default(),
        }
    }

    /// Deterministic IVs for reproducible byte-level experiments.
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        use rand::SeedableRng;
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
        self
    }

    /// The secret key in use.
    pub fn key(&self) -> &SecretKey {
        &self.key
    }

    /// Accumulated costs across all operations.
    pub fn total_costs(&self) -> CostReport {
        self.total
    }

    /// Access to the transport (stats inspection).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    fn routing_for(&self, distances: &[f64]) -> Routing {
        match self.config.strategy {
            RoutingStrategy::Distances => {
                let ds = match &self.config.transform {
                    Some(t) => t.apply_all(distances),
                    None => distances.to_vec(),
                };
                Routing::from_distances(&ds)
            }
            RoutingStrategy::Permutation => {
                // Monotone transforms do not change permutations, so the
                // transform is a no-op here — exactly the paper's point that
                // permutations already hide distance values.
                let len = self.config.permutation_prefix.unwrap_or(distances.len());
                Routing::permutation_prefix(distances, len)
            }
        }
    }

    /// One request/response exchange. `rt_elapsed` accumulates the wall
    /// time spent inside the transport — the client is idle during it, so
    /// "client time" = operation elapsed − `rt_elapsed` regardless of
    /// whether the transport is in-process (handler runs inline) or TCP
    /// (send + server + receive happen remotely).
    fn exchange(
        &mut self,
        request: &Request,
        costs: &mut CostReport,
        rt_elapsed: &mut std::time::Duration,
    ) -> Result<Response, ClientError> {
        let bytes = request.encode();
        let before = self.transport.stats();
        let rt_start = Instant::now();
        let resp_bytes = self.transport.round_trip(&bytes)?;
        *rt_elapsed += rt_start.elapsed();
        let delta = self.transport.stats().since(&before);
        costs.server += delta.server_time;
        costs.communication += delta.comm_time;
        costs.bytes_sent += delta.bytes_sent;
        costs.bytes_received += delta.bytes_received;
        let resp = Response::decode(&resp_bytes)
            .map_err(|e| ClientError::UnexpectedResponse(e.to_string()))?;
        match resp {
            Response::Error(msg) => Err(ClientError::Server(msg)),
            Response::InsertError { inserted, message } => {
                Err(ClientError::PartialInsert { inserted, message })
            }
            other => Ok(other),
        }
    }

    /// Inserts a batch of objects (Alg. 1 applied per object, shipped as one
    /// bulk — the paper's construction uses bulks of 1000).
    pub fn insert_bulk(
        &mut self,
        objects: &[(ObjectId, Vector)],
    ) -> Result<CostReport, ClientError> {
        let mut costs = CostReport::default();
        let mut rt_elapsed = std::time::Duration::ZERO;
        let op_start = Instant::now();
        let mut enc = Stopwatch::new();
        let mut dist = Stopwatch::new();
        let before_dc = self.metric.count();

        let mut entries = Vec::with_capacity(objects.len());
        for (id, o) in objects {
            // Alg. 1 line 1: distances to all pivots.
            let ds = dist.time(|| self.key.pivot_distances(self.metric.as_ref(), o));
            // Alg. 1 lines 3-7: routing info per strategy.
            let routing = self.routing_for(&ds);
            // Alg. 1 line 8: encrypt the object.
            let sealed = enc.time(|| {
                let mut plain = Vec::with_capacity(o.encoded_len());
                o.encode(&mut plain);
                self.key
                    .cipher()
                    .seal(&plain, self.key.mode(), &mut self.rng)
            });
            entries.push(IndexEntry::new(id.0, routing, sealed));
        }
        let request = Request::Insert(entries);
        let resp = self.exchange(&request, &mut costs, &mut rt_elapsed)?;
        match resp {
            Response::Inserted(n) if n as usize == objects.len() => {}
            Response::Inserted(n) => {
                return Err(ClientError::UnexpectedResponse(format!(
                    "{n} of {} entries inserted",
                    objects.len()
                )))
            }
            other => {
                return Err(ClientError::UnexpectedResponse(format!("{other:?}")));
            }
        }
        costs.encryption = enc.total();
        costs.distance = dist.total();
        costs.distance_computations = self.metric.count() - before_dc;
        costs.client = op_start.elapsed().saturating_sub(rt_elapsed);
        self.total.merge(&costs);
        Ok(costs)
    }

    /// Convenience single insert.
    pub fn insert(&mut self, id: ObjectId, object: &Vector) -> Result<CostReport, ClientError> {
        self.insert_bulk(std::slice::from_ref(&(id, object.clone())))
    }

    fn refine(
        &mut self,
        q: &Vector,
        candidates: Vec<Candidate>,
        costs: &mut CostReport,
        keep: impl Fn(f64) -> bool,
        limit: Option<usize>,
    ) -> Result<Vec<Neighbor>, ClientError> {
        let mut dec = Stopwatch::new();
        let mut dist = Stopwatch::new();
        costs.candidates += candidates.len() as u64;
        let mut result = Vec::new();
        for c in candidates {
            // Alg. 2 line 13: decrypt.
            let plain = dec.time(|| self.key.cipher().unseal(&c.payload))?;
            let (o, _) = Vector::decode(&plain).map_err(|_| ClientError::BadObject(c.id))?;
            // Alg. 2 line 14: true distance. A non-finite distance means the
            // payload decoded to garbage (e.g. NaN coordinates) — reject it
            // instead of letting it poison the sort.
            let d = dist.time(|| self.metric.distance(q, &o));
            if !d.is_finite() {
                return Err(ClientError::BadObject(c.id));
            }
            if keep(d) {
                result.push((ObjectId(c.id), d));
            }
        }
        result.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        if let Some(k) = limit {
            result.truncate(k);
        }
        costs.decryption += dec.total();
        costs.distance += dist.total();
        Ok(result)
    }

    /// Precise range query `R(q, r)` (Alg. 2, precise branch + Alg. 3 on the
    /// server). Requires the distance strategy.
    pub fn range(
        &mut self,
        q: &Vector,
        radius: f64,
    ) -> Result<(Vec<Neighbor>, CostReport), ClientError> {
        if self.config.strategy != RoutingStrategy::Distances {
            return Err(ClientError::NeedsDistances);
        }
        let mut costs = CostReport::default();
        let mut rt_elapsed = std::time::Duration::ZERO;
        let op_start = Instant::now();
        let mut dist = Stopwatch::new();
        let before_dc = self.metric.count();

        let ds = dist.time(|| self.key.pivot_distances(self.metric.as_ref(), q));
        let (wire_ds, wire_radius) = match &self.config.transform {
            Some(t) => (t.apply_all(&ds), t.server_radius(radius)),
            None => (ds.clone(), radius),
        };
        // Full f64 on the wire: the server prunes with exactly the values
        // the client refines with, so objects at distance exactly `radius`
        // survive (the paper's *precise* range guarantee).
        let request = Request::Range {
            distances: wire_ds,
            radius: wire_radius,
        };
        let resp = self.exchange(&request, &mut costs, &mut rt_elapsed)?;
        let candidates = match resp {
            Response::Candidates(c) => c,
            other => return Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        };
        costs.distance = dist.total();
        let result = self.refine(q, candidates, &mut costs, |d| d <= radius, None)?;
        costs.distance_computations = self.metric.count() - before_dc;
        costs.client = op_start.elapsed().saturating_sub(rt_elapsed);
        self.total.merge(&costs);
        Ok((result, costs))
    }

    /// Approximate k-NN (Alg. 2 approximate branch + Alg. 4 on the server):
    /// the server returns a pre-ranked candidate set of `cand_size` sealed
    /// objects; the client refines and keeps the best `k`.
    pub fn knn_approx(
        &mut self,
        q: &Vector,
        k: usize,
        cand_size: usize,
    ) -> Result<(Vec<Neighbor>, CostReport), ClientError> {
        let mut costs = CostReport::default();
        let mut rt_elapsed = std::time::Duration::ZERO;
        let op_start = Instant::now();
        let mut dist = Stopwatch::new();
        let before_dc = self.metric.count();

        let ds = dist.time(|| self.key.pivot_distances(self.metric.as_ref(), q));
        let routing = self.routing_for(&ds);
        let request = Request::ApproxKnn {
            routing,
            cand_size: cand_size as u32,
        };
        let resp = self.exchange(&request, &mut costs, &mut rt_elapsed)?;
        let candidates = match resp {
            Response::Candidates(c) => c,
            other => return Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        };
        costs.distance = dist.total();
        let result = self.refine(q, candidates, &mut costs, |_| true, Some(k))?;
        costs.distance_computations = self.metric.count() - before_dc;
        costs.client = op_start.elapsed().saturating_sub(rt_elapsed);
        self.total.merge(&costs);
        Ok((result, costs))
    }

    /// Approximate k-NN for a whole batch of queries in **one round trip**
    /// (the batch query API): the server answers with one pre-ranked
    /// candidate set per query; the client refines each locally. Amortizes
    /// per-message latency — on LAN/WAN deployments this is the dominant
    /// per-query cost — and gives a concurrent server a whole batch to
    /// schedule at once.
    ///
    /// The wire format carries at most `u16::MAX` queries per message;
    /// larger batches are transparently split into multiple round trips.
    pub fn knn_approx_batch(
        &mut self,
        queries: &[Vector],
        k: usize,
        cand_size: usize,
    ) -> Result<(Vec<Vec<Neighbor>>, CostReport), ClientError> {
        let mut costs = CostReport::default();
        let mut rt_elapsed = std::time::Duration::ZERO;
        let op_start = Instant::now();
        let mut dist = Stopwatch::new();
        let before_dc = self.metric.count();
        let mut results = Vec::with_capacity(queries.len());

        for chunk in queries.chunks(u16::MAX as usize).filter(|c| !c.is_empty()) {
            let batch: Vec<crate::protocol::KnnQuery> = chunk
                .iter()
                .map(|q| {
                    let ds = dist.time(|| self.key.pivot_distances(self.metric.as_ref(), q));
                    crate::protocol::KnnQuery {
                        routing: self.routing_for(&ds),
                        cand_size: cand_size as u32,
                    }
                })
                .collect();
            let resp = self.exchange(&Request::BatchKnn(batch), &mut costs, &mut rt_elapsed)?;
            let sets = match resp {
                Response::CandidateSets(sets) if sets.len() == chunk.len() => sets,
                Response::CandidateSets(sets) => {
                    return Err(ClientError::UnexpectedResponse(format!(
                        "{} candidate sets for {} queries",
                        sets.len(),
                        chunk.len()
                    )))
                }
                other => return Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
            };
            for (q, candidates) in chunk.iter().zip(sets) {
                results.push(self.refine(q, candidates, &mut costs, |_| true, Some(k))?);
            }
        }
        // refine() accumulated its own distance time into `costs`; add the
        // pivot-distance stopwatch on top rather than overwriting it.
        costs.distance += dist.total();
        costs.distance_computations = self.metric.count() - before_dc;
        costs.client = op_start.elapsed().saturating_sub(rt_elapsed);
        self.total.merge(&costs);
        Ok((results, costs))
    }

    /// Precise k-NN (paper §4.2): approximate pass estimates `ρ_k`, then the
    /// precise range query `R(q, ρ_k)` completes the answer. Requires the
    /// distance strategy for the range leg.
    pub fn knn_precise(
        &mut self,
        q: &Vector,
        k: usize,
    ) -> Result<(Vec<Neighbor>, CostReport), ClientError> {
        if self.config.strategy != RoutingStrategy::Distances {
            return Err(ClientError::NeedsDistances);
        }
        let seed_cand = (4 * k).max(32);
        let (approx, mut costs) = self.knn_approx(q, k, seed_cand)?;
        let rho_k = if approx.len() >= k {
            approx[k - 1].1
        } else {
            match approx.last() {
                Some(x) => x.1,
                None => return Ok((Vec::new(), costs)),
            }
        };
        let (mut in_ball, range_costs) = self.range(q, rho_k)?;
        costs.merge(&range_costs);
        in_ball.truncate(k);
        Ok((in_ball, costs))
    }

    /// Downloads and decrypts the entire outsourced collection — the data
    /// owner's path for audits and key rotation. Returns `(id, object)`
    /// pairs sorted by id.
    pub fn export_all(&mut self) -> Result<(Vec<(ObjectId, Vector)>, CostReport), ClientError> {
        let mut costs = CostReport::default();
        let mut rt = std::time::Duration::ZERO;
        let op_start = Instant::now();
        let resp = self.exchange(&Request::ExportAll, &mut costs, &mut rt)?;
        let candidates = match resp {
            Response::Candidates(c) => c,
            other => return Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        };
        let mut dec = Stopwatch::new();
        costs.candidates = candidates.len() as u64;
        let mut out = Vec::with_capacity(candidates.len());
        for c in candidates {
            let plain = dec.time(|| self.key.cipher().unseal(&c.payload))?;
            let (o, _) = Vector::decode(&plain).map_err(|_| ClientError::BadObject(c.id))?;
            out.push((ObjectId(c.id), o));
        }
        out.sort_by_key(|(id, _)| *id);
        costs.decryption = dec.total();
        costs.client = op_start.elapsed().saturating_sub(rt);
        self.total.merge(&costs);
        Ok((out, costs))
    }

    /// Key rotation (client revocation): the data owner exports the
    /// collection under the old key and re-outsources it to a *fresh*
    /// server under `new_key`. The old key — and every client holding it —
    /// can no longer read the new deployment's payloads.
    ///
    /// The pivot set may change too (full revocation of the routing
    /// knowledge); pass the same pivots to keep cell structure comparable.
    pub fn rekey_into<M2: Metric<Vector>, T2: Transport>(
        &mut self,
        new_cloud: &mut EncryptedClient<M2, T2>,
        bulk: usize,
    ) -> Result<CostReport, ClientError> {
        let (objects, mut costs) = self.export_all()?;
        for chunk in objects.chunks(bulk.max(1)) {
            costs.merge(&new_cloud.insert_bulk(chunk)?);
        }
        Ok(costs)
    }

    /// Server tree info (no query content leaves the client).
    pub fn server_info(&mut self) -> Result<(u64, u32, u32), ClientError> {
        let mut costs = CostReport::default();
        let mut rt = std::time::Duration::ZERO;
        match self.exchange(&Request::Info, &mut costs, &mut rt)? {
            Response::Info {
                entries,
                leaves,
                depth,
            } => Ok((entries, leaves, depth)),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}
