//! The authorized encryption client (paper Alg. 1 and Alg. 2).
//!
//! The client owns the secret key (pivots + cipher) and the metric; the
//! server owns nothing sensitive. Every operation returns its results
//! together with a [`CostReport`] whose components correspond one-to-one to
//! the rows of the paper's evaluation tables.

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use simcloud_crypto::SealError;
use simcloud_metric::{CountingMetric, Metric, ObjectId, Vector};
use simcloud_mindex::{IndexEntry, Routing, RoutingStrategy};
use simcloud_transport::{RequestClass, Stopwatch, Transport, TransportError};

use crate::costs::CostReport;
use crate::key::SecretKey;
use crate::protocol::{CandidateHeader, CandidateList, Request, Response};
use crate::transform::DistanceTransform;

/// A search answer: object id and true distance to the query.
pub type Neighbor = (ObjectId, f64);

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Transport(TransportError),
    /// The server answered with an error message.
    Server(String),
    /// A bulk insert failed mid-batch **with a server answer**: the server
    /// processed the batch in order, stored the `inserted`-entry prefix,
    /// and rejected the next entry (e.g. a duplicate id).
    ///
    /// Bulk inserts are **not atomic**. The safe retry recipe: skip the
    /// acked prefix and resubmit only the remainder —
    /// `client.insert_bulk(&objects[inserted as usize..])` after fixing
    /// (or dropping) the offending entry. Never resubmit the full batch:
    /// the stored prefix would collide on duplicate ids and the retry
    /// would fail on its very first entry.
    PartialInsert {
        /// Entries of the batch that the server stored before failing.
        inserted: u32,
        /// The server's failure description.
        message: String,
    },
    /// A bulk insert failed **without a server answer**: the transport
    /// died mid-exchange (connection cut, timeout, torn frame), so the
    /// client cannot know whether the server stored nothing, the whole
    /// batch, or — had a server-side error raced the disconnect — some
    /// prefix. Inserts are never auto-retried by the transport precisely
    /// because a blind replay of an already-stored batch turns into a
    /// duplicate-id rejection.
    ///
    /// `acked` is the number of entries positively acknowledged before the
    /// failure; with the single-frame bulk wire this is always 0 — the
    /// server acks a batch as a whole. To recover, call
    /// [`EncryptedClient::insert_bulk_resume`] with the same batch: it
    /// probes the server for the stored prefix and resubmits only the
    /// remainder, giving exactly-once ingest over a lossy network.
    InsertInterrupted {
        /// Entries known stored on the server (a batch-order prefix).
        acked: u32,
        /// The transport failure that interrupted the exchange.
        error: TransportError,
    },
    /// The server's response did not match the request type.
    UnexpectedResponse(String),
    /// A candidate failed decryption/authentication — tampering or key
    /// mismatch.
    Seal(SealError),
    /// A decrypted payload was not a valid object encoding.
    BadObject(u64),
    /// Operation requires the distance routing strategy.
    NeedsDistances,
    /// A phase-2 fetch answer deviated from the request: wrong count,
    /// reordered, duplicated, or never-requested ids. Any deviation is
    /// treated as an attack and aborts the query — sealed payloads are
    /// additionally MAC-bound to their ids, so a *content* swap behind
    /// correct-looking ids is caught at unseal time as [`ClientError::Seal`].
    FetchMismatch(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::PartialInsert { inserted, message } => write!(
                f,
                "bulk insert failed after {inserted} stored entries: {message}"
            ),
            ClientError::InsertInterrupted { acked, error } => write!(
                f,
                "bulk insert interrupted by the transport after {acked} acked entries \
                 (stored prefix unknown — resume with insert_bulk_resume): {error}"
            ),
            ClientError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
            ClientError::Seal(e) => write!(f, "candidate rejected: {e}"),
            ClientError::BadObject(id) => write!(f, "object {id} undecodable after unseal"),
            ClientError::NeedsDistances => {
                write!(
                    f,
                    "precise range queries require the distance routing strategy"
                )
            }
            ClientError::FetchMismatch(m) => write!(f, "fetched objects mismatch request: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<SealError> for ClientError {
    fn from(e: SealError) -> Self {
        ClientError::Seal(e)
    }
}

/// Candidate-refinement policy: when may the client stop unsealing?
///
/// Candidate sets arrive sorted by a server-computed lower bound. Under the
/// **distances** strategy the bound is a sound metric lower bound on
/// `d(q, o)` (wire-safe: the `f32` quantization of stored distances is
/// already subtracted server-side), so stopping once the k-th true distance
/// beats every remaining bound provably returns the same neighbors as
/// decrypting everything. Under the **permutation** strategy the server has
/// no distances — the "bound" is the cell-promise penalty, a heuristic —
/// so a sound early exit is impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LazyRefine {
    /// Decrypt every candidate (the paper's eager Alg. 2 loop).
    Off,
    /// Decrypt on demand, early-exiting only when the wire bounds are sound
    /// (distance routing); permutation candidate sets are refined eagerly.
    /// Results are identical to [`LazyRefine::Off`] in both cases.
    #[default]
    Sound,
    /// Also early-exit under permutation routing, treating the promise
    /// penalty as if it were a distance bound — faster, but the answer may
    /// differ from eager refinement.
    Heuristic,
}

/// Client configuration: routing strategy and optional extensions.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Routing information stored with objects (must match the server's
    /// index configuration).
    pub strategy: RoutingStrategy,
    /// Prefix length for permutation routing (defaults to the full
    /// permutation, as Alg. 1 line 7 stores `(1)_o … (n)_o`; shorter
    /// prefixes leak and cost less).
    pub permutation_prefix: Option<usize>,
    /// Level-4 privacy extension (paper §6 future work): monotone keyed
    /// transformation of all distances shipped to the server.
    pub transform: Option<DistanceTransform>,
    /// Decrypt-on-demand refinement policy (default: sound early exit).
    pub lazy_refine: LazyRefine,
    /// Phase-2 fetch sizing, `α`: when a budgeted server ships fewer
    /// payloads than refinement consumes, the first explicit fetch asks for
    /// `α·k` candidates (the early exit usually lands within a small
    /// multiple of `k`); every further fetch doubles. Default 4.
    pub fetch_alpha: usize,
    /// Floor for phase-2 fetch batches — keeps tiny `k` from degenerating
    /// into per-candidate round trips while the top-k heap fills. (Range
    /// queries never use it: their fetches are always bound-guided by the
    /// wire radius.) Default 32.
    pub fetch_min_batch: usize,
    /// Per-request deadline handed to the transport on every exchange.
    /// Bounds one logical request *including* all retries and backoff; the
    /// transport surfaces a breach as [`TransportError::TimedOut`]. `None`
    /// (the default) leaves only the transport's own socket timeouts.
    pub request_deadline: Option<Duration>,
}

impl ClientConfig {
    /// Distance routing, no transform — the paper's precise-strategy setup.
    pub fn distances() -> Self {
        Self {
            strategy: RoutingStrategy::Distances,
            permutation_prefix: None,
            transform: None,
            lazy_refine: LazyRefine::Sound,
            fetch_alpha: 4,
            fetch_min_batch: 32,
            request_deadline: None,
        }
    }

    /// Permutation routing — the paper's approximate-strategy setup.
    pub fn permutations() -> Self {
        Self {
            strategy: RoutingStrategy::Permutation,
            permutation_prefix: None,
            transform: None,
            lazy_refine: LazyRefine::Sound,
            fetch_alpha: 4,
            fetch_min_batch: 32,
            request_deadline: None,
        }
    }

    /// Adds the distance transformation (level-4 privacy).
    pub fn with_transform(mut self, t: DistanceTransform) -> Self {
        self.transform = Some(t);
        self
    }

    /// Overrides the refinement policy (eager, sound-lazy, heuristic-lazy).
    pub fn with_lazy_refine(mut self, lazy: LazyRefine) -> Self {
        self.lazy_refine = lazy;
        self
    }

    /// Overrides phase-2 fetch sizing: first explicit fetch ≈ `alpha·k`
    /// with a floor of `min_batch`, doubling afterwards. Tests pin these to
    /// 1 to exercise exact batch boundaries.
    pub fn with_fetch_batching(mut self, alpha: usize, min_batch: usize) -> Self {
        self.fetch_alpha = alpha;
        self.fetch_min_batch = min_batch;
        self
    }

    /// Bounds every request (including the transport's retries and backoff)
    /// by `deadline`; breaches surface as [`TransportError::TimedOut`].
    pub fn with_request_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = Some(deadline);
        self
    }
}

/// What a refinement pass is asked to produce.
#[derive(Debug, Clone, Copy)]
enum RefineGoal {
    /// The best `k` neighbors of the candidate set.
    TopK(usize),
    /// All candidates within `radius`; `wire_radius` is the same threshold
    /// in the wire-bound space (transformed + inflated when the level-4
    /// transform is active) for comparisons against candidate bounds.
    Within { radius: f64, wire_radius: f64 },
}

/// Max-heap entry ordered by (true distance, id) — its maximum is the
/// *worst* member of the current best-k, i.e. the running k-th neighbor.
#[derive(Debug, PartialEq)]
struct WorstNeighbor(f64, u64);

impl Eq for WorstNeighbor {}

impl PartialOrd for WorstNeighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstNeighbor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// One query's suspended decrypt-on-demand refinement — the Alg. 2 loop of
/// [`EncryptedClient::refine`] in resumable form.
///
/// `advance_refine` runs the exit-check / decrypt / rank loop until the
/// candidate at the cursor has no payload staged and reports how far the
/// stall's fetch should reach; the driver performs the phase-2 fetch — a
/// solo query immediately, the batch driver after **coalescing every
/// stalled sibling's plan into one [`Request::FetchObjects`] round trip**
/// — and resumes. The task borrows only the query vector, never the
/// client, so any number of tasks can be suspended while the client's
/// transport is busy fetching for all of them.
struct RefineTask<'a> {
    q: &'a Vector,
    goal: RefineGoal,
    headers: Vec<CandidateHeader>,
    payloads: Vec<Option<Vec<u8>>>,
    /// Minimum lower bound over `headers[i..]` (lazy mode only).
    suffix_min: Vec<f64>,
    lazy: bool,
    /// Eager refinement stages the whole remainder in one fetch before the
    /// loop; this flag makes that stall fire exactly once.
    eager_prefetched: bool,
    heap: BinaryHeap<WorstNeighbor>,
    /// Next header position the loop will examine.
    cursor: usize,
    grown: usize,
    decrypted: u64,
    bad: u64,
    first_bad: Option<ClientError>,
    /// Wall time spent inside the loop (fetch round trips excluded) —
    /// lands in `costs.decryption` when the task settles.
    loop_time: std::time::Duration,
}

/// Which still-missing payload slots a stall's fetch should cover: up to
/// `limit` missing positions starting at `from`, as (ids, positions).
/// Shared by the solo fetch path and the batch coalescer so both request
/// exactly the same ids for the same stall.
fn plan_fetch(
    headers: &[CandidateHeader],
    payloads: &[Option<Vec<u8>>],
    from: usize,
    limit: usize,
) -> (Vec<u64>, Vec<usize>) {
    let limit = limit.max(1);
    let mut ids = Vec::with_capacity(limit);
    let mut positions = Vec::with_capacity(limit);
    for (i, p) in payloads.iter().enumerate().skip(from) {
        if p.is_none() {
            ids.push(headers[i].id);
            positions.push(i);
            if ids.len() == limit {
                break;
            }
        }
    }
    (ids, positions)
}

/// The authorized client.
pub struct EncryptedClient<M: Metric<Vector>, T: Transport> {
    key: SecretKey,
    metric: Arc<CountingMetric<M>>,
    transport: T,
    config: ClientConfig,
    rng: rand::rngs::StdRng,
    total: CostReport,
}

impl<M: Metric<Vector>, T: Transport> std::fmt::Debug for EncryptedClient<M, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncryptedClient").finish_non_exhaustive()
    }
}

impl<M: Metric<Vector>, T: Transport> EncryptedClient<M, T> {
    /// Creates a client. `config.strategy` must match the server index.
    pub fn new(key: SecretKey, metric: M, transport: T, config: ClientConfig) -> Self {
        use rand::SeedableRng;
        Self {
            key,
            metric: Arc::new(CountingMetric::new(metric)),
            transport,
            config,
            rng: rand::rngs::StdRng::from_entropy(),
            total: CostReport::default(),
        }
    }

    /// Deterministic IVs for reproducible byte-level experiments.
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        use rand::SeedableRng;
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
        self
    }

    /// The secret key in use.
    pub fn key(&self) -> &SecretKey {
        &self.key
    }

    /// Accumulated costs across all operations.
    pub fn total_costs(&self) -> CostReport {
        self.total
    }

    /// Access to the transport (stats inspection).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    fn routing_for(&self, distances: &[f64]) -> Routing {
        match self.config.strategy {
            RoutingStrategy::Distances => {
                let ds = match &self.config.transform {
                    Some(t) => t.apply_all(distances),
                    None => distances.to_vec(),
                };
                Routing::from_distances(&ds)
            }
            RoutingStrategy::Permutation => {
                // Monotone transforms do not change permutations, so the
                // transform is a no-op here — exactly the paper's point that
                // permutations already hide distance values.
                let len = self.config.permutation_prefix.unwrap_or(distances.len());
                Routing::permutation_prefix(distances, len)
            }
        }
    }

    /// One request/response exchange. `rt_elapsed` accumulates the wall
    /// time spent inside the transport — the client is idle during it, so
    /// "client time" = operation elapsed − `rt_elapsed` regardless of
    /// whether the transport is in-process (handler runs inline) or TCP
    /// (send + server + receive happen remotely).
    fn exchange(
        &mut self,
        request: &Request,
        costs: &mut CostReport,
        rt_elapsed: &mut std::time::Duration,
    ) -> Result<Response, ClientError> {
        let bytes = request.encode();
        // Classify for the transport's retry machinery: every request is a
        // pure read except Insert, whose blind replay after an ambiguous
        // failure could double-store a batch (surfacing as a duplicate-id
        // rejection). The transport auto-retries only idempotent requests;
        // interrupted inserts come back as a typed transport error that
        // [`EncryptedClient::insert_bulk`] wraps into
        // [`ClientError::InsertInterrupted`].
        let class = match request {
            Request::Insert(_) => RequestClass::NonIdempotent,
            _ => RequestClass::Idempotent,
        };
        let before = self.transport.stats();
        let rt_start = Instant::now();
        let resp_bytes =
            self.transport
                .round_trip_with(&bytes, class, self.config.request_deadline)?;
        *rt_elapsed += rt_start.elapsed();
        let delta = self.transport.stats().since(&before);
        costs.server += delta.server_time;
        costs.communication += delta.comm_time;
        costs.bytes_sent += delta.bytes_sent;
        costs.bytes_received += delta.bytes_received;
        let resp = Response::decode(&resp_bytes)
            .map_err(|e| ClientError::UnexpectedResponse(e.to_string()))?;
        match resp {
            Response::Error(msg) => Err(ClientError::Server(msg)),
            Response::InsertError { inserted, message } => {
                Err(ClientError::PartialInsert { inserted, message })
            }
            other => Ok(other),
        }
    }

    /// Inserts a batch of objects (Alg. 1 applied per object, shipped as one
    /// bulk — the paper's construction uses bulks of 1000).
    pub fn insert_bulk(
        &mut self,
        objects: &[(ObjectId, Vector)],
    ) -> Result<CostReport, ClientError> {
        let mut costs = CostReport::default();
        let mut rt_elapsed = std::time::Duration::ZERO;
        let op_start = Instant::now();
        let mut enc = Stopwatch::new();
        let mut dist = Stopwatch::new();
        let before_dc = self.metric.count();

        let mut entries = Vec::with_capacity(objects.len());
        for (id, o) in objects {
            // Alg. 1 line 1: distances to all pivots.
            let ds = dist.time(|| self.key.pivot_distances(self.metric.as_ref(), o));
            // Alg. 1 lines 3-7: routing info per strategy.
            let routing = self.routing_for(&ds);
            // Alg. 1 line 8: encrypt the object, MAC-bound to its id so an
            // untrusted server cannot later answer a fetch for one id with
            // another id's (individually valid) sealed payload.
            let sealed = enc.time(|| {
                let mut plain = Vec::with_capacity(o.encoded_len());
                o.encode(&mut plain);
                self.key.cipher().seal_with_aad(
                    &plain,
                    &id.0.to_le_bytes(),
                    self.key.mode(),
                    &mut self.rng,
                )
            });
            entries.push(IndexEntry::new(id.0, routing, sealed));
        }
        let request = Request::Insert(entries);
        let resp = self
            .exchange(&request, &mut costs, &mut rt_elapsed)
            .map_err(|e| match e {
                // The transport died mid-exchange: the server stored either
                // nothing (request lost) or a prefix/all (response lost).
                // Surface the ambiguity as a typed, resumable error instead
                // of a bare transport failure.
                ClientError::Transport(error) => ClientError::InsertInterrupted { acked: 0, error },
                other => other,
            })?;
        match resp {
            Response::Inserted(n) if n as usize == objects.len() => {}
            Response::Inserted(n) => {
                return Err(ClientError::UnexpectedResponse(format!(
                    "{n} of {} entries inserted",
                    objects.len()
                )))
            }
            other => {
                return Err(ClientError::UnexpectedResponse(format!("{other:?}")));
            }
        }
        costs.encryption = enc.total();
        costs.distance = dist.total();
        costs.distance_computations = self.metric.count() - before_dc;
        costs.client = op_start.elapsed().saturating_sub(rt_elapsed);
        self.total.merge(&costs);
        Ok(costs)
    }

    /// Convenience single insert.
    pub fn insert(&mut self, id: ObjectId, object: &Vector) -> Result<CostReport, ClientError> {
        self.insert_bulk(std::slice::from_ref(&(id, object.clone())))
    }

    /// Probes whether `id` is stored on the server with a single-id phase-2
    /// fetch — an idempotent read the transport retries freely. The
    /// server's typed "unknown object id" answer distinguishes *not stored*
    /// from a genuine failure.
    fn id_stored(
        &mut self,
        id: ObjectId,
        costs: &mut CostReport,
        rt_elapsed: &mut Duration,
    ) -> Result<bool, ClientError> {
        let request = Request::FetchObjects { ids: vec![id.0] };
        match self.exchange(&request, costs, rt_elapsed) {
            Ok(Response::Objects(_)) => Ok(true),
            Ok(other) => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
            Err(ClientError::Server(msg)) if msg.contains("unknown object id") => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Resumes a bulk insert after [`ClientError::InsertInterrupted`],
    /// giving exactly-once ingest over a lossy network.
    ///
    /// The server processes a bulk in batch order and a torn request frame
    /// stores nothing, so after an interrupted exchange the stored portion
    /// of `objects` is always a (possibly empty, possibly complete) prefix.
    /// This probes that prefix's length with `O(log n)` idempotent
    /// single-id fetches — binary search over "is `objects[i]` stored?" —
    /// then resubmits only the remainder. Returns the prefix length found
    /// (entries already stored, *not* re-sent) and the combined cost of the
    /// probes plus the resumed insert.
    ///
    /// Call it with exactly the batch that was interrupted. The probe
    /// assumes the batch's ids were not on the server before the
    /// interrupted attempt (the normal unique-id ingest case); ids that
    /// pre-existed would read as "stored" and silently shrink the resend.
    /// The resend itself may fail the same way — loop on
    /// [`ClientError::InsertInterrupted`] until it returns `Ok`.
    pub fn insert_bulk_resume(
        &mut self,
        objects: &[(ObjectId, Vector)],
    ) -> Result<(usize, CostReport), ClientError> {
        let mut costs = CostReport::default();
        let mut rt_elapsed = Duration::ZERO;
        let op_start = Instant::now();
        // Largest `lo` with objects[..lo] all stored; prefix-monotonicity
        // (batch-order server processing) makes the binary search sound.
        let mut lo = 0usize;
        let mut hi = objects.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let id = match objects.get(mid) {
                Some((id, _)) => *id,
                None => break,
            };
            if self.id_stored(id, &mut costs, &mut rt_elapsed)? {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        costs.client = op_start.elapsed().saturating_sub(rt_elapsed);
        self.total.merge(&costs);
        let remainder = objects.get(lo..).unwrap_or(&[]);
        if !remainder.is_empty() {
            let insert_costs = self.insert_bulk(remainder)?;
            costs.merge(&insert_costs);
        }
        Ok((lo, costs))
    }

    /// True when the wire lower bounds of the next candidate set are sound
    /// metric bounds the client may exit on (distance routing only; the
    /// promise penalty shipped under permutation routing is a heuristic).
    fn lazy_enabled(&self) -> bool {
        match self.config.lazy_refine {
            LazyRefine::Off => false,
            LazyRefine::Sound => self.config.strategy == RoutingStrategy::Distances,
            LazyRefine::Heuristic => true,
        }
    }

    /// Maps a true client-side distance into the wire-bound space for
    /// comparisons against server lower bounds. Without a transform this is
    /// the identity. With the level-4 transform the server's bounds live in
    /// `T`-space where `|T(x) − T(y)| ≤ s_max·|x − y| ≤ s_max·d(q, o)`, so
    /// `s_max·d` (exactly [`DistanceTransform::server_radius`]) is the
    /// sound comparison value — the same inflation the range query ships.
    fn to_wire_distance(&self, d: f64) -> f64 {
        match &self.config.transform {
            Some(t) => t.server_radius(d),
            None => d,
        }
    }

    /// Fetches the sealed payloads of up to `limit` still-missing
    /// candidates starting at header position `from` — one phase-2
    /// [`Request::FetchObjects`] round trip. The answer must mirror the
    /// request exactly: same ids, same order, same count. Any deviation
    /// (duplicates, never-requested ids, drops, reorders) is a
    /// [`ClientError::FetchMismatch`]; payload *content* swaps behind
    /// correct ids are caught later by the id-bound MAC.
    #[allow(clippy::too_many_arguments)]
    fn fetch_payloads(
        &mut self,
        headers: &[CandidateHeader],
        payloads: &mut [Option<Vec<u8>>],
        from: usize,
        limit: usize,
        costs: &mut CostReport,
        rt_elapsed: &mut std::time::Duration,
    ) -> Result<(), ClientError> {
        let (ids, slots) = plan_fetch(headers, payloads, from, limit);
        if ids.is_empty() {
            return Ok(());
        }
        let resp = self.exchange(
            &Request::FetchObjects { ids: ids.clone() },
            costs,
            rt_elapsed,
        )?;
        let objects = match resp {
            Response::Objects(o) => o,
            other => return Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        };
        if objects.len() != ids.len() {
            return Err(ClientError::FetchMismatch(format!(
                "{} objects for {} requested ids",
                objects.len(),
                ids.len()
            )));
        }
        for ((obj, &want), &slot) in objects.into_iter().zip(&ids).zip(&slots) {
            if obj.id != want {
                return Err(ClientError::FetchMismatch(format!(
                    "server answered id {} where {want} was requested",
                    obj.id
                )));
            }
            payloads[slot] = Some(obj.payload);
        }
        costs.fetched += ids.len() as u64;
        costs.fetch_requests += 1;
        Ok(())
    }

    /// Phase-2 batch size at a stall on candidate position `stall`.
    ///
    /// Two regimes:
    ///
    /// * **Bound-guided** (`threshold = Some(τ)` — the current k-th wire
    ///   distance once the top-k heap is full, or the wire radius of a
    ///   range query): every candidate the query can still need lies in
    ///   the prefix where `suffix_min ≤ τ`, because τ only shrinks as more
    ///   candidates are processed. Fetch exactly up to its end: over-fetch
    ///   is bounded by how much τ still moves, and when the loop reaches
    ///   the end of the fetched prefix the (now smaller) τ is guaranteed
    ///   to fire the early exit — so the heap-full phase costs **one**
    ///   round trip.
    /// * **Heuristic** (no τ yet — top-k heap still filling): stage up to
    ///   `α·k` candidates total (minus the `stall` already staged), with
    ///   the configured floor; `grown` doubles on every such fetch.
    fn fetch_batch_size(
        &self,
        goal: RefineGoal,
        stall: usize,
        threshold: Option<f64>,
        suffix_min: &[f64],
        grown: &mut usize,
    ) -> usize {
        if let Some(tau) = threshold {
            // suffix_min is non-decreasing, so the needed prefix ends at
            // the first position whose remaining minimum exceeds τ.
            let end =
                suffix_min[stall..suffix_min.len() - 1].partition_point(|&m| m <= tau) + stall;
            return (end - stall).max(1);
        }
        let target = match goal {
            RefineGoal::TopK(k) => self.config.fetch_alpha.saturating_mul(k),
            // A range stall always carries its threshold (the wire
            // radius), so it never reaches the heuristic regime; the
            // floor below is the defensive fallback if that invariant
            // ever changes.
            RefineGoal::Within { .. } => 0,
        };
        let batch = target
            .saturating_sub(stall)
            .max(self.config.fetch_min_batch)
            .max(*grown)
            .max(1);
        *grown = batch.saturating_mul(2);
        batch
    }

    /// Candidate refinement (Alg. 2 lines 12–15), decrypt-on-demand over a
    /// two-phase candidate list.
    ///
    /// Candidates are processed in wire order; payloads beyond the inlined
    /// phase-1 prefix are pulled with [`Request::FetchObjects`] in adaptive
    /// batches (heuristic `α·k` + geometric growth while the top-k heap
    /// fills, then bound-guided — see [`Self::fetch_batch_size`]) **inside**
    /// the same loop, so phase 2 only ever runs when the early exit has not
    /// fired.
    /// When lazy refinement is enabled the loop stops as soon as the
    /// *minimum remaining* lower bound (a suffix-min pre-pass, so a
    /// mis-sorted or malicious server can cost performance but never
    /// correctness) proves that no further candidate can enter the result:
    ///
    /// * k-NN: the k-th true distance found so far is strictly below every
    ///   remaining bound (strict, so ties at the k-th distance are still
    ///   resolved exactly as eager refinement resolves them);
    /// * range: every remaining bound exceeds the (wire-space) radius.
    ///
    /// The exit condition never looks at *which* payloads are present, and
    /// the decision to fetch happens strictly after the exit check for the
    /// same position — so answers (and the decrypted count) are
    /// byte-identical whatever prefix the server inlined.
    ///
    /// Undecodable candidates (valid MAC, garbage object — a buggy
    /// authorized writer) are skipped and recorded in the [`CostReport`];
    /// the query fails only if the damage is visible in the answer (fewer
    /// than `k` neighbors, or any bad candidate on the range path, where a
    /// lost candidate could silently drop a true result). Authentication
    /// failures still abort immediately: they are active tampering, and
    /// skipping would let a malicious server censor chosen neighbors
    /// undetected. Every unseal verifies the payload against its candidate
    /// id (MAC associated data), so payloads swapped between ids abort too.
    ///
    /// The loop is timed as one phase into `costs.decryption`, with the
    /// wall time spent inside phase-2 round trips subtracted — transport
    /// time is accounted where it always was, in `server`/`communication`
    /// via the exchange deltas.
    fn refine(
        &mut self,
        q: &Vector,
        list: CandidateList,
        costs: &mut CostReport,
        goal: RefineGoal,
        rt_elapsed: &mut std::time::Duration,
    ) -> Result<Vec<Neighbor>, ClientError> {
        let mut task = self.start_refine(q, list, costs, goal);
        while let Some((from, limit)) = self.advance_refine(&mut task)? {
            self.fetch_payloads(
                &task.headers,
                &mut task.payloads,
                from,
                limit,
                costs,
                rt_elapsed,
            )?;
        }
        self.settle_refine(task, costs)
    }

    /// Opens a [`RefineTask`] over a phase-1 candidate list: counts the
    /// candidates, stages the inlined payload prefix and runs the
    /// suffix-min pre-pass. No I/O and no decryption happen here.
    fn start_refine<'a>(
        &self,
        q: &'a Vector,
        list: CandidateList,
        costs: &mut CostReport,
        goal: RefineGoal,
    ) -> RefineTask<'a> {
        let start = Instant::now();
        let CandidateList { headers, payloads } = list;
        costs.candidates += headers.len() as u64;
        let mut payloads: Vec<Option<Vec<u8>>> = payloads.into_iter().map(Some).collect();
        // The codec guarantees payloads.len() <= headers.len().
        payloads.resize_with(headers.len(), || None);
        let lazy = self.lazy_enabled();
        // Minimum lower bound over headers[i..] — the value any sound
        // early exit must beat, whatever order the server sent. Non-finite
        // bounds collapse to 0.0: `f64::min` would silently *ignore* a NaN
        // operand, letting a malicious server defeat the pre-pass with NaN
        // bounds and skip true results; 0.0 instead forces decryption.
        let suffix_min: Vec<f64> = if lazy {
            let mut m = vec![f64::INFINITY; headers.len() + 1];
            for (i, h) in headers.iter().enumerate().rev() {
                let lb = if h.lower_bound.is_finite() {
                    h.lower_bound
                } else {
                    0.0
                };
                m[i] = m[i + 1].min(lb);
            }
            m
        } else {
            Vec::new()
        };
        RefineTask {
            q,
            goal,
            headers,
            payloads,
            suffix_min,
            lazy,
            // Lazy tasks never run the eager whole-remainder prefetch.
            eager_prefetched: lazy,
            heap: BinaryHeap::new(),
            cursor: 0,
            grown: 0,
            decrypted: 0,
            bad: 0,
            first_bad: None,
            loop_time: start.elapsed(),
        }
    }

    /// Resumes a task's refinement loop. Returns `Ok(Some((from, limit)))`
    /// when the loop needs payloads it does not hold — the stall's fetch
    /// plan, exactly what the pre-refactor loop passed to
    /// [`Self::fetch_payloads`] — and `Ok(None)` when the task ran to its
    /// early exit or the end of the candidate list. An `Err` (tampering /
    /// key mismatch) abandons the task: like the pre-refactor early
    /// return, none of its counters reach the cost report.
    fn advance_refine(
        &self,
        task: &mut RefineTask<'_>,
    ) -> Result<Option<(usize, usize)>, ClientError> {
        let start = Instant::now();
        let stall = self.advance_refine_loop(task);
        task.loop_time += start.elapsed();
        stall
    }

    fn advance_refine_loop(
        &self,
        task: &mut RefineTask<'_>,
    ) -> Result<Option<(usize, usize)>, ClientError> {
        if !task.eager_prefetched {
            // Eager refinement decrypts everything, so stage the whole
            // remainder in one phase-2 round trip instead of adaptive
            // batches.
            task.eager_prefetched = true;
            if task.payloads.iter().any(Option::is_none) {
                return Ok(Some((0, task.headers.len().max(1))));
            }
        }
        while task.cursor < task.headers.len() {
            let i = task.cursor;
            if task.lazy {
                let remaining = task.suffix_min[i];
                let done = match task.goal {
                    // lb > τ ⇒ every remaining true distance exceeds the
                    // radius; `>` keeps exact-boundary objects.
                    RefineGoal::Within { wire_radius, .. } => remaining > wire_radius,
                    // Strict `<`: a remaining candidate can then only have
                    // d > d_k, so it can neither enter the top-k nor tie.
                    RefineGoal::TopK(k) => {
                        k == 0
                            || (task.heap.len() == k
                                // PANIC-SAFE: guarded by `heap.len() == k` with `k > 0` on this branch.
                                && self.to_wire_distance(task.heap.peek().expect("k > 0").0)
                                    < remaining)
                    }
                };
                if done {
                    break;
                }
            }
            if task.payloads[i].is_none() {
                // Phase 2: this candidate survived the exit check, so its
                // payload — and, speculatively, its batch's — is really
                // needed. The threshold the exit compares against also
                // tells us how far the need can possibly extend.
                let threshold = match task.goal {
                    RefineGoal::Within { wire_radius, .. } => Some(wire_radius),
                    RefineGoal::TopK(k) if k > 0 && task.heap.len() == k => {
                        // PANIC-SAFE: arm guard requires `heap.len() == k` and `k > 0`.
                        Some(self.to_wire_distance(task.heap.peek().expect("heap full").0))
                    }
                    RefineGoal::TopK(_) => None,
                };
                let batch = self.fetch_batch_size(
                    task.goal,
                    i,
                    threshold,
                    &task.suffix_min,
                    &mut task.grown,
                );
                return Ok(Some((i, batch)));
            }
            task.cursor += 1;
            let id = task.headers[i].id;
            // PANIC-SAFE: the `is_none()` branch above stalled until the driver fetched this slot.
            let payload = task.payloads[i].take().expect("payload just fetched");
            // Alg. 2 line 13: decrypt. An authentication failure is active
            // tampering (or a key mismatch) — that aborts immediately, as
            // silently dropping a tampered-with candidate would let a
            // malicious server censor specific neighbors undetected. Only
            // *decode* failures below (a buggy authorized writer) are
            // skip-and-record.
            task.decrypted += 1;
            let plain = self
                .key
                .cipher()
                .unseal_with_aad(&payload, &id.to_le_bytes())?;
            let Ok((o, _)) = Vector::decode(&plain) else {
                task.bad += 1;
                task.first_bad.get_or_insert(ClientError::BadObject(id));
                continue;
            };
            // Alg. 2 line 14: true distance. A non-finite distance means the
            // payload decoded to garbage (e.g. NaN coordinates) — reject it
            // instead of letting it poison the order.
            let d = self.metric.distance(task.q, &o);
            if !d.is_finite() {
                task.bad += 1;
                task.first_bad.get_or_insert(ClientError::BadObject(id));
                continue;
            }
            match task.goal {
                RefineGoal::Within { radius, .. } => {
                    if d <= radius {
                        task.heap.push(WorstNeighbor(d, id));
                    }
                }
                RefineGoal::TopK(k) => {
                    if k > 0 {
                        task.heap.push(WorstNeighbor(d, id));
                        if task.heap.len() > k {
                            task.heap.pop();
                        }
                    }
                }
            }
        }
        Ok(None)
    }

    /// Closes a finished task: sorts the surviving heap into the answer
    /// and books the task's counters and loop time into the cost report.
    fn settle_refine(
        &self,
        task: RefineTask<'_>,
        costs: &mut CostReport,
    ) -> Result<Vec<Neighbor>, ClientError> {
        let start = Instant::now();
        // Worst-of-the-best-k ordering matches the eager sort exactly:
        // by true distance, ties by id.
        let result: Vec<Neighbor> = task
            .heap
            .into_sorted_vec()
            .into_iter()
            .map(|WorstNeighbor(d, id)| (ObjectId(id), d))
            .collect();
        costs.decrypted += task.decrypted;
        costs.bad_candidates += task.bad;
        costs.decryption += task.loop_time + start.elapsed();
        if let Some(e) = task.first_bad {
            let damaging = match task.goal {
                // A skipped range candidate could have been a true result.
                RefineGoal::Within { .. } => true,
                RefineGoal::TopK(k) => result.len() < k,
            };
            if damaging {
                return Err(e);
            }
        }
        Ok(result)
    }

    /// Precise range query `R(q, r)` (Alg. 2, precise branch + Alg. 3 on the
    /// server). Requires the distance strategy.
    pub fn range(
        &mut self,
        q: &Vector,
        radius: f64,
    ) -> Result<(Vec<Neighbor>, CostReport), ClientError> {
        if self.config.strategy != RoutingStrategy::Distances {
            return Err(ClientError::NeedsDistances);
        }
        let mut costs = CostReport::default();
        let mut rt_elapsed = std::time::Duration::ZERO;
        let op_start = Instant::now();
        let mut dist = Stopwatch::new();
        let before_dc = self.metric.count();

        let ds = dist.time(|| self.key.pivot_distances(self.metric.as_ref(), q));
        let (wire_ds, wire_radius) = match &self.config.transform {
            Some(t) => (t.apply_all(&ds), t.server_radius(radius)),
            None => (ds.clone(), radius),
        };
        // Full f64 on the wire: the server prunes with exactly the values
        // the client refines with, so objects at distance exactly `radius`
        // survive (the paper's *precise* range guarantee).
        let request = Request::Range {
            distances: wire_ds,
            radius: wire_radius,
        };
        let resp = self.exchange(&request, &mut costs, &mut rt_elapsed)?;
        let candidates = match resp {
            Response::CandidateList(list) => list,
            other => return Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        };
        costs.distance = dist.total();
        let result = self.refine(
            q,
            candidates,
            &mut costs,
            RefineGoal::Within {
                radius,
                wire_radius,
            },
            &mut rt_elapsed,
        )?;
        costs.distance_computations = self.metric.count() - before_dc;
        costs.client = op_start.elapsed().saturating_sub(rt_elapsed);
        self.total.merge(&costs);
        Ok((result, costs))
    }

    /// Approximate k-NN (Alg. 2 approximate branch + Alg. 4 on the server):
    /// the server returns a pre-ranked candidate set of `cand_size` sealed
    /// objects; the client refines and keeps the best `k`.
    pub fn knn_approx(
        &mut self,
        q: &Vector,
        k: usize,
        cand_size: usize,
    ) -> Result<(Vec<Neighbor>, CostReport), ClientError> {
        let mut costs = CostReport::default();
        let mut rt_elapsed = std::time::Duration::ZERO;
        let op_start = Instant::now();
        let mut dist = Stopwatch::new();
        let before_dc = self.metric.count();

        let ds = dist.time(|| self.key.pivot_distances(self.metric.as_ref(), q));
        let routing = self.routing_for(&ds);
        let request = Request::ApproxKnn {
            routing,
            cand_size: cand_size as u32,
        };
        let resp = self.exchange(&request, &mut costs, &mut rt_elapsed)?;
        let candidates = match resp {
            Response::CandidateList(list) => list,
            other => return Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        };
        costs.distance = dist.total();
        let result = self.refine(
            q,
            candidates,
            &mut costs,
            RefineGoal::TopK(k),
            &mut rt_elapsed,
        )?;
        costs.distance_computations = self.metric.count() - before_dc;
        costs.client = op_start.elapsed().saturating_sub(rt_elapsed);
        self.total.merge(&costs);
        Ok((result, costs))
    }

    /// Approximate k-NN for a whole batch of queries in **one round trip**
    /// (the batch query API): the server answers with one pre-ranked
    /// candidate set per query; the client refines each locally. Amortizes
    /// per-message latency — on LAN/WAN deployments this is the dominant
    /// per-query cost — and gives a concurrent server a whole batch to
    /// schedule at once.
    ///
    /// The answer carries **one `Result` per query**: a query that fails on
    /// the server (its own slot in the wire response) or during its own
    /// refinement no longer discards its siblings' results. The outer
    /// `Result` still covers batch-level failures — transport errors and
    /// malformed responses.
    ///
    /// Phase-2 fetches are **coalesced across the batch**: all queries
    /// refine as suspended [`RefineTask`]s in lock-step rounds, and each
    /// round ships every stalled query's fetch plan as one
    /// [`Request::FetchObjects`] — per-query `fetched`/`decrypted` costs
    /// are identical to refining each query alone, but the round-trip
    /// count drops from the sum of per-query fetches to the number of
    /// rounds (typically one or two).
    ///
    /// The wire format carries at most `u16::MAX` queries per message;
    /// larger batches are transparently split into multiple round trips.
    #[allow(clippy::type_complexity)]
    pub fn knn_approx_batch(
        &mut self,
        queries: &[Vector],
        k: usize,
        cand_size: usize,
    ) -> Result<(Vec<Result<Vec<Neighbor>, ClientError>>, CostReport), ClientError> {
        let mut costs = CostReport::default();
        let mut rt_elapsed = std::time::Duration::ZERO;
        let op_start = Instant::now();
        let mut dist = Stopwatch::new();
        let before_dc = self.metric.count();
        let mut results = Vec::with_capacity(queries.len());

        for chunk in queries.chunks(u16::MAX as usize).filter(|c| !c.is_empty()) {
            let batch: Vec<crate::protocol::KnnQuery> = chunk
                .iter()
                .map(|q| {
                    let ds = dist.time(|| self.key.pivot_distances(self.metric.as_ref(), q));
                    crate::protocol::KnnQuery {
                        routing: self.routing_for(&ds),
                        cand_size: cand_size as u32,
                    }
                })
                .collect();
            let resp = self.exchange(&Request::BatchKnn(batch), &mut costs, &mut rt_elapsed)?;
            let sets = match resp {
                Response::CandidateSets(sets) if sets.len() == chunk.len() => sets,
                Response::CandidateSets(sets) => {
                    return Err(ClientError::UnexpectedResponse(format!(
                        "{} candidate sets for {} queries",
                        sets.len(),
                        chunk.len()
                    )))
                }
                other => return Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
            };
            // Open one refinement task per successful slot; failed slots
            // settle immediately. Tasks then run in **rounds**: every task
            // advances to its next stall (or to completion), the stalled
            // tasks' fetch plans are concatenated into ONE phase-2
            // `FetchObjects` round trip, the answer is split back per task,
            // and the next round begins. Each task's decision sequence —
            // which candidates it decrypts, which ids it fetches — is
            // exactly the solo path's, so `fetched`/`decrypted` accounting
            // is unchanged; only the round-trip count drops.
            let mut tasks: Vec<Option<RefineTask<'_>>> = Vec::with_capacity(chunk.len());
            let mut outcomes: Vec<Option<Result<Vec<Neighbor>, ClientError>>> =
                Vec::with_capacity(chunk.len());
            for (q, per_query) in chunk.iter().zip(sets) {
                match per_query {
                    Ok(list) => {
                        tasks.push(Some(self.start_refine(
                            q,
                            list,
                            &mut costs,
                            RefineGoal::TopK(k),
                        )));
                        outcomes.push(None);
                    }
                    Err(msg) => {
                        tasks.push(None);
                        outcomes.push(Some(Err(ClientError::Server(msg))));
                    }
                }
            }
            loop {
                // Advance every live task; collect the stalled ones' plans.
                let mut plans: Vec<(usize, Vec<u64>, Vec<usize>)> = Vec::new();
                for si in 0..tasks.len() {
                    let Some(task) = tasks[si].as_mut() else {
                        continue;
                    };
                    match self.advance_refine(task) {
                        // Tampering/key mismatch aborts this slot only — a
                        // malicious answer for one query must not censor
                        // its siblings' results.
                        Err(e) => {
                            tasks[si] = None;
                            outcomes[si] = Some(Err(e));
                        }
                        Ok(None) => {
                            // PANIC-SAFE: `as_mut` above proved the slot is occupied.
                            let task = tasks[si].take().expect("task just advanced");
                            outcomes[si] = Some(self.settle_refine(task, &mut costs));
                        }
                        Ok(Some((from, limit))) => {
                            let (ids, positions) =
                                plan_fetch(&task.headers, &task.payloads, from, limit);
                            // A stall always names a missing payload, so the
                            // plan is never empty; fold a violation into the
                            // slot rather than looping forever.
                            if ids.is_empty() {
                                tasks[si] = None;
                                outcomes[si] = Some(Err(ClientError::UnexpectedResponse(
                                    "refinement stalled with nothing to fetch".into(),
                                )));
                            } else {
                                plans.push((si, ids, positions));
                            }
                        }
                    }
                }
                if plans.is_empty() {
                    break;
                }
                // One coalesced phase-2 round trip for every stalled
                // sibling. The server's answer must mirror the
                // concatenated id list exactly; the total count is checked
                // here, per-id order per task below.
                let all_ids: Vec<u64> = plans
                    .iter()
                    .flat_map(|(_, ids, _)| ids.iter().copied())
                    .collect();
                let total = all_ids.len();
                let resp = self.exchange(
                    &Request::FetchObjects { ids: all_ids },
                    &mut costs,
                    &mut rt_elapsed,
                )?;
                let objects = match resp {
                    Response::Objects(o) => o,
                    other => return Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
                };
                if objects.len() != total {
                    return Err(ClientError::FetchMismatch(format!(
                        "{} objects for {total} requested ids",
                        objects.len(),
                    )));
                }
                costs.fetch_requests += 1;
                let mut supplied = objects.into_iter();
                for (si, ids, positions) in plans {
                    let mut mismatch: Option<ClientError> = None;
                    for (&want, &pos) in ids.iter().zip(&positions) {
                        // Consume this plan's span of the concatenated
                        // answer fully even after a mismatch, so later
                        // plans stay aligned.
                        let Some(obj) = supplied.next() else {
                            // Unreachable: the total count was checked.
                            mismatch.get_or_insert(ClientError::FetchMismatch(
                                "fetch answer exhausted mid-batch".into(),
                            ));
                            continue;
                        };
                        if mismatch.is_some() {
                            continue;
                        }
                        if obj.id != want {
                            mismatch = Some(ClientError::FetchMismatch(format!(
                                "server answered id {} where {want} was requested",
                                obj.id
                            )));
                            continue;
                        }
                        if let Some(task) = tasks[si].as_mut() {
                            task.payloads[pos] = Some(obj.payload);
                        }
                    }
                    match mismatch {
                        Some(e) => {
                            tasks[si] = None;
                            outcomes[si] = Some(Err(e));
                        }
                        None => costs.fetched += ids.len() as u64,
                    }
                }
            }
            results.extend(outcomes.into_iter().map(|o| {
                // Every slot settled: the round loop only exits when no
                // task is live.
                o.unwrap_or_else(|| {
                    Err(ClientError::UnexpectedResponse(
                        "refinement never completed".into(),
                    ))
                })
            }));
        }
        // `costs.distance` covers only the query–pivot phase; refine()'s
        // loop time (including its metric evaluations) lands in
        // `costs.decryption` as one phase.
        costs.distance += dist.total();
        costs.distance_computations = self.metric.count() - before_dc;
        costs.client = op_start.elapsed().saturating_sub(rt_elapsed);
        self.total.merge(&costs);
        Ok((results, costs))
    }

    /// Precise k-NN (paper §4.2): approximate pass estimates `ρ_k`, then the
    /// precise range query `R(q, ρ_k)` completes the answer. Requires the
    /// distance strategy for the range leg.
    pub fn knn_precise(
        &mut self,
        q: &Vector,
        k: usize,
    ) -> Result<(Vec<Neighbor>, CostReport), ClientError> {
        if self.config.strategy != RoutingStrategy::Distances {
            return Err(ClientError::NeedsDistances);
        }
        let seed_cand = (4 * k).max(32);
        let (approx, mut costs) = self.knn_approx(q, k, seed_cand)?;
        let rho_k = if approx.len() >= k {
            approx[k - 1].1
        } else {
            match approx.last() {
                Some(x) => x.1,
                None => return Ok((Vec::new(), costs)),
            }
        };
        let (mut in_ball, range_costs) = self.range(q, rho_k)?;
        costs.merge(&range_costs);
        in_ball.truncate(k);
        Ok((in_ball, costs))
    }

    /// Downloads and decrypts the entire outsourced collection — the data
    /// owner's path for audits and key rotation. Returns `(id, object)`
    /// pairs sorted by id.
    pub fn export_all(&mut self) -> Result<(Vec<(ObjectId, Vector)>, CostReport), ClientError> {
        let mut costs = CostReport::default();
        let mut rt = std::time::Duration::ZERO;
        let op_start = Instant::now();
        let resp = self.exchange(&Request::ExportAll, &mut costs, &mut rt)?;
        let candidates = match resp {
            Response::Candidates(c) => c,
            other => return Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        };
        let mut dec = Stopwatch::new();
        costs.candidates = candidates.len() as u64;
        costs.decrypted = candidates.len() as u64;
        let mut out = Vec::with_capacity(candidates.len());
        for c in candidates {
            let plain = dec.time(|| {
                self.key
                    .cipher()
                    .unseal_with_aad(&c.payload, &c.id.to_le_bytes())
            })?;
            let (o, _) = Vector::decode(&plain).map_err(|_| ClientError::BadObject(c.id))?;
            out.push((ObjectId(c.id), o));
        }
        out.sort_by_key(|(id, _)| *id);
        costs.decryption = dec.total();
        costs.client = op_start.elapsed().saturating_sub(rt);
        self.total.merge(&costs);
        Ok((out, costs))
    }

    /// Key rotation (client revocation): the data owner exports the
    /// collection under the old key and re-outsources it to a *fresh*
    /// server under `new_key`. The old key — and every client holding it —
    /// can no longer read the new deployment's payloads.
    ///
    /// The pivot set may change too (full revocation of the routing
    /// knowledge); pass the same pivots to keep cell structure comparable.
    pub fn rekey_into<M2: Metric<Vector>, T2: Transport>(
        &mut self,
        new_cloud: &mut EncryptedClient<M2, T2>,
        bulk: usize,
    ) -> Result<CostReport, ClientError> {
        let (objects, mut costs) = self.export_all()?;
        for chunk in objects.chunks(bulk.max(1)) {
            costs.merge(&new_cloud.insert_bulk(chunk)?);
        }
        Ok(costs)
    }

    /// Server tree info (no query content leaves the client).
    pub fn server_info(&mut self) -> Result<(u64, u32, u32), ClientError> {
        let mut costs = CostReport::default();
        let mut rt = std::time::Duration::ZERO;
        match self.exchange(&Request::Info, &mut costs, &mut rt)? {
            Response::Info {
                entries,
                leaves,
                depth,
            } => Ok((entries, leaves, depth)),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Health probe (ops surface, wire v2): the server answers from
    /// pre-aggregated atomics without taking the index lock, so this
    /// stays fast even while a bulk insert holds the write lock.
    pub fn health(&mut self) -> Result<ServerHealth, ClientError> {
        let mut costs = CostReport::default();
        let mut rt = std::time::Duration::ZERO;
        match self.exchange(&Request::Health, &mut costs, &mut rt)? {
            Response::Health {
                status,
                protocol,
                entries,
                shards,
                uptime_nanos,
            } => Ok(ServerHealth {
                status,
                protocol,
                entries,
                shards,
                uptime_nanos,
            }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Telemetry snapshot (ops surface, wire v2): the server's metric
    /// registry, search totals and slow-query log rendered in the
    /// plaintext exposition format. Like [`EncryptedClient::health`],
    /// answered without the index lock.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let mut costs = CostReport::default();
        let mut rt = std::time::Duration::ZERO;
        match self.exchange(&Request::MetricsSnapshot, &mut costs, &mut rt)? {
            Response::MetricsSnapshot(text) => Ok(text),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}

/// Decoded [`Response::Health`] as returned by [`EncryptedClient::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerHealth {
    /// `0` = serving; nonzero values reserved for degraded states.
    pub status: u8,
    /// The server's wire protocol version.
    pub protocol: u32,
    /// Entries resident across all shards.
    pub entries: u64,
    /// Shard count (`1` for an unsharded server).
    pub shards: u32,
    /// Nanoseconds since the server started its telemetry registry.
    pub uptime_nanos: u64,
}
