//! Wire protocol between the encryption client and the similarity cloud.
//!
//! Everything the server ever receives is in this module — auditing it
//! against the paper's privacy claim (§4.3) is easy: requests carry pivot
//! *permutations* or *distances* plus sealed payloads; responses carry
//! sealed payloads. Pivots, plaintext objects and the metric never appear.
//!
//! Binary layout (little-endian):
//!
//! ```text
//! request  := 0x01 u32 n { u32 len; entry }*n           bulk insert
//!           | 0x02 u16 n { f64 }*n f64 radius           precise range
//!           | 0x03 routing u32 cand_size                approx k-NN
//!           | 0x04                                      server info
//!           | 0x05                                      export all
//!           | 0x06 u16 n { routing; u32 cand_size }*n   batched approx k-NN
//! response := 0x01 u32 inserted_count
//!           | 0x02 u32 n { u64 id; f64 lb;
//!                          u32 len; bytes }*n           candidate set
//!           | 0x03 u16 len utf8                         error
//!           | 0x04 u64 entries; u32 leaves; u32 depth   info
//!           | 0x05 u16 n { candidate set }*n            batched candidate sets
//!           | 0x06 u32 inserted; u16 len utf8           partial-insert error
//! ```
//!
//! Range query distances travel as `f64`: the server's pruning rules and
//! the client's refinement both compute in `f64`, and a narrower wire type
//! would let boundary objects (distance exactly `radius`) be pruned
//! server-side, breaking the precise range guarantee.
//!
//! Every candidate carries its server-computed **lower bound** `lb` and
//! candidate sets travel sorted by it ascending, enabling the client's
//! decrypt-on-demand refinement (stop unsealing once the bound alone rules
//! the rest out). The bound is derived from routing information the server
//! already holds, so shipping it leaks nothing new.

use simcloud_mindex::{IndexEntry, Routing};

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Bulk insert of encrypted entries (Alg. 1; the paper's construction
    /// phase uses bulks of 1000).
    Insert(Vec<IndexEntry>),
    /// Precise range search (Alg. 3): query–pivot distances + radius.
    Range {
        /// Query–pivot distances (full `f64` on the wire; see module docs).
        distances: Vec<f64>,
        /// Query radius.
        radius: f64,
    },
    /// Approximate k-NN (Alg. 4): routing info + requested candidate count.
    ApproxKnn {
        /// Query routing: permutation (less leakage) or distances.
        routing: Routing,
        /// Candidate set size `CandSize`.
        cand_size: u32,
    },
    /// Server diagnostics (tree shape); carries no query information.
    Info,
    /// Export every sealed entry (data-owner operation used for key
    /// rotation / client revocation). The response is sealed blobs — the
    /// server still learns nothing, and a non-owner requester only obtains
    /// what a server compromise would yield anyway (§4.3 threat model).
    ExportAll,
    /// Many approximate k-NN queries in one round trip (the batch query
    /// API): the server answers with one candidate set per query, in order.
    /// Amortizes per-message latency — the dominant cost on LAN/WAN links —
    /// and lets a concurrent server fan the batch out internally.
    /// The wire count is `u16`, so one message carries at most `u16::MAX`
    /// queries; `EncryptedClient::knn_approx_batch` chunks larger batches.
    BatchKnn(Vec<KnnQuery>),
}

/// One query of a [`Request::BatchKnn`] batch — same fields as
/// [`Request::ApproxKnn`].
#[derive(Debug, Clone, PartialEq)]
pub struct KnnQuery {
    /// Query routing: permutation (less leakage) or distances.
    pub routing: Routing,
    /// Candidate set size `CandSize`.
    pub cand_size: u32,
}

/// One candidate in a response: the id, the server's lower bound on the
/// query–object distance, and the sealed object — no routing info travels
/// back (the client recomputes true distances after decryption).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// External object id.
    pub id: u64,
    /// Server-computed lower bound on `d(q, o)` in the wire distance space
    /// (a sound pivot-filtering bound under distance routing; the heuristic
    /// cell-promise penalty under permutation routing). Candidate sets are
    /// sorted by this value ascending.
    pub lower_bound: f64,
    /// Sealed (encrypted) object bytes.
    pub payload: Vec<u8>,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Insert acknowledgement with the number of stored entries.
    Inserted(u32),
    /// Pre-ranked candidate set `S_C`.
    Candidates(Vec<Candidate>),
    /// Server-side failure (storage, malformed request, …).
    Error(String),
    /// Server info: entries, leaf cells, max tree depth.
    Info {
        /// Indexed entries.
        entries: u64,
        /// Leaf cell count.
        leaves: u32,
        /// Maximum tree depth.
        depth: u32,
    },
    /// One candidate set per query of a [`Request::BatchKnn`], in order.
    CandidateSets(Vec<Vec<Candidate>>),
    /// A bulk insert failed mid-batch: `inserted` entries of the batch
    /// prefix **are stored** — the client needs this count to know what
    /// landed (bulk inserts are not atomic).
    InsertError {
        /// Entries of the batch prefix that were stored before the failure.
        inserted: u32,
        /// Failure description.
        message: String,
    },
}

/// Protocol decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err(msg: &str) -> CodecError {
    CodecError(msg.into())
}

/// Appends `u32 n { u64 id; f64 lb; u32 len; bytes }*n` (the candidate-list
/// layout shared by [`Response::Candidates`] and [`Response::CandidateSets`]).
fn encode_candidates(out: &mut Vec<u8>, cands: &[Candidate]) {
    out.extend_from_slice(&(cands.len() as u32).to_le_bytes());
    for c in cands {
        out.extend_from_slice(&c.id.to_le_bytes());
        out.extend_from_slice(&c.lower_bound.to_le_bytes());
        out.extend_from_slice(&(c.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&c.payload);
    }
}

/// Decodes one candidate list starting at `buf[off]`; returns the list and
/// the offset just past it.
fn decode_candidates(buf: &[u8], mut off: usize) -> Result<(Vec<Candidate>, usize), CodecError> {
    if buf.len() < off + 4 {
        return Err(err("candidates header truncated"));
    }
    let n = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
    off += 4;
    let mut cands = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        if buf.len() < off + 20 {
            return Err(err("candidate header truncated"));
        }
        let id = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
        let lower_bound = f64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap());
        let len = u32::from_le_bytes(buf[off + 16..off + 20].try_into().unwrap()) as usize;
        off += 20;
        if buf.len() < off + len {
            return Err(err("candidate payload truncated"));
        }
        cands.push(Candidate {
            id,
            lower_bound,
            payload: buf[off..off + len].to_vec(),
        });
        off += len;
    }
    Ok((cands, off))
}

/// Appends `u16 len || utf8` (truncating over-long messages).
fn encode_message(out: &mut Vec<u8>, msg: &str) {
    let bytes = msg.as_bytes();
    let n = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(n as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..n]);
}

impl Request {
    /// Encodes the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Insert(entries) => {
                out.push(0x01);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    let mut body = Vec::with_capacity(8 + e.encoded_len());
                    body.extend_from_slice(&e.id.to_le_bytes());
                    body.extend_from_slice(&e.encode_payload());
                    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
                    out.extend_from_slice(&body);
                }
            }
            Request::Range { distances, radius } => {
                out.push(0x02);
                out.extend_from_slice(&(distances.len() as u16).to_le_bytes());
                for d in distances {
                    out.extend_from_slice(&d.to_le_bytes());
                }
                out.extend_from_slice(&radius.to_le_bytes());
            }
            Request::ApproxKnn { routing, cand_size } => {
                out.push(0x03);
                routing.encode(&mut out);
                out.extend_from_slice(&cand_size.to_le_bytes());
            }
            Request::Info => out.push(0x04),
            Request::ExportAll => out.push(0x05),
            Request::BatchKnn(queries) => {
                out.push(0x06);
                out.extend_from_slice(&(queries.len() as u16).to_le_bytes());
                for q in queries {
                    q.routing.encode(&mut out);
                    out.extend_from_slice(&q.cand_size.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a request.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        match buf.first().ok_or_else(|| err("empty request"))? {
            0x01 => {
                if buf.len() < 5 {
                    return Err(err("insert header truncated"));
                }
                let n = u32::from_le_bytes(buf[1..5].try_into().unwrap()) as usize;
                let mut entries = Vec::with_capacity(n);
                let mut off = 5;
                for _ in 0..n {
                    if buf.len() < off + 4 {
                        return Err(err("insert entry length truncated"));
                    }
                    let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
                    off += 4;
                    if buf.len() < off + len || len < 8 {
                        return Err(err("insert entry body truncated"));
                    }
                    let id = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                    let entry = IndexEntry::decode_payload(id, &buf[off + 8..off + len])
                        .ok_or_else(|| err("insert entry undecodable"))?;
                    entries.push(entry);
                    off += len;
                }
                if off != buf.len() {
                    return Err(err("trailing bytes after insert"));
                }
                Ok(Request::Insert(entries))
            }
            0x02 => {
                if buf.len() < 3 {
                    return Err(err("range header truncated"));
                }
                let n = u16::from_le_bytes([buf[1], buf[2]]) as usize;
                let need = 3 + 8 * n + 8;
                if buf.len() != need {
                    return Err(err("range body size mismatch"));
                }
                let mut distances = Vec::with_capacity(n);
                for i in 0..n {
                    let off = 3 + 8 * i;
                    distances.push(f64::from_le_bytes(buf[off..off + 8].try_into().unwrap()));
                }
                let radius = f64::from_le_bytes(buf[3 + 8 * n..3 + 8 * n + 8].try_into().unwrap());
                Ok(Request::Range { distances, radius })
            }
            0x03 => {
                let (routing, used) =
                    Routing::decode(&buf[1..]).ok_or_else(|| err("knn routing undecodable"))?;
                let off = 1 + used;
                if buf.len() != off + 4 {
                    return Err(err("knn cand_size truncated"));
                }
                let cand_size = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
                Ok(Request::ApproxKnn { routing, cand_size })
            }
            0x04 => {
                if buf.len() != 1 {
                    return Err(err("info request carries payload"));
                }
                Ok(Request::Info)
            }
            0x05 => {
                if buf.len() != 1 {
                    return Err(err("export request carries payload"));
                }
                Ok(Request::ExportAll)
            }
            0x06 => {
                if buf.len() < 3 {
                    return Err(err("batch header truncated"));
                }
                let n = u16::from_le_bytes([buf[1], buf[2]]) as usize;
                let mut queries = Vec::with_capacity(n);
                let mut off = 3;
                for _ in 0..n {
                    let (routing, used) = Routing::decode(&buf[off..])
                        .ok_or_else(|| err("batch routing undecodable"))?;
                    off += used;
                    if buf.len() < off + 4 {
                        return Err(err("batch cand_size truncated"));
                    }
                    let cand_size = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
                    off += 4;
                    queries.push(KnnQuery { routing, cand_size });
                }
                if off != buf.len() {
                    return Err(err("trailing bytes after batch"));
                }
                Ok(Request::BatchKnn(queries))
            }
            t => Err(err(&format!("unknown request tag {t}"))),
        }
    }
}

impl Response {
    /// Encodes the response.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Inserted(n) => {
                out.push(0x01);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Response::Candidates(cands) => {
                out.push(0x02);
                encode_candidates(&mut out, cands);
            }
            Response::Error(msg) => {
                out.push(0x03);
                encode_message(&mut out, msg);
            }
            Response::Info {
                entries,
                leaves,
                depth,
            } => {
                out.push(0x04);
                out.extend_from_slice(&entries.to_le_bytes());
                out.extend_from_slice(&leaves.to_le_bytes());
                out.extend_from_slice(&depth.to_le_bytes());
            }
            Response::CandidateSets(sets) => {
                out.push(0x05);
                out.extend_from_slice(&(sets.len() as u16).to_le_bytes());
                for cands in sets {
                    encode_candidates(&mut out, cands);
                }
            }
            Response::InsertError { inserted, message } => {
                out.push(0x06);
                out.extend_from_slice(&inserted.to_le_bytes());
                encode_message(&mut out, message);
            }
        }
        out
    }

    /// Decodes a response.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        match buf.first().ok_or_else(|| err("empty response"))? {
            0x01 => {
                if buf.len() != 5 {
                    return Err(err("inserted ack size mismatch"));
                }
                Ok(Response::Inserted(u32::from_le_bytes(
                    buf[1..5].try_into().unwrap(),
                )))
            }
            0x02 => {
                let (cands, off) = decode_candidates(buf, 1)?;
                if off != buf.len() {
                    return Err(err("trailing bytes after candidates"));
                }
                Ok(Response::Candidates(cands))
            }
            0x03 => {
                if buf.len() < 3 {
                    return Err(err("error header truncated"));
                }
                let n = u16::from_le_bytes([buf[1], buf[2]]) as usize;
                if buf.len() != 3 + n {
                    return Err(err("error body size mismatch"));
                }
                Ok(Response::Error(
                    String::from_utf8_lossy(&buf[3..3 + n]).into_owned(),
                ))
            }
            0x04 => {
                if buf.len() != 1 + 8 + 4 + 4 {
                    return Err(err("info size mismatch"));
                }
                Ok(Response::Info {
                    entries: u64::from_le_bytes(buf[1..9].try_into().unwrap()),
                    leaves: u32::from_le_bytes(buf[9..13].try_into().unwrap()),
                    depth: u32::from_le_bytes(buf[13..17].try_into().unwrap()),
                })
            }
            0x05 => {
                if buf.len() < 3 {
                    return Err(err("candidate sets header truncated"));
                }
                let n = u16::from_le_bytes([buf[1], buf[2]]) as usize;
                let mut sets = Vec::with_capacity(n);
                let mut off = 3;
                for _ in 0..n {
                    let (cands, next) = decode_candidates(buf, off)?;
                    sets.push(cands);
                    off = next;
                }
                if off != buf.len() {
                    return Err(err("trailing bytes after candidate sets"));
                }
                Ok(Response::CandidateSets(sets))
            }
            0x06 => {
                if buf.len() < 7 {
                    return Err(err("insert error header truncated"));
                }
                let inserted = u32::from_le_bytes(buf[1..5].try_into().unwrap());
                let n = u16::from_le_bytes([buf[5], buf[6]]) as usize;
                if buf.len() != 7 + n {
                    return Err(err("insert error body size mismatch"));
                }
                Ok(Response::InsertError {
                    inserted,
                    message: String::from_utf8_lossy(&buf[7..7 + n]).into_owned(),
                })
            }
            t => Err(err(&format!("unknown response tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> IndexEntry {
        IndexEntry::new(
            id,
            Routing::from_distances(&[1.0, 2.0, 3.0]),
            vec![id as u8; 5],
        )
    }

    #[test]
    fn insert_round_trip() {
        let req = Request::Insert(vec![entry(1), entry(2), entry(99)]);
        let bytes = req.encode();
        assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn empty_insert_round_trip() {
        let req = Request::Insert(vec![]);
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn range_round_trip() {
        let req = Request::Range {
            distances: vec![0.5, 1.5, 2.5],
            radius: 3.25,
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    /// Regression for the f32 wire format: query distances must survive the
    /// round trip bit-exactly, or boundary objects at distance exactly
    /// `radius` can be pruned server-side (values below are not
    /// f32-representable).
    #[test]
    fn range_distances_survive_wire_bit_exactly() {
        let ds = vec![0.1, 0.7, 1.0 - 1e-9, 16777217.0];
        let req = Request::Range {
            distances: ds.clone(),
            radius: 0.15,
        };
        match Request::decode(&req.encode()).unwrap() {
            Request::Range { distances, .. } => {
                for (sent, got) in ds.iter().zip(&distances) {
                    assert_eq!(sent.to_bits(), got.to_bits(), "{sent} mangled to {got}");
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_knn_round_trip() {
        let req = Request::BatchKnn(vec![
            KnnQuery {
                routing: Routing::from_distances(&[1.0, 2.0]),
                cand_size: 600,
            },
            KnnQuery {
                routing: Routing::permutation_prefix(&[0.3, 0.1, 0.2], 3),
                cand_size: 30,
            },
        ]);
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let empty = Request::BatchKnn(vec![]);
        assert_eq!(Request::decode(&empty.encode()).unwrap(), empty);
        let mut bytes = req.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn candidate_sets_round_trip() {
        let resp = Response::CandidateSets(vec![
            vec![
                Candidate {
                    id: 1,
                    lower_bound: 0.25,
                    payload: vec![1, 2],
                },
                Candidate {
                    id: 2,
                    lower_bound: 1.5,
                    payload: vec![],
                },
            ],
            vec![],
            vec![Candidate {
                id: 9,
                lower_bound: f64::MAX,
                payload: vec![9; 17],
            }],
        ]);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let bytes = resp.encode();
        for cut in [1, 2, 4, bytes.len() - 1] {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn insert_error_round_trip() {
        let resp = Response::InsertError {
            inserted: 412,
            message: "bucket b9 missing".into(),
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let bytes = resp.encode();
        for cut in [1, 5, bytes.len() - 1] {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    /// Lower bounds drive the client's sound early exit, so they must
    /// survive the wire bit-exactly — a rounded bound could be pushed above
    /// a true distance and change answers.
    #[test]
    fn candidate_lower_bounds_survive_wire_bit_exactly() {
        let bounds = [0.0f64, 1e-300, 0.1 + 0.2, 1.0 - 1e-9, 16777217.0];
        let resp = Response::Candidates(
            bounds
                .iter()
                .enumerate()
                .map(|(i, &lb)| Candidate {
                    id: i as u64,
                    lower_bound: lb,
                    payload: vec![i as u8],
                })
                .collect(),
        );
        match Response::decode(&resp.encode()).unwrap() {
            Response::Candidates(c) => {
                for (sent, got) in bounds.iter().zip(&c) {
                    assert_eq!(
                        sent.to_bits(),
                        got.lower_bound.to_bits(),
                        "{sent} mangled to {}",
                        got.lower_bound
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Truncation inside the new 8-byte bound field is rejected like any
    /// other cut.
    #[test]
    fn truncation_inside_lower_bound_rejected() {
        let resp = Response::Candidates(vec![Candidate {
            id: 3,
            lower_bound: 2.5,
            payload: vec![1, 2, 3],
        }]);
        let bytes = resp.encode();
        // 1 tag + 4 count + 8 id = 13; cuts at 14..=20 land inside lb/len.
        for cut in 13..21 {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn knn_round_trip_both_routings() {
        for routing in [
            Routing::from_distances(&[1.0, 2.0]),
            Routing::permutation_prefix(&[0.3, 0.1, 0.2], 3),
        ] {
            let req = Request::ApproxKnn {
                routing,
                cand_size: 600,
            };
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn export_round_trip() {
        assert_eq!(
            Request::decode(&Request::ExportAll.encode()).unwrap(),
            Request::ExportAll
        );
        let mut bytes = Request::ExportAll.encode();
        bytes.push(1);
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn info_round_trip() {
        assert_eq!(
            Request::decode(&Request::Info.encode()).unwrap(),
            Request::Info
        );
        let resp = Response::Info {
            entries: 1_000_000,
            leaves: 1234,
            depth: 4,
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Inserted(1000),
            Response::Candidates(vec![
                Candidate {
                    id: 7,
                    lower_bound: 0.125,
                    payload: vec![1, 2, 3],
                },
                Candidate {
                    id: 8,
                    lower_bound: 2.0,
                    payload: vec![],
                },
            ]),
            Response::Error("bucket b9 missing".into()),
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_messages_rejected() {
        let req = Request::Insert(vec![entry(1)]);
        let bytes = req.encode();
        for cut in [0, 1, 4, bytes.len() - 1] {
            assert!(Request::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let resp = Response::Candidates(vec![Candidate {
            id: 1,
            lower_bound: 0.0,
            payload: vec![9; 4],
        }]);
        let bytes = resp.encode();
        for cut in [0, 3, bytes.len() - 1] {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(Request::decode(&[0xFF]).is_err());
        assert!(Response::decode(&[0xFF]).is_err());
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Request::Info.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        let mut bytes = Request::Range {
            distances: vec![1.0],
            radius: 1.0,
        }
        .encode();
        bytes.push(7);
        assert!(Request::decode(&bytes).is_err());
    }

    /// The privacy audit in code form: a Range/ApproxKnn request contains
    /// only distances/permutation and scalar parameters — its size is
    /// independent of the query object's content beyond the pivot count.
    #[test]
    fn query_requests_leak_only_routing() {
        let r1 = Request::Range {
            distances: vec![1.0; 30],
            radius: 0.5,
        };
        let r2 = Request::Range {
            distances: vec![123456.0; 30],
            radius: 9.75,
        };
        assert_eq!(r1.encode().len(), r2.encode().len());
    }
}
