//! Wire protocol between the encryption client and the similarity cloud.
//!
//! Everything the server ever receives is in this module — auditing it
//! against the paper's privacy claim (§4.3) is easy: requests carry pivot
//! *permutations* or *distances* plus sealed payloads; responses carry
//! sealed payloads. Pivots, plaintext objects and the metric never appear.
//!
//! Binary layout (little-endian):
//!
//! ```text
//! request  := 0x01 u32 n { u32 len; entry }*n           bulk insert
//!           | 0x02 u16 n { f64 }*n f64 radius           precise range
//!           | 0x03 routing u32 cand_size                approx k-NN
//!           | 0x04                                      server info
//!           | 0x05                                      export all
//!           | 0x06 u16 n { routing; u32 cand_size }*n   batched approx k-NN
//!           | 0x07 u32 n { u64 id }*n                   fetch objects (phase 2)
//!           | 0x08                                      health probe
//!           | 0x09                                      metrics snapshot
//! response := 0x01 u32 inserted_count
//!           | 0x02 u32 n { u64 id; f64 lb;
//!                          u32 len; bytes }*n           full candidate set (export)
//!           | 0x03 u16 len utf8                         error
//!           | 0x04 u64 entries; u32 leaves; u32 depth   info
//!           | 0x05 u16 n { u8 tag;
//!                          tag=1: candidate list
//!                        | tag=0: u16 len utf8 }*n      batched per-query results
//!           | 0x06 u32 inserted; u16 len utf8           partial-insert error
//!           | 0x07 candidate list                       search answer (phase 1)
//!           | 0x08 u32 n { u64 id; u32 len; bytes }*n   fetched objects (phase 2)
//!           | 0x09 u8 status; u32 protocol;
//!                  u64 entries; u32 shards;
//!                  u64 uptime_nanos                      health
//!           | 0x0a u32 len utf8                         metrics snapshot (exposition text)
//!
//! candidate list := u32 n { u64 id; f64 lb }*n          headers, all candidates
//!                   u32 m { u32 len; bytes }*m          inline payload prefix, m <= n
//! ```
//!
//! Range query distances travel as `f64`: the server's pruning rules and
//! the client's refinement both compute in `f64`, and a narrower wire type
//! would let boundary objects (distance exactly `radius`) be pruned
//! server-side, breaking the precise range guarantee.
//!
//! ## Two-phase candidate fetch
//!
//! Search responses are **headers first, sealed objects on demand**. Phase
//! 1 ([`Response::CandidateList`]) ships one compact 16-byte header
//! `(id, lower_bound)` per candidate, sorted by the server-computed lower
//! bound ascending, plus sealed payloads for the *first `m` headers only*
//! (`m` is capped by the server's inline-byte budget — a generous budget
//! inlines everything and phase 2 never happens). The refining client
//! decrypts in bound order and stops at the sound early exit; when it runs
//! past the inlined prefix it issues [`Request::FetchObjects`] with the
//! next batch of candidate ids and receives the sealed payloads in
//! [`Response::Objects`], in request order. The server re-reads them by id
//! — phase 2 is stateless, nothing is pinned between the round trips.
//!
//! The bound is derived from routing information the server already holds,
//! so shipping it leaks nothing new; a fetch request names ids the server
//! itself chose for the candidate set, so phase 2 leaks at most the point
//! at which the client stopped — the same information the eager protocol's
//! `decrypted` accounting reveals in timing.

use simcloud_mindex::{IndexEntry, Routing};

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Bulk insert of encrypted entries (Alg. 1; the paper's construction
    /// phase uses bulks of 1000).
    Insert(Vec<IndexEntry>),
    /// Precise range search (Alg. 3): query–pivot distances + radius.
    Range {
        /// Query–pivot distances (full `f64` on the wire; see module docs).
        distances: Vec<f64>,
        /// Query radius.
        radius: f64,
    },
    /// Approximate k-NN (Alg. 4): routing info + requested candidate count.
    ApproxKnn {
        /// Query routing: permutation (less leakage) or distances.
        routing: Routing,
        /// Candidate set size `CandSize`.
        cand_size: u32,
    },
    /// Server diagnostics (tree shape); carries no query information.
    Info,
    /// Export every sealed entry (data-owner operation used for key
    /// rotation / client revocation). The response is sealed blobs — the
    /// server still learns nothing, and a non-owner requester only obtains
    /// what a server compromise would yield anyway (§4.3 threat model).
    ExportAll,
    /// Many approximate k-NN queries in one round trip (the batch query
    /// API): the server answers with one candidate set per query, in order.
    /// Amortizes per-message latency — the dominant cost on LAN/WAN links —
    /// and lets a concurrent server fan the batch out internally.
    /// The wire count is `u16`, so one message carries at most `u16::MAX`
    /// queries; `EncryptedClient::knn_approx_batch` chunks larger batches.
    BatchKnn(Vec<KnnQuery>),
    /// Phase 2 of the two-phase candidate fetch: the client asks for the
    /// sealed payloads of specific candidate ids it learned from a phase-1
    /// header list. Stateless on the server — payloads are re-read by id.
    FetchObjects {
        /// Candidate ids to fetch, typically an adaptive-batch slice of a
        /// phase-1 header list.
        ids: Vec<u64>,
    },
    /// Liveness/readiness probe (ops surface, wire v2). Carries no query
    /// information; servers answer from pre-aggregated atomics without
    /// touching the index lock, so a health check stays fast while a bulk
    /// insert holds the write lock. Reaching the handler at all also
    /// proves the server is under its connection cap — load shedding
    /// refuses the connection *before* any request is read.
    Health,
    /// Telemetry snapshot (ops surface, wire v2): the server renders its
    /// metric registry, search-stat totals and slow-query log in the
    /// plaintext exposition format (see the README's "Observability &
    /// operations"). Answered without the index lock, like [`Request::Health`].
    MetricsSnapshot,
}

/// One query of a [`Request::BatchKnn`] batch — same fields as
/// [`Request::ApproxKnn`].
#[derive(Debug, Clone, PartialEq)]
pub struct KnnQuery {
    /// Query routing: permutation (less leakage) or distances.
    pub routing: Routing,
    /// Candidate set size `CandSize`.
    pub cand_size: u32,
}

/// One candidate in a response: the id, the server's lower bound on the
/// query–object distance, and the sealed object — no routing info travels
/// back (the client recomputes true distances after decryption).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// External object id.
    pub id: u64,
    /// Server-computed lower bound on `d(q, o)` in the wire distance space
    /// (a sound pivot-filtering bound under distance routing; the heuristic
    /// cell-promise penalty under permutation routing). Candidate sets are
    /// sorted by this value ascending.
    pub lower_bound: f64,
    /// Sealed (encrypted) object bytes.
    pub payload: Vec<u8>,
}

/// Phase-1 candidate header: 16 bytes on the wire, no payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateHeader {
    /// External object id.
    pub id: u64,
    /// Server-computed lower bound on `d(q, o)` (see [`Candidate`]);
    /// header lists travel sorted by it ascending.
    pub lower_bound: f64,
}

/// A phase-1 search answer: headers for **every** candidate plus sealed
/// payloads inlined for the first `payloads.len()` headers (positional —
/// `payloads[i]` belongs to `headers[i]`). The inline prefix is bounded by
/// the server's response-byte budget; the client fetches the rest on
/// demand with [`Request::FetchObjects`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CandidateList {
    /// One header per candidate, sorted by lower bound ascending.
    pub headers: Vec<CandidateHeader>,
    /// Sealed payloads for the first `payloads.len()` headers
    /// (`payloads.len() <= headers.len()`, enforced by the codec).
    pub payloads: Vec<Vec<u8>>,
}

impl CandidateList {
    /// Builds a fully-inlined list (every payload present) from eager
    /// candidates — what a server with an unlimited budget ships.
    pub fn from_candidates(cands: Vec<Candidate>) -> Self {
        let mut headers = Vec::with_capacity(cands.len());
        let mut payloads = Vec::with_capacity(cands.len());
        for c in cands {
            headers.push(CandidateHeader {
                id: c.id,
                lower_bound: c.lower_bound,
            });
            payloads.push(c.payload);
        }
        Self { headers, payloads }
    }
}

/// One sealed object of a phase-2 [`Response::Objects`] answer.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchedObject {
    /// External object id — must match the requested id at this position.
    pub id: u64,
    /// Sealed (encrypted) object bytes.
    pub payload: Vec<u8>,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Insert acknowledgement with the number of stored entries.
    Inserted(u32),
    /// A fully-materialized candidate set (every payload present). Since
    /// the two-phase wire this is only the [`Request::ExportAll`] answer —
    /// an export has no refinement to exit early from, so headers-first
    /// staging would only add a round trip.
    Candidates(Vec<Candidate>),
    /// Server-side failure (storage, malformed request, …).
    Error(String),
    /// Server info: entries, leaf cells, max tree depth.
    Info {
        /// Indexed entries.
        entries: u64,
        /// Leaf cell count.
        leaves: u32,
        /// Maximum tree depth.
        depth: u32,
    },
    /// One **per-query result** per query of a [`Request::BatchKnn`], in
    /// order: a failing query ships its error message in its own slot and
    /// no longer discards its siblings' candidate sets.
    CandidateSets(Vec<Result<CandidateList, String>>),
    /// A bulk insert failed mid-batch: `inserted` entries of the batch
    /// prefix **are stored** — the client needs this count to know what
    /// landed (bulk inserts are not atomic).
    InsertError {
        /// Entries of the batch prefix that were stored before the failure.
        inserted: u32,
        /// Failure description.
        message: String,
    },
    /// Phase-1 search answer: all candidate headers, payloads inlined for
    /// a budget-bounded prefix (see [`CandidateList`]).
    CandidateList(CandidateList),
    /// Phase-2 answer to [`Request::FetchObjects`]: the sealed payloads of
    /// the requested ids, **in request order**. The client rejects any
    /// deviation (missing, extra, duplicated or reordered ids) and the MAC
    /// binds each payload to its id, so a malicious server cannot
    /// substitute objects undetected.
    Objects(Vec<FetchedObject>),
    /// Answer to [`Request::Health`]: a fixed-size liveness summary
    /// served from atomics (never the index lock).
    Health {
        /// `0` = serving. Nonzero values are reserved for degraded states.
        status: u8,
        /// The server's wire protocol version ([`PROTOCOL_VERSION`]).
        protocol: u32,
        /// Entries resident across all shards (pre-aggregated gauge).
        entries: u64,
        /// Shard count (`1` for an unsharded server).
        shards: u32,
        /// Nanoseconds since the server's telemetry registry was created.
        uptime_nanos: u64,
    },
    /// Answer to [`Request::MetricsSnapshot`]: the rendered exposition
    /// text. Framed with a `u32` length — unlike `Error` messages, a
    /// metrics dump legitimately exceeds `u16::MAX` bytes.
    MetricsSnapshot(String),
}

/// Wire protocol version, reported by [`Response::Health`].
///
/// * v1 — tags `0x01..=0x07` requests / `0x01..=0x08` responses.
/// * v2 — adds the ops surface: `Health` / `MetricsSnapshot` requests and
///   their responses. Purely additive: every v1 message is bit-identical
///   under v2, and a v1 peer rejects the new tags as unknown instead of
///   misparsing them.
pub const PROTOCOL_VERSION: u32 = 2;

/// Protocol decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err(msg: &str) -> CodecError {
    CodecError(msg.into())
}

/// Hard cap on the size of a single encoded message accepted by
/// [`Request::decode`] / [`Response::decode`].
///
/// Wire length/count fields are attacker-controlled in both directions (a
/// hostile client sends requests, a hostile server sends responses), so
/// decode must bound its allocations by something the attacker pays for.
/// The cap rejects anything larger than the biggest legitimate message
/// (full-dataset exports included) before any count field is trusted;
/// within the cap, every `Vec::with_capacity` is additionally bounded by
/// the bytes actually present (see [`cap_alloc`]).
///
/// Defined as the transport layer's frame cap so the two bounds cannot
/// drift: the framing code rejects a hostile length prefix before
/// allocating, and the codec rejects the same sizes before decoding.
pub const MAX_DECODE_BYTES: usize = simcloud_transport::MAX_FRAME_BYTES;

/// Largest candidate-header count a phase-1 [`CandidateList`] can carry
/// without its *headers-only* encoding busting [`MAX_DECODE_BYTES`] on the
/// client's decoder.
///
/// A headers-only list costs `1` tag byte + `4` header-count bytes +
/// `16` bytes per header + `4` payload-count bytes (see
/// [`encode_candidate_list`]); the 9 framing bytes leave
/// `(MAX_DECODE_BYTES - 9) / 16` header slots. Servers clamp `cand_size`
/// to this before running a search — a request for more would produce an
/// answer the requester itself could never decode, so it is refused up
/// front with [`Response::Error`] instead of discovered as a codec error
/// after the work is done.
pub const MAX_CANDIDATE_HEADERS: usize = (MAX_DECODE_BYTES - 9) / 16;

/// Caps a claimed element count before `Vec::with_capacity`: the count
/// field is attacker-controlled, the buffer length bounds reality.
/// `min_size` is the smallest wire footprint of one element, so the
/// returned capacity never exceeds what the buffer could actually hold.
fn cap_alloc(claimed: usize, remaining: usize, min_size: usize) -> usize {
    claimed.min(remaining / min_size.max(1))
}

/// Saturating size-to-wire conversions. In-memory counts can't
/// realistically exceed the wire field, but saturate rather than wrap so
/// an impossible giant encodes into a decode error on the peer instead of
/// a silently wrong count.
fn wire_u32(n: usize) -> u32 {
    debug_assert!(n <= u32::MAX as usize, "wire count overflow");
    u32::try_from(n).unwrap_or(u32::MAX)
}

fn wire_u16(n: usize) -> u16 {
    debug_assert!(n <= u16::MAX as usize, "wire count overflow");
    u16::try_from(n).unwrap_or(u16::MAX)
}

/// Bounds-checked little-endian cursor over a decode buffer.
///
/// Every read is total: out-of-range access yields a [`CodecError`],
/// never a panic — the byte stream is hostile input on both ends of the
/// connection, and the static analysis gate keeps this file free of
/// indexing and `unwrap`.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Bytes not yet consumed.
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// The unconsumed tail (for hand-off to nested decoders).
    fn rest(&self) -> &'a [u8] {
        self.buf
    }

    fn take<const N: usize>(&mut self, what: &str) -> Result<[u8; N], CodecError> {
        match self.buf.split_first_chunk::<N>() {
            Some((chunk, rest)) => {
                self.buf = rest;
                Ok(*chunk)
            }
            None => Err(err(&format!("{what} truncated"))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, CodecError> {
        self.take::<1>(what).map(|[b]| b)
    }

    fn u16(&mut self, what: &str) -> Result<u16, CodecError> {
        self.take::<2>(what).map(u16::from_le_bytes)
    }

    fn u32(&mut self, what: &str) -> Result<u32, CodecError> {
        self.take::<4>(what).map(u32::from_le_bytes)
    }

    fn u64(&mut self, what: &str) -> Result<u64, CodecError> {
        self.take::<8>(what).map(u64::from_le_bytes)
    }

    fn f64(&mut self, what: &str) -> Result<f64, CodecError> {
        self.take::<8>(what).map(f64::from_le_bytes)
    }

    /// Consumes exactly `n` bytes.
    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], CodecError> {
        if n > self.buf.len() {
            return Err(err(&format!("{what} truncated")));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Skips `n` bytes a nested decoder already consumed from [`Self::rest`].
    fn skip(&mut self, n: usize, what: &str) -> Result<(), CodecError> {
        self.bytes(n, what).map(|_| ())
    }

    /// Rejects trailing bytes once a message is fully decoded.
    fn finish(self, what: &str) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(err(&format!("trailing bytes after {what}")))
        }
    }
}

/// Appends `u32 n { u64 id; f64 lb; u32 len; bytes }*n` (the
/// fully-materialized layout of [`Response::Candidates`]).
fn encode_candidates(out: &mut Vec<u8>, cands: &[Candidate]) {
    out.extend_from_slice(&wire_u32(cands.len()).to_le_bytes());
    for c in cands {
        out.extend_from_slice(&c.id.to_le_bytes());
        out.extend_from_slice(&c.lower_bound.to_le_bytes());
        out.extend_from_slice(&wire_u32(c.payload.len()).to_le_bytes());
        out.extend_from_slice(&c.payload);
    }
}

/// Decodes the candidate layout written by [`encode_candidates`].
fn decode_candidates(r: &mut Reader<'_>) -> Result<Vec<Candidate>, CodecError> {
    let n = r.u32("candidates header")? as usize;
    let mut cands = Vec::with_capacity(cap_alloc(n, r.remaining(), 20));
    for _ in 0..n {
        let id = r.u64("candidate header")?;
        let lower_bound = r.f64("candidate header")?;
        let len = r.u32("candidate header")? as usize;
        let payload = r.bytes(len, "candidate payload")?.to_vec();
        cands.push(Candidate {
            id,
            lower_bound,
            payload,
        });
    }
    Ok(cands)
}

/// Appends one candidate list: `u32 n { u64 id; f64 lb }*n` headers, then
/// `u32 m { u32 len; bytes }*m` inline payloads for the first `m` headers.
fn encode_candidate_list(out: &mut Vec<u8>, list: &CandidateList) {
    debug_assert!(list.payloads.len() <= list.headers.len());
    out.extend_from_slice(&wire_u32(list.headers.len()).to_le_bytes());
    for h in &list.headers {
        out.extend_from_slice(&h.id.to_le_bytes());
        out.extend_from_slice(&h.lower_bound.to_le_bytes());
    }
    out.extend_from_slice(&wire_u32(list.payloads.len()).to_le_bytes());
    for p in &list.payloads {
        out.extend_from_slice(&wire_u32(p.len()).to_le_bytes());
        out.extend_from_slice(p);
    }
}

/// Decodes one candidate list. Rejects more inline payloads than headers.
fn decode_candidate_list(r: &mut Reader<'_>) -> Result<CandidateList, CodecError> {
    let n = r.u32("candidate list header count")? as usize;
    if r.remaining() < n.saturating_mul(16) {
        return Err(err("candidate list headers truncated"));
    }
    let mut headers = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u64("candidate list header")?;
        let lower_bound = r.f64("candidate list header")?;
        headers.push(CandidateHeader { id, lower_bound });
    }
    let m = r.u32("candidate list payload count")? as usize;
    if m > n {
        return Err(err("more inline payloads than candidate headers"));
    }
    let mut payloads = Vec::with_capacity(cap_alloc(m, r.remaining(), 4));
    for _ in 0..m {
        let len = r.u32("inline payload length")? as usize;
        payloads.push(r.bytes(len, "inline payload")?.to_vec());
    }
    Ok(CandidateList { headers, payloads })
}

/// Appends `u16 len || utf8` (truncating over-long messages).
fn encode_message(out: &mut Vec<u8>, msg: &str) {
    let bytes = msg.as_bytes();
    let n = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&wire_u16(n).to_le_bytes());
    out.extend_from_slice(bytes.get(..n).unwrap_or(bytes));
}

/// Decodes `u16 len || utf8` written by [`encode_message`].
fn decode_message(r: &mut Reader<'_>) -> Result<String, CodecError> {
    let n = r.u16("message length")? as usize;
    let body = r.bytes(n, "message body")?;
    Ok(String::from_utf8_lossy(body).into_owned())
}

impl Request {
    /// Encodes the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Insert(entries) => {
                out.push(0x01);
                out.extend_from_slice(&wire_u32(entries.len()).to_le_bytes());
                for e in entries {
                    let mut body = Vec::with_capacity(8 + e.encoded_len());
                    body.extend_from_slice(&e.id.to_le_bytes());
                    body.extend_from_slice(&e.encode_payload());
                    out.extend_from_slice(&wire_u32(body.len()).to_le_bytes());
                    out.extend_from_slice(&body);
                }
            }
            Request::Range { distances, radius } => {
                out.push(0x02);
                out.extend_from_slice(&wire_u16(distances.len()).to_le_bytes());
                for d in distances {
                    out.extend_from_slice(&d.to_le_bytes());
                }
                out.extend_from_slice(&radius.to_le_bytes());
            }
            Request::ApproxKnn { routing, cand_size } => {
                out.push(0x03);
                routing.encode(&mut out);
                out.extend_from_slice(&cand_size.to_le_bytes());
            }
            Request::Info => out.push(0x04),
            Request::ExportAll => out.push(0x05),
            Request::BatchKnn(queries) => {
                out.push(0x06);
                out.extend_from_slice(&wire_u16(queries.len()).to_le_bytes());
                for q in queries {
                    q.routing.encode(&mut out);
                    out.extend_from_slice(&q.cand_size.to_le_bytes());
                }
            }
            Request::FetchObjects { ids } => {
                out.push(0x07);
                out.extend_from_slice(&wire_u32(ids.len()).to_le_bytes());
                for id in ids {
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
            Request::Health => out.push(0x08),
            Request::MetricsSnapshot => out.push(0x09),
        }
        out
    }

    /// Decodes a request.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        if buf.len() > MAX_DECODE_BYTES {
            return Err(err("request exceeds decode size cap"));
        }
        let mut r = Reader::new(buf);
        match r.u8("request tag")? {
            0x01 => {
                let n = r.u32("insert header")? as usize;
                // Smallest entry: u32 len + u64 id + 3-byte routing stub.
                let mut entries = Vec::with_capacity(cap_alloc(n, r.remaining(), 12));
                for _ in 0..n {
                    let len = r.u32("insert entry length")? as usize;
                    let mut body = Reader::new(r.bytes(len, "insert entry body")?);
                    let id = body.u64("insert entry body")?;
                    let entry = IndexEntry::decode_payload(id, body.rest())
                        .ok_or_else(|| err("insert entry undecodable"))?;
                    entries.push(entry);
                }
                r.finish("insert")?;
                Ok(Request::Insert(entries))
            }
            0x02 => {
                let n = r.u16("range header")? as usize;
                let mut distances = Vec::with_capacity(cap_alloc(n, r.remaining(), 8));
                for _ in 0..n {
                    distances.push(r.f64("range distances")?);
                }
                let radius = r.f64("range radius")?;
                r.finish("range")?;
                Ok(Request::Range { distances, radius })
            }
            0x03 => {
                let (routing, used) =
                    Routing::decode(r.rest()).ok_or_else(|| err("knn routing undecodable"))?;
                r.skip(used, "knn routing")?;
                let cand_size = r.u32("knn cand_size")?;
                r.finish("knn")?;
                Ok(Request::ApproxKnn { routing, cand_size })
            }
            0x04 => {
                r.finish("info request")
                    .map_err(|_| err("info request carries payload"))?;
                Ok(Request::Info)
            }
            0x05 => {
                r.finish("export request")
                    .map_err(|_| err("export request carries payload"))?;
                Ok(Request::ExportAll)
            }
            0x06 => {
                let n = r.u16("batch header")? as usize;
                let mut queries = Vec::with_capacity(cap_alloc(n, r.remaining(), 7));
                for _ in 0..n {
                    let (routing, used) = Routing::decode(r.rest())
                        .ok_or_else(|| err("batch routing undecodable"))?;
                    r.skip(used, "batch routing")?;
                    let cand_size = r.u32("batch cand_size")?;
                    queries.push(KnnQuery { routing, cand_size });
                }
                r.finish("batch")?;
                Ok(Request::BatchKnn(queries))
            }
            0x07 => {
                let n = r.u32("fetch header")? as usize;
                let mut ids = Vec::with_capacity(cap_alloc(n, r.remaining(), 8));
                for _ in 0..n {
                    ids.push(r.u64("fetch ids")?);
                }
                r.finish("fetch")?;
                Ok(Request::FetchObjects { ids })
            }
            0x08 => {
                r.finish("health request")
                    .map_err(|_| err("health request carries payload"))?;
                Ok(Request::Health)
            }
            0x09 => {
                r.finish("metrics request")
                    .map_err(|_| err("metrics request carries payload"))?;
                Ok(Request::MetricsSnapshot)
            }
            t => Err(err(&format!("unknown request tag {t}"))),
        }
    }
}

impl Response {
    /// Encodes the response.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Inserted(n) => {
                out.push(0x01);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Response::Candidates(cands) => {
                out.push(0x02);
                encode_candidates(&mut out, cands);
            }
            Response::Error(msg) => {
                out.push(0x03);
                encode_message(&mut out, msg);
            }
            Response::Info {
                entries,
                leaves,
                depth,
            } => {
                out.push(0x04);
                out.extend_from_slice(&entries.to_le_bytes());
                out.extend_from_slice(&leaves.to_le_bytes());
                out.extend_from_slice(&depth.to_le_bytes());
            }
            Response::CandidateSets(sets) => {
                out.push(0x05);
                out.extend_from_slice(&wire_u16(sets.len()).to_le_bytes());
                for result in sets {
                    match result {
                        Ok(list) => {
                            out.push(1);
                            encode_candidate_list(&mut out, list);
                        }
                        Err(msg) => {
                            out.push(0);
                            encode_message(&mut out, msg);
                        }
                    }
                }
            }
            Response::InsertError { inserted, message } => {
                out.push(0x06);
                out.extend_from_slice(&inserted.to_le_bytes());
                encode_message(&mut out, message);
            }
            Response::CandidateList(list) => {
                out.push(0x07);
                encode_candidate_list(&mut out, list);
            }
            Response::Objects(objects) => {
                out.push(0x08);
                out.extend_from_slice(&wire_u32(objects.len()).to_le_bytes());
                for o in objects {
                    out.extend_from_slice(&o.id.to_le_bytes());
                    out.extend_from_slice(&wire_u32(o.payload.len()).to_le_bytes());
                    out.extend_from_slice(&o.payload);
                }
            }
            Response::Health {
                status,
                protocol,
                entries,
                shards,
                uptime_nanos,
            } => {
                out.push(0x09);
                out.push(*status);
                out.extend_from_slice(&protocol.to_le_bytes());
                out.extend_from_slice(&entries.to_le_bytes());
                out.extend_from_slice(&shards.to_le_bytes());
                out.extend_from_slice(&uptime_nanos.to_le_bytes());
            }
            Response::MetricsSnapshot(text) => {
                out.push(0x0a);
                // u32 framing: a metrics dump can legitimately exceed the
                // u16 cap `encode_message` truncates at. Over-long texts
                // saturate the count and fail decode on the peer rather
                // than shipping silently truncated metrics.
                out.extend_from_slice(&wire_u32(text.len()).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
            }
        }
        out
    }

    /// Decodes a response.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        if buf.len() > MAX_DECODE_BYTES {
            return Err(err("response exceeds decode size cap"));
        }
        let mut r = Reader::new(buf);
        match r.u8("response tag")? {
            0x01 => {
                let n = r.u32("inserted ack")?;
                r.finish("inserted ack")?;
                Ok(Response::Inserted(n))
            }
            0x02 => {
                let cands = decode_candidates(&mut r)?;
                r.finish("candidates")?;
                Ok(Response::Candidates(cands))
            }
            0x03 => {
                let msg = decode_message(&mut r)?;
                r.finish("error response")?;
                Ok(Response::Error(msg))
            }
            0x04 => {
                let entries = r.u64("info entries")?;
                let leaves = r.u32("info leaves")?;
                let depth = r.u32("info depth")?;
                r.finish("info")?;
                Ok(Response::Info {
                    entries,
                    leaves,
                    depth,
                })
            }
            0x05 => {
                let n = r.u16("candidate sets header")? as usize;
                let mut sets = Vec::with_capacity(cap_alloc(n, r.remaining(), 1));
                for _ in 0..n {
                    match r.u8("per-query result tag")? {
                        1 => sets.push(Ok(decode_candidate_list(&mut r)?)),
                        0 => sets.push(Err(decode_message(&mut r)?)),
                        t => return Err(err(&format!("unknown per-query result tag {t}"))),
                    }
                }
                r.finish("candidate sets")?;
                Ok(Response::CandidateSets(sets))
            }
            0x06 => {
                let inserted = r.u32("insert error header")?;
                let message = decode_message(&mut r)?;
                r.finish("insert error")?;
                Ok(Response::InsertError { inserted, message })
            }
            0x07 => {
                let list = decode_candidate_list(&mut r)?;
                r.finish("candidate list")?;
                Ok(Response::CandidateList(list))
            }
            0x08 => {
                let n = r.u32("objects header")? as usize;
                let mut objects = Vec::with_capacity(cap_alloc(n, r.remaining(), 12));
                for _ in 0..n {
                    let id = r.u64("object header")?;
                    let len = r.u32("object header")? as usize;
                    let payload = r.bytes(len, "object payload")?.to_vec();
                    objects.push(FetchedObject { id, payload });
                }
                r.finish("objects")?;
                Ok(Response::Objects(objects))
            }
            0x09 => {
                let status = r.u8("health status")?;
                let protocol = r.u32("health protocol")?;
                let entries = r.u64("health entries")?;
                let shards = r.u32("health shards")?;
                let uptime_nanos = r.u64("health uptime")?;
                r.finish("health")?;
                Ok(Response::Health {
                    status,
                    protocol,
                    entries,
                    shards,
                    uptime_nanos,
                })
            }
            0x0a => {
                let n = r.u32("metrics length")? as usize;
                let body = r.bytes(n, "metrics body")?;
                let text = String::from_utf8_lossy(body).into_owned();
                r.finish("metrics")?;
                Ok(Response::MetricsSnapshot(text))
            }
            t => Err(err(&format!("unknown response tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> IndexEntry {
        IndexEntry::new(
            id,
            Routing::from_distances(&[1.0, 2.0, 3.0]),
            vec![id as u8; 5],
        )
    }

    #[test]
    fn insert_round_trip() {
        let req = Request::Insert(vec![entry(1), entry(2), entry(99)]);
        let bytes = req.encode();
        assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn empty_insert_round_trip() {
        let req = Request::Insert(vec![]);
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn range_round_trip() {
        let req = Request::Range {
            distances: vec![0.5, 1.5, 2.5],
            radius: 3.25,
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    /// Regression for the f32 wire format: query distances must survive the
    /// round trip bit-exactly, or boundary objects at distance exactly
    /// `radius` can be pruned server-side (values below are not
    /// f32-representable).
    #[test]
    fn range_distances_survive_wire_bit_exactly() {
        let ds = vec![0.1, 0.7, 1.0 - 1e-9, 16777217.0];
        let req = Request::Range {
            distances: ds.clone(),
            radius: 0.15,
        };
        match Request::decode(&req.encode()).unwrap() {
            Request::Range { distances, .. } => {
                for (sent, got) in ds.iter().zip(&distances) {
                    assert_eq!(sent.to_bits(), got.to_bits(), "{sent} mangled to {got}");
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_knn_round_trip() {
        let req = Request::BatchKnn(vec![
            KnnQuery {
                routing: Routing::from_distances(&[1.0, 2.0]),
                cand_size: 600,
            },
            KnnQuery {
                routing: Routing::permutation_prefix(&[0.3, 0.1, 0.2], 3),
                cand_size: 30,
            },
        ]);
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let empty = Request::BatchKnn(vec![]);
        assert_eq!(Request::decode(&empty.encode()).unwrap(), empty);
        let mut bytes = req.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err(), "trailing bytes rejected");
    }

    fn header(id: u64, lb: f64) -> CandidateHeader {
        CandidateHeader {
            id,
            lower_bound: lb,
        }
    }

    /// Batched responses carry one `Result` per query: candidate lists and
    /// error slots round-trip side by side.
    #[test]
    fn candidate_sets_round_trip() {
        let resp = Response::CandidateSets(vec![
            Ok(CandidateList {
                headers: vec![header(1, 0.25), header(2, 1.5), header(3, 2.0)],
                payloads: vec![vec![1, 2], vec![]],
            }),
            Err("dimension mismatch".into()),
            Ok(CandidateList::default()),
            Ok(CandidateList {
                headers: vec![header(9, f64::MAX)],
                payloads: vec![vec![9; 17]],
            }),
        ]);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let bytes = resp.encode();
        for cut in [1, 2, 4, 10, bytes.len() - 1] {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Unknown per-query tag rejected.
        let mut bad = Response::CandidateSets(vec![Ok(CandidateList::default())]).encode();
        bad[3] = 7;
        assert!(Response::decode(&bad).is_err());
    }

    /// Phase-1 lists: headers for everything, payloads for a prefix only.
    #[test]
    fn candidate_list_round_trip() {
        let full = CandidateList {
            headers: vec![header(4, 0.5), header(2, 0.75), header(7, 0.75)],
            payloads: vec![vec![0xaa; 9], vec![], vec![1]],
        };
        let partial = CandidateList {
            headers: full.headers.clone(),
            payloads: vec![vec![0xaa; 9]],
        };
        let headers_only = CandidateList {
            headers: full.headers.clone(),
            payloads: vec![],
        };
        for list in [full, partial, headers_only, CandidateList::default()] {
            let resp = Response::CandidateList(list);
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
            let bytes = resp.encode();
            for cut in 0..bytes.len() {
                assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
            }
            let mut trailing = resp.encode();
            trailing.push(0);
            assert!(Response::decode(&trailing).is_err(), "trailing byte");
        }
    }

    /// More inline payloads than headers is structurally invalid — a
    /// malicious server cannot smuggle unrequested payloads past the codec.
    #[test]
    fn candidate_list_rejects_payload_overflow() {
        let list = CandidateList {
            headers: vec![header(1, 0.0)],
            payloads: vec![vec![1], vec![2]],
        };
        let mut out = vec![0x07];
        // Encode by hand: debug_assert in encode_candidate_list would trip.
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(&0f64.to_le_bytes());
        out.extend_from_slice(&2u32.to_le_bytes());
        for p in &list.payloads {
            out.extend_from_slice(&(p.len() as u32).to_le_bytes());
            out.extend_from_slice(p);
        }
        assert!(Response::decode(&out).is_err());
    }

    #[test]
    fn fetch_objects_round_trip() {
        for ids in [vec![], vec![7u64], vec![3, 1, u64::MAX, 3]] {
            let req = Request::FetchObjects { ids };
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        let mut bytes = Request::FetchObjects { ids: vec![1, 2] }.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err(), "trailing bytes rejected");
        let short = &Request::FetchObjects { ids: vec![1, 2] }.encode()[..9];
        assert!(Request::decode(short).is_err(), "truncated ids rejected");
    }

    #[test]
    fn objects_round_trip() {
        let resp = Response::Objects(vec![
            FetchedObject {
                id: 12,
                payload: vec![1, 2, 3],
            },
            FetchedObject {
                id: 0,
                payload: vec![],
            },
        ]);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let bytes = resp.encode();
        for cut in [1, 4, 6, 14, bytes.len() - 1] {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let empty = Response::Objects(vec![]);
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
    }

    /// A phase-1 header costs 16 bytes; the same candidate fully inlined
    /// costs 20 + payload. The header list layout must actually realize the
    /// savings the two-phase fetch is built on.
    #[test]
    fn headers_only_list_is_smaller_than_materialized_set() {
        let payload = vec![0u8; 89];
        let n = 600;
        let eager = Response::Candidates(
            (0..n)
                .map(|i| Candidate {
                    id: i,
                    lower_bound: i as f64,
                    payload: payload.clone(),
                })
                .collect(),
        );
        let lazy = Response::CandidateList(CandidateList {
            headers: (0..n).map(|i| header(i, i as f64)).collect(),
            payloads: vec![],
        });
        let eager_len = eager.encode().len();
        let lazy_len = lazy.encode().len();
        assert_eq!(lazy_len, 1 + 4 + 16 * n as usize + 4);
        assert!(
            (lazy_len as f64) < 0.2 * eager_len as f64,
            "headers-only {lazy_len} vs eager {eager_len}"
        );
    }

    #[test]
    fn insert_error_round_trip() {
        let resp = Response::InsertError {
            inserted: 412,
            message: "bucket b9 missing".into(),
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let bytes = resp.encode();
        for cut in [1, 5, bytes.len() - 1] {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    /// Lower bounds drive the client's sound early exit, so they must
    /// survive the wire bit-exactly — a rounded bound could be pushed above
    /// a true distance and change answers.
    #[test]
    fn candidate_lower_bounds_survive_wire_bit_exactly() {
        let bounds = [0.0f64, 1e-300, 0.1 + 0.2, 1.0 - 1e-9, 16777217.0];
        let resp = Response::Candidates(
            bounds
                .iter()
                .enumerate()
                .map(|(i, &lb)| Candidate {
                    id: i as u64,
                    lower_bound: lb,
                    payload: vec![i as u8],
                })
                .collect(),
        );
        match Response::decode(&resp.encode()).unwrap() {
            Response::Candidates(c) => {
                for (sent, got) in bounds.iter().zip(&c) {
                    assert_eq!(
                        sent.to_bits(),
                        got.lower_bound.to_bits(),
                        "{sent} mangled to {}",
                        got.lower_bound
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Truncation inside the new 8-byte bound field is rejected like any
    /// other cut.
    #[test]
    fn truncation_inside_lower_bound_rejected() {
        let resp = Response::Candidates(vec![Candidate {
            id: 3,
            lower_bound: 2.5,
            payload: vec![1, 2, 3],
        }]);
        let bytes = resp.encode();
        // 1 tag + 4 count + 8 id = 13; cuts at 14..=20 land inside lb/len.
        for cut in 13..21 {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn knn_round_trip_both_routings() {
        for routing in [
            Routing::from_distances(&[1.0, 2.0]),
            Routing::permutation_prefix(&[0.3, 0.1, 0.2], 3),
        ] {
            let req = Request::ApproxKnn {
                routing,
                cand_size: 600,
            };
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn export_round_trip() {
        assert_eq!(
            Request::decode(&Request::ExportAll.encode()).unwrap(),
            Request::ExportAll
        );
        let mut bytes = Request::ExportAll.encode();
        bytes.push(1);
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn info_round_trip() {
        assert_eq!(
            Request::decode(&Request::Info.encode()).unwrap(),
            Request::Info
        );
        let resp = Response::Info {
            entries: 1_000_000,
            leaves: 1234,
            depth: 4,
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Inserted(1000),
            Response::Candidates(vec![
                Candidate {
                    id: 7,
                    lower_bound: 0.125,
                    payload: vec![1, 2, 3],
                },
                Candidate {
                    id: 8,
                    lower_bound: 2.0,
                    payload: vec![],
                },
            ]),
            Response::Error("bucket b9 missing".into()),
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_messages_rejected() {
        let req = Request::Insert(vec![entry(1)]);
        let bytes = req.encode();
        for cut in [0, 1, 4, bytes.len() - 1] {
            assert!(Request::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let resp = Response::Candidates(vec![Candidate {
            id: 1,
            lower_bound: 0.0,
            payload: vec![9; 4],
        }]);
        let bytes = resp.encode();
        for cut in [0, 3, bytes.len() - 1] {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(Request::decode(&[0xFF]).is_err());
        assert!(Response::decode(&[0xFF]).is_err());
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Request::Info.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        let mut bytes = Request::Range {
            distances: vec![1.0],
            radius: 1.0,
        }
        .encode();
        bytes.push(7);
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn health_round_trip() {
        assert_eq!(
            Request::decode(&Request::Health.encode()).unwrap(),
            Request::Health
        );
        let mut bytes = Request::Health.encode();
        bytes.push(1);
        assert!(
            Request::decode(&bytes).is_err(),
            "health request must carry no payload"
        );
        let resp = Response::Health {
            status: 0,
            protocol: PROTOCOL_VERSION,
            entries: 1_000_000,
            shards: 4,
            uptime_nanos: 987_654_321,
        };
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
        for cut in [1, 2, 5, 13, bytes.len() - 1] {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut bytes = resp.encode();
        bytes.push(0);
        assert!(Response::decode(&bytes).is_err(), "trailing byte rejected");
    }

    #[test]
    fn metrics_snapshot_round_trip() {
        assert_eq!(
            Request::decode(&Request::MetricsSnapshot.encode()).unwrap(),
            Request::MetricsSnapshot
        );
        let mut bytes = Request::MetricsSnapshot.encode();
        bytes.push(1);
        assert!(
            Request::decode(&bytes).is_err(),
            "metrics request must carry no payload"
        );
        // u32 framing must carry texts past the u16 boundary that
        // `encode_message` truncates at.
        let text = "counter server.requests 1\n".repeat(4000);
        assert!(text.len() > u16::MAX as usize);
        let resp = Response::MetricsSnapshot(text);
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
        for cut in [1, 4, bytes.len() - 1] {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    /// The privacy audit in code form: a Range/ApproxKnn request contains
    /// only distances/permutation and scalar parameters — its size is
    /// independent of the query object's content beyond the pivot count.
    #[test]
    fn query_requests_leak_only_routing() {
        let r1 = Request::Range {
            distances: vec![1.0; 30],
            radius: 0.5,
        };
        let r2 = Request::Range {
            distances: vec![123456.0; 30],
            radius: 9.75,
        };
        assert_eq!(r1.encode().len(), r2.encode().len());
    }
}
