//! Cost accounting matching the paper's measurement methodology (§5.2–5.3).
//!
//! Every operation returns a [`CostReport`] with the exact components the
//! evaluation tables break out: client / encryption / decryption / distance
//! computation / server / communication time, plus byte-exact communication
//! cost. Reports add up, so a bulk construction or a 100-query batch is the
//! sum of its operations — the same aggregation the paper performs.

use std::time::Duration;

/// Cost components of one or more client operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Total client-side computation (includes encryption, decryption,
    /// distance computations and processing overhead — the paper's
    /// "client time").
    pub client: Duration,
    /// Time sealing objects (construction) — subset of `client`.
    pub encryption: Duration,
    /// Time of the whole candidate-refinement loop: unsealing,
    /// deserializing and the per-candidate metric evaluations (search) —
    /// subset of `client` ("decryption time"). The loop is timed as one
    /// phase: with decrypt-on-demand refinement, per-candidate stopwatches
    /// would cost a measurable fraction of the work they measure.
    pub decryption: Duration,
    /// Time computing query–pivot distances on the client — subset of
    /// `client` ("dist. comp. time"). Refinement-loop metric evaluations
    /// are timed inside `decryption` (see above) but *counted* exactly in
    /// `distance_computations`.
    pub distance: Duration,
    /// Server-side processing time.
    pub server: Duration,
    /// Communication time (modelled for in-process, measured for TCP).
    pub communication: Duration,
    /// Bytes sent client → server.
    pub bytes_sent: u64,
    /// Bytes received server → client.
    pub bytes_received: u64,
    /// Client-side metric evaluations.
    pub distance_computations: u64,
    /// Candidates received (search ops).
    pub candidates: u64,
    /// Candidates actually unsealed during refinement. Eager refinement
    /// decrypts everything (`decrypted == candidates`); lazy decrypt-on-
    /// demand refinement stops early, so `1 − decrypted/candidates` is the
    /// early-exit rate.
    pub decrypted: u64,
    /// Candidates that authenticated but decoded to garbage (a buggy
    /// authorized writer) and were skipped by refinement instead of
    /// aborting the query. Authentication (MAC) failures are *not* counted
    /// here — they are active tampering and abort the query immediately.
    pub bad_candidates: u64,
    /// Sealed objects pulled in phase-2 `FetchObjects` round trips (the
    /// two-phase wire). Candidates inlined in the phase-1 answer are *not*
    /// counted: `candidates − fetched` payload transfers were saved
    /// relative to the eager single-phase wire, minus the over-fetch
    /// `fetched − (decrypted − inlined)` the adaptive batching cost.
    pub fetched: u64,
    /// Phase-2 round trips issued (`FetchObjects` exchanges).
    pub fetch_requests: u64,
}

impl CostReport {
    /// The paper's "overall time": client + server + communication.
    pub fn overall(&self) -> Duration {
        self.client + self.server + self.communication
    }

    /// The paper's "communication cost" in kB (total bytes / 1000).
    pub fn communication_kb(&self) -> f64 {
        (self.bytes_sent + self.bytes_received) as f64 / 1000.0
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &CostReport) {
        self.client += other.client;
        self.encryption += other.encryption;
        self.decryption += other.decryption;
        self.distance += other.distance;
        self.server += other.server;
        self.communication += other.communication;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.distance_computations += other.distance_computations;
        self.candidates += other.candidates;
        self.decrypted += other.decrypted;
        self.bad_candidates += other.bad_candidates;
        self.fetched += other.fetched;
        self.fetch_requests += other.fetch_requests;
    }

    /// Divides all components by `n` (average over a query batch — the
    /// paper averages over 100 queries).
    pub fn averaged(&self, n: u32) -> CostReport {
        assert!(n > 0);
        CostReport {
            client: self.client / n,
            encryption: self.encryption / n,
            decryption: self.decryption / n,
            distance: self.distance / n,
            server: self.server / n,
            communication: self.communication / n,
            bytes_sent: self.bytes_sent / n as u64,
            bytes_received: self.bytes_received / n as u64,
            distance_computations: self.distance_computations / n as u64,
            candidates: self.candidates / n as u64,
            decrypted: self.decrypted / n as u64,
            bad_candidates: self.bad_candidates / n as u64,
            fetched: self.fetched / n as u64,
            fetch_requests: self.fetch_requests / n as u64,
        }
    }
}

impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Client time [s]        {:>10.4}",
            self.client.as_secs_f64()
        )?;
        if self.encryption > Duration::ZERO {
            writeln!(
                f,
                "  Encryption time [s]  {:>10.4}",
                self.encryption.as_secs_f64()
            )?;
        }
        if self.decryption > Duration::ZERO {
            writeln!(
                f,
                "  Decryption time [s]  {:>10.4}",
                self.decryption.as_secs_f64()
            )?;
        }
        writeln!(
            f,
            "  Dist. comp. time [s] {:>10.4}",
            self.distance.as_secs_f64()
        )?;
        writeln!(
            f,
            "Server time [s]        {:>10.4}",
            self.server.as_secs_f64()
        )?;
        writeln!(
            f,
            "Communication time [s] {:>10.4}",
            self.communication.as_secs_f64()
        )?;
        writeln!(
            f,
            "Overall time [s]       {:>10.4}",
            self.overall().as_secs_f64()
        )?;
        if self.candidates > 0 {
            writeln!(
                f,
                "Candidates decrypted   {:>7} of {} ({:.1}% early-exit)",
                self.decrypted,
                self.candidates,
                100.0 * (1.0 - self.decrypted as f64 / self.candidates as f64)
            )?;
        }
        if self.fetch_requests > 0 {
            writeln!(
                f,
                "Phase-2 fetches        {:>7} objects in {} round trips",
                self.fetched, self.fetch_requests
            )?;
        }
        write!(
            f,
            "Communication cost [kB] {:>9.3}",
            self.communication_kb()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostReport {
        CostReport {
            client: Duration::from_millis(10),
            encryption: Duration::from_millis(3),
            decryption: Duration::from_millis(2),
            distance: Duration::from_millis(4),
            server: Duration::from_millis(5),
            communication: Duration::from_millis(1),
            bytes_sent: 1000,
            bytes_received: 3000,
            distance_computations: 42,
            candidates: 10,
            decrypted: 6,
            bad_candidates: 2,
            fetched: 4,
            fetch_requests: 2,
        }
    }

    #[test]
    fn overall_is_three_component_sum() {
        let c = sample();
        assert_eq!(c.overall(), Duration::from_millis(16));
        assert!((c.communication_kb() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_then_average_round_trips() {
        let mut total = CostReport::default();
        for _ in 0..4 {
            total.merge(&sample());
        }
        let avg = total.averaged(4);
        assert_eq!(avg, sample());
    }

    #[test]
    fn display_has_paper_row_labels() {
        let s = sample().to_string();
        for label in [
            "Client time [s]",
            "Encryption time [s]",
            "Decryption time [s]",
            "Dist. comp. time [s]",
            "Server time [s]",
            "Communication time [s]",
            "Overall time [s]",
            "Candidates decrypted",
            "Phase-2 fetches",
            "Communication cost [kB]",
        ] {
            assert!(s.contains(label), "missing {label} in:\n{s}");
        }
    }

    #[test]
    #[should_panic]
    fn average_by_zero_panics() {
        let _ = sample().averaged(0);
    }

    /// The early-exit rate is derived from `decrypted` vs `candidates` and
    /// shown in every table; a report with no candidates omits the line.
    #[test]
    fn display_shows_early_exit_rate() {
        let s = sample().to_string();
        assert!(s.contains("6 of 10"), "missing decrypted counts:\n{s}");
        assert!(s.contains("40.0% early-exit"), "missing rate:\n{s}");
        let quiet = CostReport::default().to_string();
        assert!(
            !quiet.contains("Candidates decrypted"),
            "no-candidate report must omit the line:\n{quiet}"
        );
    }
}
