//! # simcloud-core — the Encrypted M-Index
//!
//! Reproduction of the primary contribution of *Secure Metric-Based Index
//! for Similarity Cloud* (Kozák, Novak, Zezula; SDM @ VLDB 2012): a metric
//! similarity index outsourced to an untrusted "similarity cloud" such that
//! the server can still do most of the search work while learning almost
//! nothing about the data.
//!
//! ## The idea (paper §4.2)
//!
//! Pivot-permutation indexes like the M-Index need only the *ordering* of a
//! fixed pivot set by distance — never the objects, the pivots, or the
//! metric. So:
//!
//! * the **secret key** ([`SecretKey`]) = pivot set + AES key, held by the
//!   data owner and authorized clients;
//! * **insert** ([`EncryptedClient::insert_bulk`], Alg. 1): the client
//!   computes object–pivot distances, derives the routing information,
//!   AES-seals the object and ships `{routing, ciphertext}`;
//! * **search** ([`EncryptedClient::range`] / [`EncryptedClient::knn_approx`] /
//!   [`EncryptedClient::knn_precise`], Alg. 2–4): the client sends
//!   query–pivot distances (precise) or the query permutation
//!   (approximate); the server prunes/ranks its Voronoi cell tree, returns
//!   a pre-ranked candidate set of sealed objects; the client decrypts and
//!   refines.
//!
//! The server half is [`CloudServer`]; it implements the byte
//! [`protocol`] and can run in-process or behind TCP ([`cloud`]).
//! [`CostReport`] captures the paper's cost decomposition (client /
//! encryption / decryption / distance / server / communication) for every
//! operation.
//!
//! ## Privacy level
//!
//! The base system is level 3 of the paper's taxonomy (§2.3): objects are
//! encrypted; permutations/distances leak partial distribution information.
//! The [`transform`] module implements the paper's *future-work* level-4
//! extension: a keyed monotone distance transformation that hides distance
//! values from the server at a quantified pruning-power cost.

#![warn(missing_docs)]

pub mod client;
pub mod cloud;
pub mod costs;
pub mod key;
pub mod protocol;
pub mod server;
pub mod telemetry;
pub mod transform;

pub use client::{ClientConfig, ClientError, EncryptedClient, LazyRefine, Neighbor, ServerHealth};
pub use cloud::{
    client_for, client_for_with_model, connect_tcp, connect_tcp_with, in_process,
    in_process_rebuilt, in_process_with_model, over_tcp, serve_tcp_concurrent,
    serve_tcp_concurrent_with, InProcessCloud, SharedCloud,
};
pub use costs::CostReport;
pub use key::SecretKey;
pub use server::{check_cand_size, evaluator_for, stage_candidates, CloudServer, ServerConfig};
pub use telemetry::{request_label, ServerTelemetry, SLOW_LOG_CAPACITY};
pub use transform::DistanceTransform;

/// Recall measure re-exported from the index layer (paper §4.1).
pub use simcloud_mindex::recall;
