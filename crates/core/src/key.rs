//! The secret key of the Encrypted M-Index (paper §4.2–4.3).
//!
//! "The secret key of authorized clients consist\[s\] of the set of pivots and
//! key for symmetric cipher used to encrypt the data." Distribution of this
//! struct to a client is what *authorizes* it: without the pivots a party
//! cannot form meaningful queries, and without the cipher key it cannot read
//! candidate objects.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use simcloud_crypto::envelope::EnvelopeMode;
use simcloud_crypto::CipherKey;
use simcloud_metric::{select_pivots, Metric, PivotSelection, Vector};

/// Secret key: pivot set + symmetric cipher key (+ the envelope mode).
#[derive(Clone)]
pub struct SecretKey {
    pivots: Vec<Vector>,
    cipher: CipherKey,
    mode: EnvelopeMode,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The pivots are the sensitive part: never print them.
        write!(
            f,
            "SecretKey{{{} pivots, cipher {:?}}}",
            self.pivots.len(),
            self.cipher
        )
    }
}

impl SecretKey {
    /// Assembles a key from explicit parts.
    pub fn new(pivots: Vec<Vector>, cipher: CipherKey, mode: EnvelopeMode) -> Self {
        assert!(!pivots.is_empty(), "secret key needs at least one pivot");
        Self {
            pivots,
            cipher,
            mode,
        }
    }

    /// Data-owner key generation: selects `n` pivots from the owner's data
    /// (the paper chooses them "at random from within the data set", §5.1)
    /// and derives cipher keys from a fresh random master secret.
    ///
    /// Returns the key and the 32-byte master secret the owner distributes
    /// to authorized clients alongside the pivots.
    pub fn generate<M: Metric<Vector>>(
        data: &[Vector],
        n: usize,
        metric: &M,
        selection: PivotSelection,
        seed: u64,
    ) -> (Self, [u8; 32]) {
        let pivots = select_pivots(data, n, metric, selection, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ec2e7);
        let mut master = [0u8; 32];
        rng.fill_bytes(&mut master);
        let cipher = CipherKey::derive_from_master(&master);
        (
            Self {
                pivots,
                cipher,
                mode: EnvelopeMode::Ctr,
            },
            master,
        )
    }

    /// Reconstructs the key on an authorized client from distributed parts.
    pub fn from_master(pivots: Vec<Vector>, master: &[u8]) -> Self {
        Self {
            pivots,
            cipher: CipherKey::derive_from_master(master),
            mode: EnvelopeMode::Ctr,
        }
    }

    /// The pivot set.
    pub fn pivots(&self) -> &[Vector] {
        &self.pivots
    }

    /// Number of pivots `n`.
    pub fn num_pivots(&self) -> usize {
        self.pivots.len()
    }

    /// The envelope (cipher + MAC) key.
    pub fn cipher(&self) -> &CipherKey {
        &self.cipher
    }

    /// Envelope mode used for sealing objects.
    pub fn mode(&self) -> EnvelopeMode {
        self.mode
    }

    /// Switches the envelope mode (CTR default, CBC for 2012-JCE fidelity).
    pub fn with_mode(mut self, mode: EnvelopeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Computes the object–pivot distances `d(o, p_i)` — the client-side
    /// step of Alg. 1 line 1 / Alg. 2 line 1.
    pub fn pivot_distances<M: Metric<Vector>>(&self, metric: &M, o: &Vector) -> Vec<f64> {
        self.pivots.iter().map(|p| metric.distance(o, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcloud_metric::L2;

    fn sample_data(n: usize) -> Vec<Vector> {
        (0..n)
            .map(|i| Vector::new(vec![i as f32, (i * i % 13) as f32]))
            .collect()
    }

    #[test]
    fn generate_and_rederive() {
        let data = sample_data(40);
        let (key, master) = SecretKey::generate(&data, 5, &L2, PivotSelection::Random, 11);
        assert_eq!(key.num_pivots(), 5);
        let client_key = SecretKey::from_master(key.pivots().to_vec(), &master);
        // Same cipher: something sealed by the owner opens on the client.
        let mut rng = StdRng::seed_from_u64(1);
        let sealed = key.cipher().seal(b"obj", key.mode(), &mut rng);
        assert_eq!(client_key.cipher().unseal(&sealed).unwrap(), b"obj");
        // Same pivots → same distances.
        let q = Vector::new(vec![3.0, 4.0]);
        assert_eq!(
            key.pivot_distances(&L2, &q),
            client_key.pivot_distances(&L2, &q)
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let data = sample_data(30);
        let (k1, m1) = SecretKey::generate(&data, 4, &L2, PivotSelection::Random, 7);
        let (k2, m2) = SecretKey::generate(&data, 4, &L2, PivotSelection::Random, 7);
        assert_eq!(m1, m2);
        assert_eq!(k1.pivots(), k2.pivots());
        let (k3, m3) = SecretKey::generate(&data, 4, &L2, PivotSelection::Random, 8);
        assert!(m1 != m3 || k1.pivots() != k3.pivots());
    }

    #[test]
    fn debug_hides_pivots() {
        let data = sample_data(10);
        let (key, _) = SecretKey::generate(&data, 3, &L2, PivotSelection::Random, 1);
        let dbg = format!("{key:?}");
        assert!(dbg.contains("3 pivots"));
        assert!(!dbg.contains('['), "no pivot coordinates in {dbg}");
    }

    #[test]
    fn distances_match_metric() {
        let pivots = vec![Vector::new(vec![0.0]), Vector::new(vec![10.0])];
        let cipher = CipherKey::derive_from_master(b"m");
        let key = SecretKey::new(pivots, cipher, EnvelopeMode::Ctr);
        let ds = key.pivot_distances(&L2, &Vector::new(vec![4.0]));
        assert_eq!(ds, vec![4.0, 6.0]);
    }

    #[test]
    fn mode_switch() {
        let data = sample_data(10);
        let (key, _) = SecretKey::generate(&data, 2, &L2, PivotSelection::Random, 2);
        let key = key.with_mode(EnvelopeMode::Cbc);
        assert_eq!(key.mode(), EnvelopeMode::Cbc);
    }
}
