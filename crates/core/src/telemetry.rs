//! The **one** telemetry snapshot path every server front end routes
//! through.
//!
//! [`ServerTelemetry`] owns everything a server reports about itself:
//! the metric [`Registry`], the request/phase latency histograms, the
//! per-request and accumulated [`SearchStats`] (including the
//! zero-on-failure rule), the entries gauge the ops surface answers
//! from, and the slow-query log. `CloudServer` and the sharded front
//! end both hold one of these and delegate — the two deployments report
//! identically *shaped* metrics by construction, because there is no
//! second implementation to drift (the stats-sampling inconsistencies
//! between them were exactly such drift).
//!
//! The [`Request::Health`] / [`Request::MetricsSnapshot`] answers are
//! assembled **entirely from pre-aggregated atomics and side locks**
//! owned by this struct — never from the index behind its
//! reader–writer lock — so the ops surface stays responsive while a
//! bulk insert holds the index write lock. This module is part of the
//! analyzer's zero-panic server zone.

use std::sync::Arc;

use parking_lot::Mutex;
use simcloud_mindex::{SearchStats, SharedSearchStats};
use simcloud_telemetry::{Counter, Gauge, Histogram, Registry, SlowLog, SlowQuery, Trace};

use crate::protocol::{Request, Response, PROTOCOL_VERSION};

/// Worst-N slow-query retention (per server).
pub const SLOW_LOG_CAPACITY: usize = 16;

/// Wire label of a request, used for trace labels and the slow-query
/// log. Shared by every front end so the two servers label identically.
pub fn request_label(request: &Request) -> &'static str {
    match request {
        Request::Insert(_) => "insert",
        Request::Range { .. } => "range",
        Request::ApproxKnn { .. } => "knn",
        Request::Info => "info",
        Request::ExportAll => "export",
        Request::BatchKnn(_) => "batch_knn",
        Request::FetchObjects { .. } => "fetch",
        Request::Health => "health",
        Request::MetricsSnapshot => "metrics",
    }
}

/// Unified per-server telemetry: registry, request/phase histograms,
/// search-stat accounting, entries gauge and slow-query log.
#[derive(Debug)]
pub struct ServerTelemetry {
    registry: Registry,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    entries: Arc<Gauge>,
    request_hist: Arc<Histogram>,
    decode_hist: Arc<Histogram>,
    route_hist: Arc<Histogram>,
    open_hist: Arc<Histogram>,
    pull_hist: Arc<Histogram>,
    stage_hist: Arc<Histogram>,
    encode_hist: Arc<Histogram>,
    insert_hist: Arc<Histogram>,
    slow: SlowLog,
    last_search_stats: Mutex<SearchStats>,
    total_search_stats: SharedSearchStats,
}

impl Default for ServerTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerTelemetry {
    /// Fresh telemetry with its own registry (the usual case: one
    /// registry per server process).
    pub fn new() -> Self {
        Self::with_registry(Registry::new())
    }

    /// Telemetry over an existing registry (lets a deployment aggregate
    /// server, storage and transport metrics into one exposition).
    pub fn with_registry(registry: Registry) -> Self {
        ServerTelemetry {
            requests: registry.counter("server", "requests"),
            errors: registry.counter("server", "errors"),
            entries: registry.gauge("server", "entries"),
            request_hist: registry.histogram("server", "request"),
            decode_hist: registry.histogram("server", "phase_decode"),
            route_hist: registry.histogram("server", "phase_route"),
            open_hist: registry.histogram("server", "phase_open"),
            pull_hist: registry.histogram("server", "phase_pull"),
            stage_hist: registry.histogram("server", "phase_stage"),
            encode_hist: registry.histogram("server", "phase_encode"),
            insert_hist: registry.histogram("server", "phase_insert"),
            slow: SlowLog::new(SLOW_LOG_CAPACITY),
            last_search_stats: Mutex::new(SearchStats::default()),
            total_search_stats: SharedSearchStats::new(),
            registry,
        }
    }

    /// The underlying registry (bind storage/shard/transport metrics
    /// here, or render it directly).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Turns span timing (and slow-query capture) on or off.
    pub fn set_enabled(&self, on: bool) {
        self.registry.set_enabled(on);
    }

    /// Whether span timing is on.
    pub fn enabled(&self) -> bool {
        self.registry.enabled()
    }

    /// Opens a per-request trace (disabled ⇒ zero clock reads).
    pub fn trace(&self) -> Trace {
        self.trace_labeled("request")
    }

    /// [`ServerTelemetry::trace`] with the request kind already known.
    pub fn trace_labeled(&self, label: &'static str) -> Trace {
        if self.registry.enabled() {
            Trace::started(label)
        } else {
            Trace::disabled()
        }
    }

    /// Closes a request: counts it, records whole-request latency and
    /// offers the phase breakdown to the slow-query log.
    pub fn finish(&self, trace: Trace) {
        self.requests.inc();
        if let Some(record) = trace.finish() {
            self.request_hist.record(record.total_nanos);
            self.slow.offer(record);
        }
    }

    /// Counts error-shaped responses (one call site per front end, so
    /// both servers agree on what an "error" is).
    pub fn note_response(&self, response: &Response) {
        if matches!(response, Response::Error(_) | Response::InsertError { .. }) {
            self.errors.inc();
        }
    }

    /// Records a completed search's stats: per-request snapshot replaced,
    /// totals accumulated.
    pub fn record_search(&self, stats: SearchStats) {
        *self.last_search_stats.lock() = stats;
        self.total_search_stats.add(&stats);
    }

    /// Records a failed (or refused) search: the per-request stats are
    /// **zeroed** — a failed search did no accountable work, and stale
    /// numbers must not be attributed to it — and the totals are left
    /// untouched.
    pub fn record_failed_search(&self) {
        *self.last_search_stats.lock() = SearchStats::default();
    }

    /// Statistics of the most recent search request (zeroed when it
    /// failed).
    pub fn last_search_stats(&self) -> SearchStats {
        *self.last_search_stats.lock()
    }

    /// Accumulated statistics over all successful searches.
    pub fn total_search_stats(&self) -> SearchStats {
        self.total_search_stats.snapshot()
    }

    /// Sets the entries gauge (on construction over a recovered store).
    pub fn set_entries(&self, n: u64) {
        self.entries.set(n);
    }

    /// Raises the entries gauge (after successful inserts).
    pub fn add_entries(&self, n: u64) {
        self.entries.add(n);
    }

    /// Current entries gauge (what `Health` reports).
    pub fn entries(&self) -> u64 {
        self.entries.get()
    }

    /// The retained slow queries, slowest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.snapshot()
    }

    /// Answers [`Request::Health`] from atomics only — by construction
    /// this cannot block on the index lock.
    pub fn health_response(&self, shards: u32) -> Response {
        Response::Health {
            status: 0,
            protocol: PROTOCOL_VERSION,
            entries: self.entries.get(),
            shards,
            uptime_nanos: self.registry.uptime_nanos(),
        }
    }

    /// Answers [`Request::MetricsSnapshot`]: the registry exposition,
    /// the accumulated search counters and the slow-query log, in that
    /// order (see the README's metric catalog). Reads atomics and the
    /// telemetry side locks only — never the index lock.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        self.registry.render_into(&mut out);
        let t = self.total_search_stats();
        for (name, value) in [
            ("cells_visited", t.cells_visited),
            ("pruned_hyperplane", t.pruned_hyperplane),
            ("pruned_range_pivot", t.pruned_range_pivot),
            ("entries_scanned", t.entries_scanned),
            ("entries_filtered", t.entries_filtered),
            ("candidates", t.candidates),
            ("candidates_generated", t.candidates_generated),
        ] {
            let _ = writeln!(out, "counter search.{name} {value}");
        }
        self.slow.render_into(&mut out);
        out
    }

    /// Phase histogram: request decode.
    pub fn decode_hist(&self) -> &Histogram {
        &self.decode_hist
    }

    /// Phase histogram: routing/evaluator construction.
    pub fn route_hist(&self) -> &Histogram {
        &self.route_hist
    }

    /// Phase histogram: cursor open (tree walk + staging) under the
    /// read lock.
    pub fn open_hist(&self) -> &Histogram {
        &self.open_hist
    }

    /// Phase histogram: frontier pull (lazy candidate decode).
    pub fn pull_hist(&self) -> &Histogram {
        &self.pull_hist
    }

    /// Phase histogram: phase-1 staging under the inline budget.
    pub fn stage_hist(&self) -> &Histogram {
        &self.stage_hist
    }

    /// Phase histogram: response encode.
    pub fn encode_hist(&self) -> &Histogram {
        &self.encode_hist
    }

    /// Phase histogram: bulk insert under the write lock.
    pub fn insert_hist(&self) -> &Histogram {
        &self.insert_hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_response_is_lock_free_data() {
        let t = ServerTelemetry::new();
        t.set_entries(41);
        t.add_entries(1);
        match t.health_response(4) {
            Response::Health {
                status,
                protocol,
                entries,
                shards,
                ..
            } => {
                assert_eq!(status, 0);
                assert_eq!(protocol, PROTOCOL_VERSION);
                assert_eq!(entries, 42);
                assert_eq!(shards, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failed_search_zeroes_last_but_not_totals() {
        let t = ServerTelemetry::new();
        let stats = SearchStats {
            candidates: 5,
            entries_scanned: 9,
            ..SearchStats::default()
        };
        t.record_search(stats);
        assert_eq!(t.last_search_stats().candidates, 5);
        t.record_failed_search();
        assert_eq!(t.last_search_stats(), SearchStats::default());
        assert_eq!(t.total_search_stats().candidates, 5);
    }

    #[test]
    fn metrics_text_has_all_three_sections() {
        let t = ServerTelemetry::new();
        t.record_search(SearchStats {
            candidates: 3,
            ..SearchStats::default()
        });
        let mut trace = t.trace_labeled("knn");
        {
            let _s = trace.span("stage", t.stage_hist());
        }
        t.finish(trace);
        let text = t.metrics_text();
        assert!(text.contains("counter server.requests 1"), "{text}");
        assert!(text.contains("histogram server.request count=1"), "{text}");
        assert!(text.contains("counter search.candidates 3"), "{text}");
        assert!(text.contains("slow_query rank=1 label=knn"), "{text}");
    }

    #[test]
    fn disabled_telemetry_still_counts_requests() {
        let t = ServerTelemetry::new();
        t.set_enabled(false);
        let trace = t.trace();
        t.finish(trace);
        let text = t.metrics_text();
        assert!(text.contains("counter server.requests 1"), "{text}");
        assert!(text.contains("histogram server.request count=0"), "{text}");
        assert!(t.slow_queries().is_empty(), "no spans when disabled");
    }

    #[test]
    fn request_labels_cover_every_variant() {
        assert_eq!(request_label(&Request::Health), "health");
        assert_eq!(request_label(&Request::MetricsSnapshot), "metrics");
        assert_eq!(request_label(&Request::Info), "info");
    }
}
