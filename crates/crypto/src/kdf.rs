//! PBKDF2-HMAC-SHA-256 (RFC 2898 / RFC 8018).
//!
//! The data owner derives the object-encryption key and the MAC key from one
//! master secret with domain-separating salts ("enc"/"mac"), so a single key
//! distribution to authorized clients suffices (paper §4.2: "the data owner
//! provides the clients with the private information").

use crate::hmac::HmacSha256;

/// Derives `dk_len` bytes from `password` and `salt` with `iterations`
/// rounds of PBKDF2-HMAC-SHA-256.
pub fn pbkdf2_hmac_sha256(password: &[u8], salt: &[u8], iterations: u32, dk_len: usize) -> Vec<u8> {
    assert!(iterations >= 1, "PBKDF2 requires at least one iteration");
    let mut out = Vec::with_capacity(dk_len);
    let mut block_index = 1u32;
    while out.len() < dk_len {
        // U1 = PRF(password, salt || INT(block_index))
        let mut mac = HmacSha256::new(password);
        mac.update(salt);
        mac.update(&block_index.to_be_bytes());
        let mut u = mac.finalize();
        let mut t = u;
        for _ in 1..iterations {
            let mut mac = HmacSha256::new(password);
            mac.update(&u);
            u = mac.finalize();
            for (ti, ui) in t.iter_mut().zip(&u) {
                *ti ^= ui;
            }
        }
        let take = (dk_len - out.len()).min(32);
        out.extend_from_slice(&t[..take]);
        block_index += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_encode;

    /// RFC 7914 §11 PBKDF2-HMAC-SHA-256 vector 1.
    #[test]
    fn rfc7914_vector_1() {
        let dk = pbkdf2_hmac_sha256(b"passwd", b"salt", 1, 64);
        assert_eq!(
            hex_encode(&dk),
            "55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc\
             49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783"
        );
    }

    /// RFC 7914 §11 PBKDF2-HMAC-SHA-256 vector 2 (80 000 iterations).
    #[test]
    fn rfc7914_vector_2() {
        let dk = pbkdf2_hmac_sha256(b"Password", b"NaCl", 80000, 64);
        assert_eq!(
            hex_encode(&dk),
            "4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56\
             a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d"
        );
    }

    #[test]
    fn output_lengths() {
        assert_eq!(pbkdf2_hmac_sha256(b"p", b"s", 2, 16).len(), 16);
        assert_eq!(pbkdf2_hmac_sha256(b"p", b"s", 2, 32).len(), 32);
        assert_eq!(pbkdf2_hmac_sha256(b"p", b"s", 2, 33).len(), 33);
        assert_eq!(pbkdf2_hmac_sha256(b"p", b"s", 2, 100).len(), 100);
    }

    #[test]
    fn prefix_consistency_across_lengths() {
        // PBKDF2 output for a shorter dk_len must be a prefix of the longer
        // one (same password/salt/iterations).
        let short = pbkdf2_hmac_sha256(b"p", b"s", 10, 16);
        let long = pbkdf2_hmac_sha256(b"p", b"s", 10, 48);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn salt_and_iterations_matter() {
        let a = pbkdf2_hmac_sha256(b"p", b"s1", 5, 32);
        let b = pbkdf2_hmac_sha256(b"p", b"s2", 5, 32);
        let c = pbkdf2_hmac_sha256(b"p", b"s1", 6, 32);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = pbkdf2_hmac_sha256(b"p", b"s", 0, 32);
    }
}
