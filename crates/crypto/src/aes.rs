//! AES block cipher (FIPS-197) — 128/192/256-bit keys.
//!
//! The hot path is a 32-bit **T-table** implementation: one 256-entry table
//! per direction fuses SubBytes, ShiftRows and MixColumns into four XORs of
//! rotated table words per column per round (the `rijndael-alg-fst`
//! formulation; the other three tables of the classic four-table layout are
//! byte rotations of the first, so they are derived with `rotate_right` at
//! use). Decryption runs the *equivalent inverse cipher*: the decryption
//! key schedule applies InvMixColumns to the inner round keys once at key
//! expansion, so rounds stay table-driven.
//!
//! Both tables are derived from [`SBOX`] at first use (same pattern as
//! [`inv_sbox`] — no second hand-typed constant as a source of error), and
//! the textbook byte-oriented implementation is kept as the reference the
//! T-table path is property-tested against on random keys and blocks.
//!
//! Correctness is anchored to the FIPS-197 Appendix C known-answer tests and
//! a pair of NIST AESAVS vectors (see the test module).

/// The AES S-box (FIPS-197 Figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box, derived from [`SBOX`] at first use (avoids a second
/// hand-typed table as a source of error).
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by x (i.e. {02}) in GF(2^8) modulo x^8 + x^4 + x^3 + x + 1.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// General GF(2^8) multiplication (Russian-peasant).
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// AES key size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// 128-bit key, 10 rounds — the paper's configuration.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    fn from_len(len: usize) -> Option<Self> {
        match len {
            16 => Some(KeySize::Aes128),
            24 => Some(KeySize::Aes192),
            32 => Some(KeySize::Aes256),
            _ => None,
        }
    }
    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }
    fn nk(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes192 => 6,
            KeySize::Aes256 => 8,
        }
    }
}

/// Fused SubBytes+ShiftRows+MixColumns tables, derived from [`SBOX`] at
/// first use. `te[x]` packs `(02·S[x], S[x], S[x], 03·S[x])` big-endian;
/// `td[x]` packs `(0e·Si[x], 09·Si[x], 0d·Si[x], 0b·Si[x])`. The classic
/// Te1–Te3 / Td1–Td3 tables are byte rotations of these.
fn ttables() -> &'static ([u32; 256], [u32; 256]) {
    use std::sync::OnceLock;
    static TABLES: OnceLock<([u32; 256], [u32; 256])> = OnceLock::new();
    TABLES.get_or_init(|| {
        let inv = inv_sbox();
        let mut te = [0u32; 256];
        let mut td = [0u32; 256];
        for x in 0..256 {
            let s = SBOX[x];
            te[x] = u32::from_be_bytes([gmul(s, 0x02), s, s, gmul(s, 0x03)]);
            let si = inv[x];
            td[x] = u32::from_be_bytes([
                gmul(si, 0x0e),
                gmul(si, 0x09),
                gmul(si, 0x0d),
                gmul(si, 0x0b),
            ]);
        }
        (te, td)
    })
}

/// InvMixColumns of one big-endian column word, via the decryption table:
/// `td[x]` is InvMixColumns of the word `Si[x]·e_row`, so composing with
/// the forward S-box cancels the substitution.
#[inline]
fn inv_mix_word(td: &[u32; 256], w: u32) -> u32 {
    td[SBOX[(w >> 24) as usize] as usize]
        ^ td[SBOX[((w >> 16) & 0xff) as usize] as usize].rotate_right(8)
        ^ td[SBOX[((w >> 8) & 0xff) as usize] as usize].rotate_right(16)
        ^ td[SBOX[(w & 0xff) as usize] as usize].rotate_right(24)
}

/// An expanded AES key ready for block operations.
#[derive(Clone)]
pub struct Aes {
    // rounds + 1 entries; feeds the byte-oriented reference path, which
    // only compiles under test.
    #[cfg_attr(not(test), allow(dead_code))]
    round_keys: Vec<[u8; 16]>,
    enc_keys: Vec<[u32; 4]>, // same schedule as big-endian column words
    dec_keys: Vec<[u32; 4]>, // equivalent-inverse-cipher schedule
    rounds: usize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Aes{{rounds: {}}}", self.rounds)
    }
}

impl Aes {
    /// Expands `key` (16, 24 or 32 bytes). Returns `None` for other lengths.
    pub fn new(key: &[u8]) -> Option<Self> {
        let size = KeySize::from_len(key.len())?;
        let nk = size.nk();
        let rounds = size.rounds();
        let nwords = 4 * (rounds + 1);
        let mut w = vec![[0u8; 4]; nwords];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in nk..nwords {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let mut round_keys = Vec::with_capacity(rounds + 1);
        let mut enc_keys = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut rk = [0u8; 16];
            let mut ek = [0u32; 4];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                ek[c] = u32::from_be_bytes(w[4 * r + c]);
            }
            round_keys.push(rk);
            enc_keys.push(ek);
        }
        // Equivalent inverse cipher: reverse the schedule and push the inner
        // round keys through InvMixColumns once, so decryption rounds can be
        // table-driven just like encryption rounds.
        let (_, td) = ttables();
        let mut dec_keys = Vec::with_capacity(rounds + 1);
        dec_keys.push(enc_keys[rounds]);
        for r in (1..rounds).rev() {
            let mut dk = [0u32; 4];
            for c in 0..4 {
                dk[c] = inv_mix_word(td, enc_keys[r][c]);
            }
            dec_keys.push(dk);
        }
        dec_keys.push(enc_keys[0]);
        Some(Self {
            round_keys,
            enc_keys,
            dec_keys,
            rounds,
        })
    }

    /// Number of rounds (10/12/14).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Encrypts one 16-byte block in place (T-table path).
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let (te, _) = ttables();
        let rk = &self.enc_keys;
        let mut s = [0u32; 4];
        for c in 0..4 {
            s[c] = u32::from_be_bytes(block[4 * c..4 * c + 4].try_into().unwrap()) ^ rk[0][c];
        }
        for rk_r in &rk[1..self.rounds] {
            let mut t = [0u32; 4];
            for c in 0..4 {
                // ShiftRows: row i of the output column comes from input
                // column c+i (mod 4); the rotations select Te1–Te3.
                t[c] = te[(s[c] >> 24) as usize]
                    ^ te[((s[(c + 1) & 3] >> 16) & 0xff) as usize].rotate_right(8)
                    ^ te[((s[(c + 2) & 3] >> 8) & 0xff) as usize].rotate_right(16)
                    ^ te[(s[(c + 3) & 3] & 0xff) as usize].rotate_right(24)
                    ^ rk_r[c];
            }
            s = t;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        for c in 0..4 {
            let w = u32::from_be_bytes([
                SBOX[(s[c] >> 24) as usize],
                SBOX[((s[(c + 1) & 3] >> 16) & 0xff) as usize],
                SBOX[((s[(c + 2) & 3] >> 8) & 0xff) as usize],
                SBOX[(s[(c + 3) & 3] & 0xff) as usize],
            ]) ^ rk[self.rounds][c];
            block[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
        }
    }

    /// Decrypts one 16-byte block in place (equivalent inverse cipher).
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let (_, td) = ttables();
        let inv = inv_sbox();
        let rk = &self.dec_keys;
        let mut s = [0u32; 4];
        for c in 0..4 {
            s[c] = u32::from_be_bytes(block[4 * c..4 * c + 4].try_into().unwrap()) ^ rk[0][c];
        }
        for rk_r in &rk[1..self.rounds] {
            let mut t = [0u32; 4];
            for c in 0..4 {
                // InvShiftRows: row i comes from input column c−i (mod 4).
                t[c] = td[(s[c] >> 24) as usize]
                    ^ td[((s[(c + 3) & 3] >> 16) & 0xff) as usize].rotate_right(8)
                    ^ td[((s[(c + 2) & 3] >> 8) & 0xff) as usize].rotate_right(16)
                    ^ td[(s[(c + 1) & 3] & 0xff) as usize].rotate_right(24)
                    ^ rk_r[c];
            }
            s = t;
        }
        for c in 0..4 {
            let w = u32::from_be_bytes([
                inv[(s[c] >> 24) as usize],
                inv[((s[(c + 3) & 3] >> 16) & 0xff) as usize],
                inv[((s[(c + 2) & 3] >> 8) & 0xff) as usize],
                inv[(s[(c + 1) & 3] & 0xff) as usize],
            ]) ^ rk[self.rounds][c];
            block[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
        }
    }

    /// Byte-oriented reference encryption (the FIPS-197 pseudocode) — kept
    /// as the oracle the T-table path is property-tested against.
    #[cfg(test)]
    fn encrypt_block_bytewise(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Byte-oriented reference decryption (see
    /// [`Self::encrypt_block_bytewise`]).
    #[cfg(test)]
    fn decrypt_block_bytewise(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[self.rounds]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for r in (1..self.rounds).rev() {
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

// State layout: block[4*c + r] = state row r, column c (column-major, as in
// FIPS-197 input mapping).

#[cfg(test)]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[cfg(test)]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[cfg(test)]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    let inv = inv_sbox();
    for b in state.iter_mut() {
        *b = inv[*b as usize];
    }
}

#[cfg(test)]
fn shift_rows(state: &mut [u8; 16]) {
    // row r (r = 1..3) rotates left by r; elements of row r are at indices
    // r, r+4, r+8, r+12.
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[cfg(test)]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

#[cfg(test)]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[cfg(test)]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        state[4 * c + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        state[4 * c + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        state[4 * c + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex_decode, hex_encode};

    fn run_kat(key_hex: &str, pt_hex: &str, ct_hex: &str) {
        let key = hex_decode(key_hex);
        let aes = Aes::new(&key).unwrap();
        let mut block = [0u8; 16];
        block.copy_from_slice(&hex_decode(pt_hex));
        aes.encrypt_block(&mut block);
        assert_eq!(hex_encode(&block), ct_hex, "encrypt KAT failed");
        aes.decrypt_block(&mut block);
        assert_eq!(hex_encode(&block), pt_hex, "decrypt KAT failed");
    }

    /// FIPS-197 Appendix C.1 (AES-128).
    #[test]
    fn fips197_appendix_c1_aes128() {
        run_kat(
            "000102030405060708090a0b0c0d0e0f",
            "00112233445566778899aabbccddeeff",
            "69c4e0d86a7b0430d8cdb78070b4c55a",
        );
    }

    /// FIPS-197 Appendix C.2 (AES-192).
    #[test]
    fn fips197_appendix_c2_aes192() {
        run_kat(
            "000102030405060708090a0b0c0d0e0f1011121314151617",
            "00112233445566778899aabbccddeeff",
            "dda97ca4864cdfe06eaf70a0ec0d7191",
        );
    }

    /// FIPS-197 Appendix C.3 (AES-256).
    #[test]
    fn fips197_appendix_c3_aes256() {
        run_kat(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
            "00112233445566778899aabbccddeeff",
            "8ea2b7ca516745bfeafc49904b496089",
        );
    }

    /// FIPS-197 Appendix B worked example (AES-128).
    #[test]
    fn fips197_appendix_b_example() {
        run_kat(
            "2b7e151628aed2a6abf7158809cf4f3c",
            "3243f6a8885a308d313198a2e0370734",
            "3925841d02dc09fbdc118597196a0b32",
        );
    }

    /// NIST AESAVS KAT: GFSbox AES-128, zero key.
    #[test]
    fn aesavs_gfsbox_128() {
        run_kat(
            "00000000000000000000000000000000",
            "f34481ec3cc627bacd5dc3fb08f273e6",
            "0336763e966d92595a567cc9ce537f5e",
        );
    }

    /// NIST AESAVS KAT: VarKey AES-128 (key = 80..0).
    #[test]
    fn aesavs_varkey_128() {
        run_kat(
            "80000000000000000000000000000000",
            "00000000000000000000000000000000",
            "0edd33d3c621e546455bd8ba1418bec8",
        );
    }

    #[test]
    fn rejects_bad_key_lengths() {
        assert!(Aes::new(&[0u8; 15]).is_none());
        assert!(Aes::new(&[0u8; 17]).is_none());
        assert!(Aes::new(&[]).is_none());
        assert!(Aes::new(&[0u8; 16]).is_some());
        assert!(Aes::new(&[0u8; 24]).is_some());
        assert!(Aes::new(&[0u8; 32]).is_some());
    }

    #[test]
    fn round_counts() {
        assert_eq!(Aes::new(&[0u8; 16]).unwrap().rounds(), 10);
        assert_eq!(Aes::new(&[0u8; 24]).unwrap().rounds(), 12);
        assert_eq!(Aes::new(&[0u8; 32]).unwrap().rounds(), 14);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes::new(&[7u8; 16]).unwrap();
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains('7'), "debug output leaks key material: {dbg}");
        assert!(dbg.contains("rounds"));
    }

    #[test]
    fn encrypt_decrypt_round_trip_many_blocks() {
        let aes = Aes::new(b"0123456789abcdef").unwrap();
        for i in 0..64u8 {
            let mut block = [i; 16];
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig);
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn gf_multiplication_table_identities() {
        assert_eq!(gmul(0x57, 0x13), 0xfe); // FIPS-197 §4.2 example
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
    }

    /// `inv_mix_word` (used to build the equivalent-inverse-cipher key
    /// schedule) must invert the byte-oriented MixColumns on every column.
    #[test]
    fn inv_mix_word_inverts_mix_columns() {
        let (_, td) = ttables();
        for seed in 0..256u32 {
            let mut state = [0u8; 16];
            for (i, b) in state.iter_mut().enumerate() {
                *b = (seed.wrapping_mul(31).wrapping_add(i as u32 * 97) & 0xff) as u8;
            }
            let mut mixed = state;
            mix_columns(&mut mixed);
            for c in 0..4 {
                let w = u32::from_be_bytes(mixed[4 * c..4 * c + 4].try_into().unwrap());
                let back = inv_mix_word(td, w).to_be_bytes();
                assert_eq!(back, state[4 * c..4 * c + 4], "column {c} seed {seed}");
            }
        }
    }

    #[test]
    fn inverse_sbox_is_consistent() {
        let inv = inv_sbox();
        for i in 0..=255u8 {
            assert_eq!(inv[SBOX[i as usize] as usize], i);
        }
    }

    mod ttable_properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// The T-table fast path computes exactly the byte-oriented
            /// FIPS-197 transform, for every key size on random blocks.
            #[test]
            fn ttable_matches_bytewise(
                key in proptest::collection::vec(any::<u8>(), 32),
                block in proptest::collection::vec(any::<u8>(), 16),
                size in 0usize..3,
            ) {
                let key_len = [16, 24, 32][size];
                let aes = Aes::new(&key[..key_len]).unwrap();
                let orig: [u8; 16] = block.clone().try_into().unwrap();

                let mut fast = orig;
                aes.encrypt_block(&mut fast);
                let mut slow = orig;
                aes.encrypt_block_bytewise(&mut slow);
                prop_assert_eq!(fast, slow);

                let mut fast_dec = fast;
                aes.decrypt_block(&mut fast_dec);
                let mut slow_dec = slow;
                aes.decrypt_block_bytewise(&mut slow_dec);
                prop_assert_eq!(fast_dec, slow_dec);
                prop_assert_eq!(fast_dec, orig);
            }
        }
    }
}
