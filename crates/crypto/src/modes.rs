//! Block cipher modes of operation: CBC with PKCS#7 padding and CTR.
//!
//! The paper only says "AES with 128 bit key"; CBC+PKCS7 was the default JCE
//! configuration in 2012, so the envelope supports both CBC (for fidelity)
//! and CTR (the workspace default — no padding overhead, simpler length
//! accounting on the wire).

use crate::aes::Aes;

/// Encrypts `plaintext` with AES-CBC and PKCS#7 padding.
///
/// Output length is `plaintext.len()` rounded up to the next multiple of 16
/// (a full padding block is added when already aligned).
pub fn cbc_encrypt(aes: &Aes, iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
    let padded = pkcs7_pad(plaintext);
    let mut out = Vec::with_capacity(padded.len());
    let mut prev = *iv;
    for chunk in padded.chunks_exact(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        for i in 0..16 {
            block[i] ^= prev[i];
        }
        aes.encrypt_block(&mut block);
        out.extend_from_slice(&block);
        prev = block;
    }
    out
}

/// Decrypts AES-CBC ciphertext and removes PKCS#7 padding.
///
/// Returns `None` on malformed length or invalid padding. Callers that need
/// integrity must verify a MAC before decrypting (see [`crate::envelope`]) —
/// padding errors alone must not be used as an oracle.
pub fn cbc_decrypt(aes: &Aes, iv: &[u8; 16], ciphertext: &[u8]) -> Option<Vec<u8>> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(16) {
        return None;
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = *iv;
    for chunk in ciphertext.chunks_exact(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        let saved = block;
        aes.decrypt_block(&mut block);
        for i in 0..16 {
            block[i] ^= prev[i];
        }
        out.extend_from_slice(&block);
        prev = saved;
    }
    pkcs7_unpad(&mut out)?;
    Some(out)
}

/// AES-CTR keystream application (encryption and decryption are identical).
///
/// The 16-byte IV is the initial counter block; the low 32 bits increment
/// per block (big-endian), which caps a single message at 2^36 bytes — far
/// beyond any MS object.
pub fn ctr_apply(aes: &Aes, iv: &[u8; 16], data: &mut [u8]) {
    let mut counter = *iv;
    let mut offset = 0;
    while offset < data.len() {
        let mut keystream = counter;
        aes.encrypt_block(&mut keystream);
        let take = (data.len() - offset).min(16);
        for i in 0..take {
            data[offset + i] ^= keystream[i];
        }
        offset += take;
        // increment low 32 bits big-endian
        for i in (12..16).rev() {
            counter[i] = counter[i].wrapping_add(1);
            if counter[i] != 0 {
                break;
            }
        }
    }
}

fn pkcs7_pad(data: &[u8]) -> Vec<u8> {
    let pad = 16 - (data.len() % 16);
    let mut out = Vec::with_capacity(data.len() + pad);
    out.extend_from_slice(data);
    out.resize(data.len() + pad, pad as u8);
    out
}

fn pkcs7_unpad(data: &mut Vec<u8>) -> Option<()> {
    let &last = data.last()?;
    let pad = last as usize;
    if pad == 0 || pad > 16 || pad > data.len() {
        return None;
    }
    if !data[data.len() - pad..].iter().all(|&b| b == last) {
        return None;
    }
    data.truncate(data.len() - pad);
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_decode;

    fn aes128() -> Aes {
        // NIST SP 800-38A key
        Aes::new(&hex_decode("2b7e151628aed2a6abf7158809cf4f3c")).unwrap()
    }

    /// NIST SP 800-38A F.2.1 CBC-AES128.Encrypt (first two blocks; no
    /// padding involved because we check the raw block transform).
    #[test]
    fn sp800_38a_cbc_first_blocks() {
        let aes = aes128();
        let iv: [u8; 16] = hex_decode("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let pt = hex_decode("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51");
        let ct = cbc_encrypt(&aes, &iv, &pt);
        // First 32 bytes must match the standard; the tail is our padding block.
        assert_eq!(
            crate::hex_encode(&ct[..32]),
            "7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b2"
        );
        let back = cbc_decrypt(&aes, &iv, &ct).unwrap();
        assert_eq!(back, pt);
    }

    /// NIST SP 800-38A F.5.1 CTR-AES128.Encrypt (full four blocks).
    #[test]
    fn sp800_38a_ctr() {
        let aes = aes128();
        let iv: [u8; 16] = hex_decode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .try_into()
            .unwrap();
        let mut data = hex_decode(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
        );
        ctr_apply(&aes, &iv, &mut data);
        assert_eq!(
            crate::hex_encode(&data),
            "874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff\
             5ae4df3edbd5d35e5b4f09020db03eab1e031dda2fbe03d1792170a0f3009cee"
        );
        // CTR is an involution with the same key/iv.
        ctr_apply(&aes, &iv, &mut data);
        assert_eq!(
            crate::hex_encode(&data),
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"
        );
    }

    #[test]
    fn cbc_round_trip_various_lengths() {
        let aes = aes128();
        let iv = [7u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let ct = cbc_encrypt(&aes, &iv, &pt);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > pt.len(), "PKCS7 always adds padding");
            assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn ctr_round_trip_various_lengths() {
        let aes = aes128();
        let iv = [3u8; 16];
        for len in [0usize, 1, 15, 16, 17, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 13 % 256) as u8).collect();
            let mut data = pt.clone();
            ctr_apply(&aes, &iv, &mut data);
            if len > 0 {
                assert_ne!(data, pt);
            }
            ctr_apply(&aes, &iv, &mut data);
            assert_eq!(data, pt, "len {len}");
        }
    }

    #[test]
    fn cbc_decrypt_rejects_malformed() {
        let aes = aes128();
        let iv = [0u8; 16];
        assert!(cbc_decrypt(&aes, &iv, &[]).is_none());
        assert!(cbc_decrypt(&aes, &iv, &[0u8; 15]).is_none());
        assert!(cbc_decrypt(&aes, &iv, &[0u8; 17]).is_none());
    }

    #[test]
    fn cbc_tampered_padding_rejected_or_garbage() {
        let aes = aes128();
        let iv = [1u8; 16];
        let ct = cbc_encrypt(&aes, &iv, b"hello world");
        // Flipping the last byte invalidates padding with high probability;
        // either decode fails or yields different plaintext.
        let mut bad = ct.clone();
        *bad.last_mut().unwrap() ^= 0xff;
        match cbc_decrypt(&aes, &iv, &bad) {
            None => {}
            Some(pt) => assert_ne!(pt, b"hello world"),
        }
    }

    #[test]
    fn pkcs7_full_block_when_aligned() {
        let padded = pkcs7_pad(&[0u8; 16]);
        assert_eq!(padded.len(), 32);
        assert!(padded[16..].iter().all(|&b| b == 16));
    }

    #[test]
    fn different_ivs_different_ciphertexts() {
        let aes = aes128();
        let a = cbc_encrypt(&aes, &[0u8; 16], b"same message");
        let b = cbc_encrypt(&aes, &[1u8; 16], b"same message");
        assert_ne!(a, b);
    }
}
