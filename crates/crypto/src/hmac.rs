//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the [`crate::envelope`] for encrypt-then-MAC integrity and by
//! [`crate::kdf`] for key derivation. Validated against RFC 4231 test cases.

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA-256.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key` (any length; hashed if longer
    /// than the block size, zero-padded otherwise per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            let d = Sha256::digest(key);
            k[..32].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; BLOCK];
        let mut opad_key = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad_key[i] = k[i] ^ 0x36;
            opad_key[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        Self { inner, opad_key }
    }

    /// Feeds message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex_decode, hex_encode};

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex_encode(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex_encode(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex_encode(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6 (key longer than block size).
    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex_encode(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    /// RFC 4231 test case 7 (long key and long data).
    #[test]
    fn rfc4231_case_7() {
        let key = [0xaa; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let mac = hmac_sha256(&key, data);
        assert_eq!(
            hex_encode(&mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let key = hex_decode("deadbeef");
        let mut mac = HmacSha256::new(&key);
        mac.update(b"part one ");
        mac.update(b"part two");
        assert_eq!(mac.finalize(), hmac_sha256(&key, b"part one part two"));
    }

    #[test]
    fn different_keys_different_macs() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
        assert_ne!(hmac_sha256(b"k", b"msg1"), hmac_sha256(b"k", b"msg2"));
    }
}
