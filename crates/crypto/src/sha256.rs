//! SHA-256 (FIPS 180-4).
//!
//! Streaming implementation with the standard Merkle–Damgård padding.
//! Validated against the FIPS 180-4 examples and NIST CAVP short-message
//! vectors in the test module.

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: `Sha256::digest(data)`.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let block: &[u8; 64] = block.try_into().expect("exactly 64 bytes");
            let mut state = self.state;
            compress(&mut state, block);
            self.state = state;
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length — written in place
        // (byte-at-a-time `update` calls here used to cost more than a
        // whole compression for short messages).
        let len = self.buf_len;
        self.buf[len] = 0x80;
        if len < 56 {
            self.buf[len + 1..56].fill(0);
        } else {
            self.buf[len + 1..].fill(0);
            let block = self.buf;
            self.compress(&block);
            self.buf[..56].fill(0);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut state = self.state;
        compress(&mut state, block);
        self.state = state;
    }
}

/// The SHA-256 compression function (free function so the hot streaming
/// path can run it on borrowed input blocks without a 64-byte staging copy).
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    // Eight-way unrolled rounds: instead of shifting all eight working
    // variables every round, each round is instantiated with the roles
    // rotated one place — the compiler keeps everything in registers and
    // the per-round variable shuffle disappears.
    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $i:expr) => {
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ ((!$e) & $g);
            let t1 = $h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[$i])
                .wrapping_add(w[$i]);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0.wrapping_add(maj));
        };
    }
    for i in (0..64).step_by(8) {
        round!(a, b, c, d, e, f, g, h, i);
        round!(h, a, b, c, d, e, f, g, i + 1);
        round!(g, h, a, b, c, d, e, f, i + 2);
        round!(f, g, h, a, b, c, d, e, i + 3);
        round!(e, f, g, h, a, b, c, d, i + 4);
        round!(d, e, f, g, h, a, b, c, i + 5);
        round!(c, d, e, f, g, h, a, b, i + 6);
        round!(b, c, d, e, f, g, h, a, i + 7);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_encode;

    #[test]
    fn empty_message() {
        assert_eq!(
            hex_encode(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    /// FIPS 180-4 example 1.
    #[test]
    fn abc() {
        assert_eq!(
            hex_encode(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    /// FIPS 180-4 example 2 (two-block message).
    #[test]
    fn two_block_message() {
        assert_eq!(
            hex_encode(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    /// NIST CAVP one-byte vector.
    #[test]
    fn single_byte() {
        assert_eq!(
            hex_encode(&Sha256::digest(&[0xbd])),
            "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b"
        );
    }

    /// One million 'a' characters (FIPS 180-4 example 3) — exercises
    /// streaming across many blocks.
    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex_encode(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_one_shot_at_odd_boundaries() {
        let data: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha256::digest(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 128, 299] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn clone_preserves_state() {
        let mut a = Sha256::new();
        a.update(b"hello ");
        let mut b = a.clone();
        a.update(b"world");
        b.update(b"world");
        assert_eq!(a.finalize(), b.finalize());
    }
}
