//! # simcloud-crypto — symmetric cryptography substrate
//!
//! The Encrypted M-Index paper encrypts metric-space objects with a "standard
//! symmetric cipher AES with 128 bit key" (§5.1). No cryptography crates are
//! available in this offline reproduction, so this crate implements the full
//! stack from scratch:
//!
//! * [`aes`] — the AES block cipher (FIPS-197), 128/192/256-bit keys,
//!   validated against the FIPS-197 and NIST AESAVS known-answer vectors;
//! * [`modes`] — CBC with PKCS#7 padding and CTR mode;
//! * [`sha256`] — SHA-256 (FIPS 180-4), validated against NIST vectors;
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104), validated against RFC 4231;
//! * [`kdf`] — PBKDF2-HMAC-SHA-256 (RFC 2898), validated against the RFC 7914
//!   published vectors;
//! * [`envelope`] — the encrypt-then-MAC envelope ([`Envelope`]) the
//!   similarity cloud uses for MS objects: AES-128-CTR + HMAC-SHA-256 with a
//!   random per-object IV and integrity over header+ciphertext.
//!
//! ## Security caveat
//!
//! This is a research reproduction. The AES implementation is table-based and
//! **not constant-time** (cache-timing side channels exist); keys live in
//! ordinary heap memory without zeroization. Do not reuse outside the
//! experimental context of this repository.

#![warn(missing_docs)]

pub mod aes;
pub mod envelope;
pub mod hmac;
pub mod kdf;
pub mod modes;
pub mod sha256;

pub use aes::Aes;
pub use envelope::{CipherKey, Envelope, SealError};
pub use hmac::hmac_sha256;
pub use kdf::pbkdf2_hmac_sha256;
pub use sha256::Sha256;

/// Decodes a hex string into bytes (test vectors and key fingerprints).
///
/// Panics on invalid hex; intended for constants and diagnostics, not
/// untrusted input.
pub fn hex_decode(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd-length hex string");
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("invalid hex"))
        .collect()
}

/// Encodes bytes as lowercase hex.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write;
        write!(out, "{b:02x}").unwrap();
    }
    out
}

/// Constant-time byte comparison (for MAC verification).
///
/// Returns true iff `a == b`; runs in time dependent only on the lengths.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let bytes = vec![0x00, 0xde, 0xad, 0xbe, 0xef, 0xff];
        assert_eq!(hex_decode(&hex_encode(&bytes)), bytes);
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode(""), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "invalid hex")]
    fn hex_decode_rejects_garbage() {
        let _ = hex_decode("zz");
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
