//! Authenticated encryption envelope for MS objects.
//!
//! The paper stores "encrypted object data" on the untrusted server
//! (Alg. 1 line 8: `e.data ← secretKey.encrypt(o)`). This module defines the
//! concrete byte format the workspace uses:
//!
//! ```text
//! sealed := mode(1) || iv(16) || ct_len(u32 LE) || ciphertext || tag(32)
//! ```
//!
//! * encryption: AES-128 (CTR by default, CBC+PKCS7 optional),
//! * integrity: HMAC-SHA-256 over
//!   `mode || iv || ct_len || ciphertext || aad_len || aad`
//!   (encrypt-then-MAC), truncated to the full 32 bytes; the *associated
//!   data* is authenticated but **never stored** — the verifier supplies it
//!   (the index binds each sealed object to its external id this way);
//! * keys: independent encryption and MAC keys derived from one master key
//!   via PBKDF2 with domain-separating salts.
//!
//! Integrity matters in the threat model: a compromised server could
//! otherwise swap candidate objects between cells undetected (§4.3 considers
//! a compromised server reading the structure; tampering detection is the
//! natural hardening and costs only the MAC).

use rand::RngCore;

use crate::aes::Aes;
use crate::ct_eq;
use crate::hmac::HmacSha256;
use crate::kdf::pbkdf2_hmac_sha256;
use crate::modes::{cbc_decrypt, cbc_encrypt, ctr_apply};

/// Cipher mode selector for the envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeMode {
    /// AES-128-CTR (default: no padding, ciphertext length = plaintext).
    Ctr,
    /// AES-128-CBC with PKCS#7 (the likely 2012 JCE default).
    Cbc,
}

impl EnvelopeMode {
    fn to_byte(self) -> u8 {
        match self {
            EnvelopeMode::Ctr => 1,
            EnvelopeMode::Cbc => 2,
        }
    }
    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(EnvelopeMode::Ctr),
            2 => Some(EnvelopeMode::Cbc),
            _ => None,
        }
    }
}

/// Errors unsealing an envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// Buffer too short or structurally invalid.
    Malformed,
    /// Unknown mode byte.
    UnknownMode,
    /// MAC verification failed — data was tampered with or the key is wrong.
    IntegrityFailure,
    /// Padding or mode-level decryption failure after a valid MAC
    /// (indicates an internal bug; should be unreachable).
    DecryptFailure,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SealError::Malformed => "malformed sealed object",
            SealError::UnknownMode => "unknown envelope mode",
            SealError::IntegrityFailure => "integrity check failed (tampering or wrong key)",
            SealError::DecryptFailure => "decryption failed after valid MAC",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SealError {}

/// Symmetric key material for sealing MS objects: an AES-128 key and an
/// independent MAC key, both derived from a master secret.
///
/// Both the AES key schedule and the HMAC pad state are expanded **once**
/// here and reused by every `seal`/`unseal` — the search hot path unseals
/// hundreds of candidates per query, so per-candidate re-derivation (one
/// extra SHA-256 compression per MAC, a full key expansion per cipher)
/// would be pure waste.
#[derive(Clone)]
pub struct CipherKey {
    enc: Aes,
    /// HMAC context with the inner (ipad) block already absorbed; cloned
    /// per MAC instead of re-hashing the padded key every time.
    mac: HmacSha256,
    fingerprint: [u8; 8],
}

impl std::fmt::Debug for CipherKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CipherKey{{fp: {}}}",
            crate::hex_encode(&self.fingerprint)
        )
    }
}

impl CipherKey {
    /// Derives the envelope keys from a master secret. The derivation is
    /// deterministic, so distributing the master secret to authorized
    /// clients (paper §4.2) reproduces identical keys everywhere.
    pub fn derive_from_master(master: &[u8]) -> Self {
        // Iteration count is low because the master secret is high-entropy
        // key material, not a human password.
        let enc_bytes = pbkdf2_hmac_sha256(master, b"simcloud/enc/v1", 64, 16);
        let mac_bytes = pbkdf2_hmac_sha256(master, b"simcloud/mac/v1", 64, 32);
        let fp_bytes = pbkdf2_hmac_sha256(master, b"simcloud/fp/v1", 64, 8);
        let mut fingerprint = [0u8; 8];
        fingerprint.copy_from_slice(&fp_bytes);
        Self {
            enc: Aes::new(&enc_bytes).expect("16-byte key"),
            mac: HmacSha256::new(&mac_bytes),
            fingerprint,
        }
    }

    /// Generates a fresh random master secret and derives keys from it.
    /// Returns the key and the master secret (to distribute to clients).
    pub fn generate(rng: &mut dyn RngCore) -> (Self, [u8; 32]) {
        let mut master = [0u8; 32];
        rng.fill_bytes(&mut master);
        (Self::derive_from_master(&master), master)
    }

    /// Short public fingerprint for diagnostics (safe to log).
    pub fn fingerprint(&self) -> [u8; 8] {
        self.fingerprint
    }

    /// Seals `plaintext` with a random IV drawn from `rng`.
    pub fn seal(&self, plaintext: &[u8], mode: EnvelopeMode, rng: &mut dyn RngCore) -> Vec<u8> {
        self.seal_with_aad(plaintext, &[], mode, rng)
    }

    /// Seals `plaintext` binding it to `aad` (associated data): the MAC
    /// covers the associated data, but the data itself is **not stored** in
    /// the envelope — the verifier must supply the same bytes to
    /// [`CipherKey::unseal_with_aad`]. The Encrypted M-Index binds each
    /// sealed object to its external id this way, so an untrusted server
    /// cannot swap two (individually valid) sealed payloads between ids
    /// without tripping the integrity check.
    pub fn seal_with_aad(
        &self,
        plaintext: &[u8],
        aad: &[u8],
        mode: EnvelopeMode,
        rng: &mut dyn RngCore,
    ) -> Vec<u8> {
        let mut iv = [0u8; 16];
        rng.fill_bytes(&mut iv);
        self.seal_with_iv_aad(plaintext, aad, mode, &iv)
    }

    /// Seals with an explicit IV (tests and deterministic replay).
    pub fn seal_with_iv(&self, plaintext: &[u8], mode: EnvelopeMode, iv: &[u8; 16]) -> Vec<u8> {
        self.seal_with_iv_aad(plaintext, &[], mode, iv)
    }

    /// [`CipherKey::seal_with_aad`] with an explicit IV.
    pub fn seal_with_iv_aad(
        &self,
        plaintext: &[u8],
        aad: &[u8],
        mode: EnvelopeMode,
        iv: &[u8; 16],
    ) -> Vec<u8> {
        let ciphertext = match mode {
            EnvelopeMode::Ctr => {
                let mut data = plaintext.to_vec();
                ctr_apply(&self.enc, iv, &mut data);
                data
            }
            EnvelopeMode::Cbc => cbc_encrypt(&self.enc, iv, plaintext),
        };
        let mut out = Vec::with_capacity(1 + 16 + 4 + ciphertext.len() + 32);
        out.push(mode.to_byte());
        out.extend_from_slice(iv);
        out.extend_from_slice(&(ciphertext.len() as u32).to_le_bytes());
        out.extend_from_slice(&ciphertext);
        out.extend_from_slice(&self.tag(&out, aad));
        out
    }

    /// MAC over `body || aad_len(u32 LE) || aad`. The explicit length makes
    /// the (body, aad) split unambiguous even though both are
    /// variable-length — without it, moving bytes between the ciphertext
    /// tail and the aad head would forge a colliding input.
    fn tag(&self, body: &[u8], aad: &[u8]) -> [u8; 32] {
        let mut mac = self.mac.clone();
        mac.update(body);
        mac.update(&(aad.len() as u32).to_le_bytes());
        mac.update(aad);
        mac.finalize()
    }

    /// Size of the sealed form for a given plaintext length — used by the
    /// communication-cost accounting before actually sealing.
    pub fn sealed_len(plaintext_len: usize, mode: EnvelopeMode) -> usize {
        let ct = match mode {
            EnvelopeMode::Ctr => plaintext_len,
            EnvelopeMode::Cbc => (plaintext_len / 16 + 1) * 16,
        };
        1 + 16 + 4 + ct + 32
    }

    /// Verifies integrity and decrypts.
    pub fn unseal(&self, sealed: &[u8]) -> Result<Vec<u8>, SealError> {
        self.unseal_with_aad(sealed, &[])
    }

    /// Verifies integrity **including the associated data** and decrypts.
    /// Fails with [`SealError::IntegrityFailure`] when `aad` differs from
    /// the bytes the envelope was sealed with — the id-binding check the
    /// two-phase candidate fetch relies on.
    pub fn unseal_with_aad(&self, sealed: &[u8], aad: &[u8]) -> Result<Vec<u8>, SealError> {
        if sealed.len() < 1 + 16 + 4 + 32 {
            return Err(SealError::Malformed);
        }
        let mode = EnvelopeMode::from_byte(sealed[0]).ok_or(SealError::UnknownMode)?;
        let ct_len = u32::from_le_bytes([sealed[17], sealed[18], sealed[19], sealed[20]]) as usize;
        let body_end = 21 + ct_len;
        if sealed.len() != body_end + 32 {
            return Err(SealError::Malformed);
        }
        let (body, tag) = sealed.split_at(body_end);
        if !ct_eq(&self.tag(body, aad), tag) {
            return Err(SealError::IntegrityFailure);
        }
        let mut iv = [0u8; 16];
        iv.copy_from_slice(&sealed[1..17]);
        let ciphertext = &body[21..];
        match mode {
            EnvelopeMode::Ctr => {
                let mut data = ciphertext.to_vec();
                ctr_apply(&self.enc, &iv, &mut data);
                Ok(data)
            }
            EnvelopeMode::Cbc => {
                cbc_decrypt(&self.enc, &iv, ciphertext).ok_or(SealError::DecryptFailure)
            }
        }
    }
}

/// Convenience alias re-exported at the crate root.
pub type Envelope = CipherKey;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> CipherKey {
        CipherKey::derive_from_master(b"test master secret 0123456789")
    }

    #[test]
    fn seal_unseal_round_trip_ctr_and_cbc() {
        let k = key();
        let mut rng = StdRng::seed_from_u64(1);
        for mode in [EnvelopeMode::Ctr, EnvelopeMode::Cbc] {
            for len in [0usize, 1, 16, 100, 4096] {
                let pt: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                let sealed = k.seal(&pt, mode, &mut rng);
                assert_eq!(sealed.len(), CipherKey::sealed_len(len, mode), "len {len}");
                assert_eq!(k.unseal(&sealed).unwrap(), pt, "mode {mode:?} len {len}");
            }
        }
    }

    #[test]
    fn tampering_detected_anywhere() {
        let k = key();
        let mut rng = StdRng::seed_from_u64(2);
        let sealed = k.seal(b"candidate object payload", EnvelopeMode::Ctr, &mut rng);
        for pos in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[pos] ^= 0x01;
            assert!(
                k.unseal(&bad).is_err(),
                "tamper at byte {pos} was not detected"
            );
        }
    }

    #[test]
    fn wrong_key_is_integrity_failure() {
        let k1 = key();
        let k2 = CipherKey::derive_from_master(b"different master");
        let mut rng = StdRng::seed_from_u64(3);
        let sealed = k1.seal(b"secret", EnvelopeMode::Ctr, &mut rng);
        assert_eq!(k2.unseal(&sealed), Err(SealError::IntegrityFailure));
    }

    #[test]
    fn truncation_is_malformed() {
        let k = key();
        let mut rng = StdRng::seed_from_u64(4);
        let sealed = k.seal(b"0123456789", EnvelopeMode::Ctr, &mut rng);
        assert_eq!(k.unseal(&sealed[..10]), Err(SealError::Malformed));
        // Cutting into the tag changes total length vs declared ct_len.
        assert_eq!(
            k.unseal(&sealed[..sealed.len() - 1]),
            Err(SealError::Malformed)
        );
    }

    #[test]
    fn same_plaintext_distinct_ciphertexts() {
        let k = key();
        let mut rng = StdRng::seed_from_u64(5);
        let a = k.seal(b"same", EnvelopeMode::Ctr, &mut rng);
        let b = k.seal(b"same", EnvelopeMode::Ctr, &mut rng);
        assert_ne!(a, b, "random IVs must differ");
    }

    #[test]
    fn master_derivation_is_deterministic() {
        let a = CipherKey::derive_from_master(b"m");
        let b = CipherKey::derive_from_master(b"m");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let sealed = a.seal_with_iv(b"x", EnvelopeMode::Ctr, &[9u8; 16]);
        assert_eq!(b.unseal(&sealed).unwrap(), b"x");
    }

    #[test]
    fn generate_produces_usable_key() {
        let mut rng = StdRng::seed_from_u64(6);
        let (k, master) = CipherKey::generate(&mut rng);
        let k2 = CipherKey::derive_from_master(&master);
        let sealed = k.seal_with_iv(b"hello", EnvelopeMode::Cbc, &[1u8; 16]);
        assert_eq!(k2.unseal(&sealed).unwrap(), b"hello");
    }

    /// The cached HMAC ipad state must behave exactly like a fresh MAC on
    /// every clone: sealing on a clone and unsealing on the original (and
    /// vice versa) round-trips, and repeated unseals of one key see no
    /// state bleed-through.
    #[test]
    fn cached_mac_state_is_reusable_across_clones_and_calls() {
        let k = key();
        let k2 = k.clone();
        let mut rng = StdRng::seed_from_u64(9);
        let a = k.seal(b"first", EnvelopeMode::Ctr, &mut rng);
        let b = k2.seal(b"second", EnvelopeMode::Cbc, &mut rng);
        // interleaved unseals, both directions, twice each
        for _ in 0..2 {
            assert_eq!(k2.unseal(&a).unwrap(), b"first");
            assert_eq!(k.unseal(&b).unwrap(), b"second");
            assert_eq!(k.unseal(&a).unwrap(), b"first");
            assert_eq!(k2.unseal(&b).unwrap(), b"second");
        }
    }

    /// Associated data binds the envelope to its context: unsealing with
    /// different aad — or none — is an integrity failure, and two payloads
    /// sealed under different aad cannot be swapped.
    #[test]
    fn aad_binds_envelope_to_context() {
        let k = key();
        let mut rng = StdRng::seed_from_u64(11);
        let sealed = k.seal_with_aad(
            b"object 7",
            &7u64.to_le_bytes(),
            EnvelopeMode::Ctr,
            &mut rng,
        );
        assert_eq!(
            k.unseal_with_aad(&sealed, &7u64.to_le_bytes()).unwrap(),
            b"object 7"
        );
        assert_eq!(
            k.unseal_with_aad(&sealed, &8u64.to_le_bytes()),
            Err(SealError::IntegrityFailure),
            "wrong aad must fail"
        );
        assert_eq!(
            k.unseal(&sealed),
            Err(SealError::IntegrityFailure),
            "dropping the aad must fail"
        );
        // Swap attack: a payload sealed for id 8 presented as id 7.
        let other = k.seal_with_aad(
            b"object 8",
            &8u64.to_le_bytes(),
            EnvelopeMode::Ctr,
            &mut rng,
        );
        assert_eq!(
            k.unseal_with_aad(&other, &7u64.to_le_bytes()),
            Err(SealError::IntegrityFailure),
            "swapped payloads must fail"
        );
    }

    /// Empty aad is the plain seal/unseal path; the sealed length never
    /// depends on the aad (it is not stored).
    #[test]
    fn empty_aad_equals_plain_path_and_aad_costs_no_bytes() {
        let k = key();
        let plain = k.seal_with_iv(b"x", EnvelopeMode::Ctr, &[3u8; 16]);
        let empty = k.seal_with_iv_aad(b"x", &[], EnvelopeMode::Ctr, &[3u8; 16]);
        assert_eq!(plain, empty);
        let bound = k.seal_with_iv_aad(b"x", &[9u8; 64], EnvelopeMode::Ctr, &[3u8; 16]);
        assert_eq!(bound.len(), plain.len(), "aad must not grow the envelope");
        assert_eq!(k.unseal_with_aad(&bound, &[9u8; 64]).unwrap(), b"x");
    }

    /// The aad length is absorbed into the MAC, so shifting bytes between
    /// the ciphertext tail and the aad head cannot collide.
    #[test]
    fn aad_boundary_is_unambiguous() {
        let k = key();
        let a = k.seal_with_iv_aad(b"ab", b"cd", EnvelopeMode::Ctr, &[5u8; 16]);
        // Same concatenated suffix, different split: must not verify.
        assert!(k.unseal_with_aad(&a, b"c").is_err());
        assert!(k.unseal_with_aad(&a, b"cde").is_err());
    }

    #[test]
    fn debug_prints_fingerprint_only() {
        let k = key();
        let dbg = format!("{k:?}");
        assert!(dbg.starts_with("CipherKey{fp: "));
    }
}
