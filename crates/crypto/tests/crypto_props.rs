//! Property tests for the crypto substrate: round-trips and tamper
//! detection over arbitrary inputs. The known-answer vectors live in the
//! unit tests; these check the *structural* properties the similarity
//! cloud relies on for every possible object payload.
//!
//! Case counts are pinned via `ProptestConfig::with_cases` and the proptest
//! harness seeds each test from a fixed constant hashed with the test name
//! (crates/shims/README.md), so CI runs are bit-identical to local runs.

use proptest::prelude::*;
use simcloud_crypto::envelope::EnvelopeMode;
use simcloud_crypto::modes::{cbc_decrypt, cbc_encrypt, ctr_apply};
use simcloud_crypto::{Aes, CipherKey, Sha256};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aes_block_round_trips(key in proptest::collection::vec(any::<u8>(), 16),
                             block in proptest::collection::vec(any::<u8>(), 16)) {
        let aes = Aes::new(&key).unwrap();
        let mut b: [u8; 16] = block.clone().try_into().unwrap();
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b.to_vec(), block);
    }

    #[test]
    fn cbc_round_trips_any_payload(key in proptest::collection::vec(any::<u8>(), 16),
                                   iv in proptest::collection::vec(any::<u8>(), 16),
                                   data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let aes = Aes::new(&key).unwrap();
        let iv: [u8; 16] = iv.try_into().unwrap();
        let ct = cbc_encrypt(&aes, &iv, &data);
        prop_assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), data);
    }

    #[test]
    fn ctr_is_an_involution(key in proptest::collection::vec(any::<u8>(), 16),
                            iv in proptest::collection::vec(any::<u8>(), 16),
                            data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let aes = Aes::new(&key).unwrap();
        let iv: [u8; 16] = iv.try_into().unwrap();
        let mut buf = data.clone();
        ctr_apply(&aes, &iv, &mut buf);
        ctr_apply(&aes, &iv, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn envelope_round_trips(master in proptest::collection::vec(any::<u8>(), 1..64),
                            data in proptest::collection::vec(any::<u8>(), 0..600),
                            iv in proptest::collection::vec(any::<u8>(), 16),
                            use_cbc in any::<bool>()) {
        let key = CipherKey::derive_from_master(&master);
        let mode = if use_cbc { EnvelopeMode::Cbc } else { EnvelopeMode::Ctr };
        let iv: [u8; 16] = iv.try_into().unwrap();
        let sealed = key.seal_with_iv(&data, mode, &iv);
        prop_assert_eq!(sealed.len(), CipherKey::sealed_len(data.len(), mode));
        prop_assert_eq!(key.unseal(&sealed).unwrap(), data);
    }

    /// Any single-bit flip anywhere in a sealed object is rejected.
    #[test]
    fn envelope_detects_any_bitflip(data in proptest::collection::vec(any::<u8>(), 1..128),
                                    pos_seed in any::<u64>(),
                                    bit in 0u8..8) {
        let key = CipherKey::derive_from_master(b"prop master");
        let sealed = key.seal_with_iv(&data, EnvelopeMode::Ctr, &[7u8; 16]);
        let pos = (pos_seed as usize) % sealed.len();
        let mut bad = sealed.clone();
        bad[pos] ^= 1 << bit;
        prop_assert!(key.unseal(&bad).is_err(), "flip at {pos} bit {bit} accepted");
    }

    /// Unsealing never panics on arbitrary garbage (the client faces a
    /// malicious server).
    #[test]
    fn unseal_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
        let key = CipherKey::derive_from_master(b"prop master");
        let _ = key.unseal(&garbage); // must return Err, not panic
    }

    #[test]
    fn sha256_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..1024),
                                       split in any::<usize>()) {
        let split = if data.is_empty() { 0 } else { split % data.len() };
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn distinct_masters_distinct_ciphertexts(data in proptest::collection::vec(any::<u8>(), 1..64)) {
        let k1 = CipherKey::derive_from_master(b"master one");
        let k2 = CipherKey::derive_from_master(b"master two");
        let s1 = k1.seal_with_iv(&data, EnvelopeMode::Ctr, &[1u8; 16]);
        let s2 = k2.seal_with_iv(&data, EnvelopeMode::Ctr, &[1u8; 16]);
        prop_assert_ne!(s1.clone(), s2.clone());
        prop_assert!(k2.unseal(&s1).is_err());
        prop_assert!(k1.unseal(&s2).is_err());
    }
}
