//! Offline shim for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `criterion_group!` / `criterion_main!` — backed by a simple
//! wall-clock harness: per benchmark it warms up briefly, then times
//! `sample_size` samples and reports the median time per iteration (and
//! derived throughput when declared). No statistics files, no HTML reports,
//! no outlier analysis; when the real crates.io criterion becomes available
//! the manifests can swap it in without touching bench code.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for convenience (benches may also use
/// `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement driver handed to each bench target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder style, like real
    /// criterion's `Criterion::sample_size`).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }
}

/// Declared per-iteration work volume, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work volume for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.sample_size, self.throughput, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (no-op beyond symmetry with real criterion).
    pub fn finish(self) {}
}

/// Timing handle passed to the bench closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibrate: grow the iteration count until one sample takes ≳1 ms, so
    // sub-microsecond routines are still resolvable with Instant.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let mut line = format!(
        "{name:<48} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
    match throughput {
        Some(Throughput::Bytes(bytes)) if median > 0.0 => {
            let gib = bytes as f64 / median / (1024.0 * 1024.0 * 1024.0);
            line.push_str(&format!("  thrpt: {gib:.3} GiB/s"));
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            let meps = n as f64 / median / 1e6;
            line.push_str(&format!("  thrpt: {meps:.3} Melem/s"));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a bench group: plain `criterion_group!(name, targets…)` or the
/// block form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        assert!(ran >= 3, "closure must run for calibration + samples");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
        });
        g.bench_function(BenchmarkId::from_parameter(1), |b| b.iter(|| ()));
        g.finish();
    }
}
