//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API that the simcloud test-suite
//! uses — the `proptest!` / `prop_assert*!` / `prop_oneof!` macros, the
//! [`Strategy`] trait with `prop_map`, ranges / tuples / `Just` / `any` /
//! `collection::vec` / regex-subset string strategies, and
//! [`ProptestConfig::with_cases`] — on top of a **fully deterministic** RNG.
//!
//! Differences from real proptest, by design:
//!
//! * **Determinism**: every test's RNG is seeded from a fixed workspace
//!   constant hashed with the test's `module_path!()::name`, so a run
//!   explores the same cases on every machine and every execution. There is
//!   no `PROPTEST_` environment handling and no persistence file; CI and
//!   local runs are bit-identical.
//! * **No shrinking**: a failing case reports the case number and the seed
//!   name instead of a minimized input. Re-running reproduces it exactly.
//! * **Regex strategies** support the subset actually used in-tree: char
//!   classes (`[a-c]`, ranges and literals), `.`, literals, and `{m}`,
//!   `{m,n}`, `?`, `*`, `+` quantifiers.

use std::rc::Rc;

use rand::{Rng, RngCore, SeedableRng};

/// Deterministic RNG driving all strategies. Like the real proptest, the
/// generator itself comes from the `rand` crate (here the workspace's rand
/// shim, so the two shims share one PRNG implementation).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

/// Workspace-wide base seed. Changing it re-rolls every property test's
/// cases; keep it fixed so CI failures reproduce locally.
const BASE_SEED: u64 = 0x051C_100D_2012;

impl TestRng {
    /// RNG for a named test, seeded from FNV-1a of the name mixed with
    /// [`BASE_SEED`].
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(h ^ BASE_SEED),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        RngCore::next_u64(&mut self.inner)
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

/// Per-block test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert*!`; propagated with `?` through helper
/// functions returning `Result<(), TestCaseError>`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }

    /// A rejected case (treated as failure in this shim; `prop_assume!`
    /// skips the case without constructing one).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of values for property tests.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strat: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased strategy; cheap to clone.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoxedStrategy").finish_non_exhaustive()
    }
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S, F> std::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map").finish_non_exhaustive()
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strat.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Any").finish_non_exhaustive()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
impl_strategy_for_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_strategy_for_int_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_strategy_for_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = (self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64)) as $t;
                if v < self.end { v.max(self.start) } else { self.start }
            }
        }
    )*};
}
impl_strategy_for_float_range!(f32, f64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Weighted choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    branches: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").finish_non_exhaustive()
    }
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(branches: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = branches.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { branches, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.branches {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy yielding `Vec`s of `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> std::fmt::Debug for VecStrategy<S> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("VecStrategy").finish_non_exhaustive()
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

mod pattern {
    //! Regex-subset string generation for `&str` strategies.

    use super::TestRng;

    enum Atom {
        Class(Vec<char>),
        AnyChar,
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    /// Curated alphabet for `.`: printable ASCII plus a few multi-byte
    /// scalars so UTF-8 handling is exercised.
    const ANY_CHARS: &[char] = &[
        'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', ' ', '\t', '!', '"', '#', '%', '&', '\'',
        '(', ')', '*', '+', ',', '-', '.', '/', ':', ';', '<', '=', '>', '?', '@', '[', '\\', ']',
        '^', '_', '`', '{', '|', '}', '~', 'é', 'λ', 'ж', '中', '🦀',
    ];

    fn parse(pat: &str) -> Vec<Piece> {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    assert!(
                        chars.get(i) != Some(&'^'),
                        "[proptest shim] negated classes unsupported in {pat:?}"
                    );
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "[proptest shim] bad class range in {pat:?}");
                            for c in lo..=hi {
                                set.push(c);
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "[proptest shim] unterminated class in {pat:?}"
                    );
                    i += 1; // consume ']'
                    assert!(!set.is_empty(), "[proptest shim] empty class in {pat:?}");
                    Atom::Class(set)
                }
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '\\' => {
                    i += 1;
                    assert!(
                        i < chars.len(),
                        "[proptest shim] trailing backslash in {pat:?}"
                    );
                    let c = chars[i];
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    assert!(
                        !"(){}*+?|$".contains(c),
                        "[proptest shim] unsupported regex syntax {c:?} in {pat:?}"
                    );
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..].iter().position(|&c| c == '}').map_or_else(
                        || panic!("[proptest shim] unterminated quantifier in {pat:?}"),
                        |p| i + p,
                    );
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {m,n} lower bound"),
                            hi.trim().parse().expect("bad {m,n} upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad {m} count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "[proptest shim] bad quantifier in {pat:?}");
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub(crate) fn generate(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pat) {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(match &piece.atom {
                    Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
                    Atom::AnyChar => ANY_CHARS[rng.below(ANY_CHARS.len() as u64) as usize],
                    Atom::Literal(c) => *c,
                });
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

pub mod strategy {
    //! Re-exports mirroring proptest's module layout.
    pub use super::{Any, BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod test_runner {
    //! Re-exports mirroring proptest's module layout.
    pub use super::{TestCaseError, TestRng};
}

pub mod prelude {
    //! The common imports: `use proptest::prelude::*;`
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __name = concat!(module_path!(), "::", stringify!($name));
                let mut __rng = $crate::TestRng::for_test(__name);
                for __case in 0..__cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "[proptest shim] {} failed at case {}/{}: {}",
                            __name,
                            __case + 1,
                            __cfg.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+)).into(),
            );
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current case unless the operands are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the rest of the current case unless `cond` holds (this shim treats
/// the case as vacuously passing rather than resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("fixed");
        let mut b = TestRng::for_test("fixed");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn regex_subset_generates_within_spec() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-c]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = crate::Strategy::generate(&".{0,200}", &mut rng);
            assert!(t.chars().count() <= 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn oneof_vec_map_pipeline(
            v in proptest::collection::vec(0u32..100, 1..20),
            tag in prop_oneof![2 => Just(0u8), 1 => Just(1u8)],
            s in (0usize..10, -5i64..5).prop_map(|(a, b)| a as i64 + b),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(tag <= 1);
            prop_assert!((-5..15).contains(&s));
        }
    }

    fn helper(x: u32) -> Result<(), TestCaseError> {
        prop_assert!(x < 1000, "x was {}", x);
        Ok(())
    }

    proptest! {
        #[test]
        fn question_mark_propagates(x in 0u32..1000) {
            helper(x)?;
        }
    }

    // `proptest` path inside the macro body above refers to this crate when
    // compiled as a unit test, so alias it.
    use crate as proptest;
}
