//! Offline shim for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, API-compatible implementation of the
//! subset of `rand` 0.8 that simcloud actually uses:
//!
//! * [`RngCore`] (`next_u32` / `next_u64` / `fill_bytes`),
//! * [`Rng::gen_range`] over integer and float ranges,
//! * [`SeedableRng::seed_from_u64`] / `from_entropy`,
//! * [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism is the whole point: `StdRng::seed_from_u64(s)` yields the same
//! stream on every platform and every run, which the seed test-suite and the
//! dataset generators rely on.

/// Low-level source of random u32/u64/bytes.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanded with SplitMix64 — deterministic
    /// across platforms and runs.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = splitmix64(&mut state);
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Builds the RNG from environmental entropy (wall clock + ASLR noise).
    fn from_entropy() -> Self {
        use std::hash::{BuildHasher, Hasher};
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x9e3779b97f4a7c15, |d| d.as_nanos() as u64);
        let h = std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish();
        Self::seed_from_u64(t ^ h.rotate_left(32))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical uniform distribution (for [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from. Generic over the output
/// type (rather than using an associated type) so that unsuffixed literals in
/// e.g. `rng.gen_range(0.0..1.0)` unify with the surrounding context, exactly
/// as with the real rand crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                let v = (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t;
                // Rounding can land exactly on the excluded upper bound.
                if v < self.end { v.max(self.start) } else { self.start }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                ((lo as f64 + unit * (hi as f64 - lo as f64)) as $t).clamp(lo, hi)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Unbiased uniform integer in `[0, span)` via widening multiply with
/// rejection (Lemire's method). `span` must be non-zero.
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** (Blackman & Vigna).
    ///
    /// **Not cryptographic**, unlike the real rand crate's ChaCha12-based
    /// `StdRng`. Anything that draws security-relevant values from this
    /// shim (e.g. envelope IVs via `from_entropy`) inherits a predictable
    /// generator — acceptable for this research reproduction, documented
    /// in crates/shims/README.md "Known divergences".
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0xbf58476d1ce4e5b9,
                    0x94d049bb133111eb,
                    0x2545f4914f6cdd1d,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u64(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
