//! Offline shim for `serde`'s derive macros.
//!
//! The workspace annotates public types with `#[derive(Serialize,
//! Deserialize)]` so that a future PR can turn on real serde-based
//! persistence, but nothing in the seed actually serializes through serde —
//! all wire/storage encoding is hand-rolled in the protocol and storage
//! layers. Since the build environment is offline (no crates.io), this shim
//! provides the two derive macros as no-ops: the attribute compiles, no code
//! is generated, and no `Serialize`/`Deserialize` trait bound exists anywhere
//! to need it. Swapping in real serde later is a one-line manifest change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
