//! Offline shim for `parking_lot`: wraps `std::sync` locks behind
//! parking_lot's panic-free API (`lock()` returns the guard directly;
//! poisoning is swallowed, matching parking_lot's no-poisoning semantics).

/// Mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
