//! The metric [`Registry`]: a global-free, `Arc`-shared catalog of
//! named metrics plus the plaintext exposition renderer.
//!
//! Instrumented components register their metrics **once** (at
//! construction) and cache the returned `Arc` handles — the hot path
//! touches only the atomics inside the handle, never the registry map.
//! Keys are `(component, name)` pairs (`"server"`/`"request"`,
//! `"wal"`/`"fsync"`, ...), rendered as `component.name` in the
//! exposition text.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::metrics::{Counter, Gauge, Histogram};

type Key = (String, String);

/// Recovers a possibly-poisoned mutex guard: metrics are plain data, a
/// panicking recorder cannot leave them in a state worth refusing.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    start: Instant,
    counters: Mutex<BTreeMap<Key, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<Key, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<Key, Arc<Histogram>>>,
}

/// Shared, cloneable metric catalog. Cloning is `Arc`-cheap; every clone
/// sees (and renders) the same metrics and the same enabled flag.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// New registry, telemetry enabled.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                start: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Turns span timing on or off. Counters and gauges stay live either
    /// way (they are single relaxed RMWs); the flag gates the clock reads
    /// and per-request bookkeeping, which is where the measurable cost is.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether span timing is on.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the registry was created (server uptime,
    /// saturating).
    pub fn uptime_nanos(&self) -> u64 {
        u64::try_from(self.inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Registers (or retrieves) the counter `component.name`.
    pub fn counter(&self, component: &str, name: &str) -> Arc<Counter> {
        Arc::clone(
            relock(&self.inner.counters)
                .entry((component.to_owned(), name.to_owned()))
                .or_default(),
        )
    }

    /// Registers (or retrieves) the gauge `component.name`.
    pub fn gauge(&self, component: &str, name: &str) -> Arc<Gauge> {
        Arc::clone(
            relock(&self.inner.gauges)
                .entry((component.to_owned(), name.to_owned()))
                .or_default(),
        )
    }

    /// Registers (or retrieves) the histogram `component.name`.
    pub fn histogram(&self, component: &str, name: &str) -> Arc<Histogram> {
        Arc::clone(
            relock(&self.inner.histograms)
                .entry((component.to_owned(), name.to_owned()))
                .or_default(),
        )
    }

    /// Renders every registered metric in the plaintext exposition
    /// format, deterministically ordered (type section, then key):
    ///
    /// ```text
    /// counter server.requests 1042
    /// gauge server.entries 600
    /// histogram server.request count=1042 sum=52100000 mean=50000 p50=65535 p95=131071 p99=262143 max=241300
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// [`Registry::render`] into an existing buffer.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        for ((c, n), v) in relock(&self.inner.counters).iter() {
            let _ = writeln!(out, "counter {c}.{n} {}", v.get());
        }
        for ((c, n), v) in relock(&self.inner.gauges).iter() {
            let _ = writeln!(out, "gauge {c}.{n} {}", v.get());
        }
        for ((c, n), v) in relock(&self.inner.histograms).iter() {
            let s = v.snapshot();
            let _ = writeln!(
                out,
                "histogram {c}.{n} count={} sum={} mean={} p50={} p95={} p99={} max={}",
                s.count,
                s.sum,
                s.mean(),
                s.p50(),
                s.p95(),
                s.p99(),
                s.max
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("server", "requests");
        let b = r.counter("server", "requests");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn clones_share_state() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("a", "x").add(7);
        assert_eq!(r2.counter("a", "x").get(), 7);
        r2.set_enabled(false);
        assert!(!r.enabled());
    }

    #[test]
    fn render_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("server", "requests").add(3);
        r.counter("client", "retries").inc();
        r.gauge("server", "entries").set(42);
        r.histogram("server", "request").record(100);
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.first().copied(), Some("counter client.retries 1"));
        assert_eq!(lines.get(1).copied(), Some("counter server.requests 3"));
        assert_eq!(lines.get(2).copied(), Some("gauge server.entries 42"));
        assert!(lines
            .get(3)
            .is_some_and(|l| l.starts_with("histogram server.request count=1 sum=100 ")));
    }

    #[test]
    fn uptime_advances() {
        let r = Registry::new();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(r.uptime_nanos() > 0);
    }
}
