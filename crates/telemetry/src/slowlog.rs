//! Bounded worst-N slow-query log.
//!
//! The log keeps the `capacity` slowest completed requests seen so far,
//! each with its full per-phase breakdown — the first place an operator
//! looks when p99 moves. Offering a record is a short mutex-guarded
//! scan; the fast path (request faster than the current N-th worst once
//! the log is full) is one lock + one comparison, and the log is only
//! consulted at all when telemetry is enabled.

use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::span::TraceRecord;

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One retained slow request.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Request kind (`"knn"`, `"insert"`, ...).
    pub label: &'static str,
    /// Whole-request wall time in nanoseconds.
    pub total_nanos: u64,
    /// `(phase, nanoseconds)` in execution order.
    pub phases: Vec<(&'static str, u64)>,
}

/// Fixed-capacity worst-N log, ordered slowest first.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    entries: Mutex<Vec<SlowQuery>>,
}

impl SlowLog {
    /// New log retaining the `capacity` slowest requests.
    pub fn new(capacity: usize) -> Self {
        SlowLog {
            capacity,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Offers a completed trace; it is retained iff it ranks among the
    /// `capacity` slowest seen so far.
    pub fn offer(&self, record: TraceRecord) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = relock(&self.entries);
        if entries.len() >= self.capacity
            && entries
                .last()
                .is_some_and(|worst_kept| record.total_nanos <= worst_kept.total_nanos)
        {
            return;
        }
        let at = entries.partition_point(|e| e.total_nanos >= record.total_nanos);
        entries.insert(
            at,
            SlowQuery {
                label: record.label,
                total_nanos: record.total_nanos,
                phases: record.phases,
            },
        );
        entries.truncate(self.capacity);
    }

    /// The retained requests, slowest first.
    pub fn snapshot(&self) -> Vec<SlowQuery> {
        relock(&self.entries).clone()
    }

    /// Empties the log.
    pub fn clear(&self) {
        relock(&self.entries).clear();
    }

    /// Renders the log in the exposition format, one line per retained
    /// request:
    ///
    /// ```text
    /// slow_query rank=1 label=knn total_nanos=51234567 phases=decode:2100,open:48000000,stage:900000,encode:334467
    /// ```
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        for (rank, q) in self.snapshot().iter().enumerate() {
            let _ = write!(
                out,
                "slow_query rank={} label={} total_nanos={} phases=",
                rank + 1,
                q.label,
                q.total_nanos
            );
            for (i, (name, nanos)) in q.phases.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}{name}:{nanos}");
            }
            let _ = writeln!(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(label: &'static str, total: u64) -> TraceRecord {
        TraceRecord {
            label,
            total_nanos: total,
            phases: vec![("decode", 1), ("stage", total.saturating_sub(1))],
        }
    }

    #[test]
    fn keeps_worst_n_sorted() {
        let log = SlowLog::new(3);
        for t in [50, 10, 99, 70, 5, 80] {
            log.offer(rec("knn", t));
        }
        let kept: Vec<u64> = log.snapshot().iter().map(|q| q.total_nanos).collect();
        assert_eq!(kept, vec![99, 80, 70]);
    }

    #[test]
    fn phases_survive_into_the_log() {
        let log = SlowLog::new(2);
        log.offer(rec("range", 1000));
        let snap = log.snapshot();
        assert_eq!(snap.first().map(|q| q.label), Some("range"));
        assert_eq!(
            snap.first().map(|q| q.phases.clone()),
            Some(vec![("decode", 1), ("stage", 999)])
        );
    }

    #[test]
    fn render_lists_ranks_and_phases() {
        let log = SlowLog::new(2);
        log.offer(rec("knn", 100));
        log.offer(rec("insert", 200));
        let mut out = String::new();
        log.render_into(&mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines.first().copied(),
            Some("slow_query rank=1 label=insert total_nanos=200 phases=decode:1,stage:199")
        );
        assert!(lines
            .get(1)
            .is_some_and(|l| l.starts_with("slow_query rank=2 label=knn ")));
    }

    #[test]
    fn zero_capacity_log_is_inert() {
        let log = SlowLog::new(0);
        log.offer(rec("knn", 100));
        assert!(log.snapshot().is_empty());
    }
}
