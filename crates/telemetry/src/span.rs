//! RAII phase timing: a [`Trace`] follows one request through its
//! lifecycle, and each [`PhaseSpan`] opened on it times one phase,
//! recording the elapsed nanoseconds into a [`Histogram`] *and* into the
//! trace's own phase list (which feeds the slow-query log).
//!
//! A disabled trace (telemetry off) costs one branch per span and never
//! reads the clock. Spans borrow the trace mutably, so phases are
//! naturally sequential and cannot overlap by construction.

use std::time::Instant;

use crate::metrics::Histogram;

/// Per-request phase timeline. Create one per request with
/// [`Trace::started`] (or [`Trace::disabled`] when telemetry is off),
/// open a [`PhaseSpan`] around each phase, then [`Trace::finish`] it.
#[derive(Debug)]
pub struct Trace {
    start: Option<Instant>,
    label: &'static str,
    phases: Vec<(&'static str, u64)>,
}

impl Trace {
    /// A live trace: the clock starts now.
    pub fn started(label: &'static str) -> Self {
        Trace {
            start: Some(Instant::now()),
            label,
            // A request records a handful of phases; reserving up front
            // keeps span drops realloc-free on the hot path.
            phases: Vec::with_capacity(8),
        }
    }

    /// A no-op trace: spans on it never read the clock or record.
    pub fn disabled() -> Self {
        Trace {
            start: None,
            label: "",
            phases: Vec::new(),
        }
    }

    /// Whether this trace is recording.
    pub fn is_live(&self) -> bool {
        self.start.is_some()
    }

    /// Replaces the label (set once the request kind is known, i.e.
    /// after the decode phase).
    pub fn set_label(&mut self, label: &'static str) {
        self.label = label;
    }

    /// Opens a span timing one phase; the phase ends when the guard
    /// drops, recording into `hist` and the trace's phase list.
    pub fn span<'a>(&'a mut self, name: &'static str, hist: &'a Histogram) -> PhaseSpan<'a> {
        if self.is_live() {
            PhaseSpan {
                trace: Some(self),
                hist,
                name,
                start: Some(Instant::now()),
            }
        } else {
            PhaseSpan {
                trace: None,
                hist,
                name,
                start: None,
            }
        }
    }

    /// Appends an externally measured phase (used when a phase's timing
    /// comes from a callee rather than a lexical scope).
    pub fn push_phase(&mut self, name: &'static str, nanos: u64) {
        if self.is_live() {
            self.phases.push((name, nanos));
        }
    }

    /// Closes the trace. `None` when the trace was disabled.
    pub fn finish(self) -> Option<TraceRecord> {
        let start = self.start?;
        Some(TraceRecord {
            label: self.label,
            total_nanos: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            phases: self.phases,
        })
    }
}

/// RAII guard for one phase of a [`Trace`].
#[derive(Debug)]
#[must_use = "a span times until dropped; binding it to _ ends the phase immediately"]
pub struct PhaseSpan<'a> {
    trace: Option<&'a mut Trace>,
    hist: &'a Histogram,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        let (Some(trace), Some(start)) = (self.trace.take(), self.start) else {
            return;
        };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(nanos);
        trace.phases.push((self.name, nanos));
    }
}

/// Completed trace: the request's label, wall time and per-phase
/// breakdown, ready for the slow-query log.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Request kind (`"knn"`, `"insert"`, ...).
    pub label: &'static str,
    /// Whole-request wall time in nanoseconds.
    pub total_nanos: u64,
    /// `(phase name, nanoseconds)` in execution order.
    pub phases: Vec<(&'static str, u64)>,
}

/// Standalone RAII timer for components without a per-request trace
/// (storage flushes, transport dials): records into a histogram on drop,
/// and reads the clock only when constructed enabled.
#[derive(Debug)]
#[must_use = "a span timer measures until dropped"]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl<'a> SpanTimer<'a> {
    /// Starts timing into `hist` when `enabled`; a disabled timer is
    /// free.
    pub fn new(hist: &'a Histogram, enabled: bool) -> Self {
        SpanTimer {
            hist,
            start: enabled.then(Instant::now),
        }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record_since(start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn live_trace_records_phases_and_histogram() {
        let hist = Histogram::new();
        let mut trace = Trace::started("knn");
        {
            let _s = trace.span("decode", &hist);
            std::thread::sleep(Duration::from_millis(1));
        }
        {
            let _s = trace.span("stage", &hist);
        }
        let rec = trace.finish().expect("live trace yields a record");
        assert_eq!(rec.label, "knn");
        assert_eq!(rec.phases.len(), 2);
        assert_eq!(rec.phases.first().map(|p| p.0), Some("decode"));
        assert!(rec.phases.first().is_some_and(|p| p.1 >= 1_000_000));
        assert!(rec.total_nanos >= rec.phases.iter().map(|p| p.1).sum::<u64>());
        assert_eq!(hist.snapshot().count, 2);
    }

    #[test]
    fn disabled_trace_is_inert() {
        let hist = Histogram::new();
        let mut trace = Trace::disabled();
        {
            let _s = trace.span("decode", &hist);
        }
        assert!(trace.finish().is_none());
        assert_eq!(hist.snapshot().count, 0);
    }

    #[test]
    fn span_timer_gates_on_enabled() {
        let hist = Histogram::new();
        {
            let _t = SpanTimer::new(&hist, false);
        }
        assert_eq!(hist.snapshot().count, 0);
        {
            let _t = SpanTimer::new(&hist, true);
        }
        assert_eq!(hist.snapshot().count, 1);
    }
}
