//! Lock-free metric primitives: [`Counter`], [`Gauge`] and the
//! log-bucketed latency [`Histogram`].
//!
//! Everything here is plain `std` atomics with `Relaxed` ordering — a
//! recording thread never waits, never allocates and never takes a lock,
//! so the hot path can be instrumented unconditionally. Readers take
//! [`HistogramSnapshot`]s, which are owned, mergeable values: snapshots
//! from many histograms (one per shard, say) sum bucket-wise into one
//! distribution, the same way `SearchStats::merge_from` sums counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of histogram buckets: one per possible bit-width of a `u64`
/// nanosecond value (0 gets its own bucket), so bucket `i >= 1` covers
/// `[2^(i-1), 2^i)` and any quantile estimate is off by at most one
/// power of two — a bounded *relative* error at every latency scale.
pub const BUCKET_COUNT: usize = 65;

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (entries resident, connections open, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the level outright.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`, saturating at zero (a racy double-release
    /// must not wrap the gauge to 2^64).
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index of a value: its bit width, so bucket 0 holds exactly the
/// value 0 and bucket `i >= 1` holds `[2^(i-1), 2^i)`.
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the value a quantile estimate
/// reports for a sample that landed there).
fn bucket_ceiling(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKET_COUNT - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Lock-free log-bucketed histogram of `u64` samples (nanoseconds on
/// every latency path in this workspace).
///
/// Recording is three relaxed atomic RMWs plus a `fetch_max`; taking a
/// snapshot is 68 relaxed loads. A snapshot taken while writers are
/// active is a consistent-enough view for operations (each field is
/// atomically read, fields may be skewed by in-flight samples); once
/// writers quiesce it is exact.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if let Some(b) = self.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a duration as whole nanoseconds (saturating past ~584
    /// years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records the elapsed time since `start`.
    pub fn record_since(&self, start: Instant) {
        self.record_duration(start.elapsed());
    }

    /// Owned copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| {
                self.buckets.get(i).map_or(0, |b| b.load(Ordering::Relaxed))
            }),
        }
    }
}

/// Owned, mergeable view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    buckets: [u64; BUCKET_COUNT],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKET_COUNT],
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self` — *sums*, never overwrites: counts,
    /// sums and every bucket add element-wise; `max` keeps the larger.
    /// This is how per-shard distributions aggregate into one.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// Estimated quantile `q` in `[0, 1]`: the ceiling of the bucket
    /// holding the rank-`ceil(q * count)` sample, clamped to the observed
    /// max. The estimate can overshoot the true quantile by at most one
    /// bucket (a factor of 2 in value) and never undershoots it.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += *b;
            if seen >= rank {
                return bucket_ceiling(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Bucket occupancy, for tests and renderers.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_width() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(3);
        g.sub(5);
        assert_eq!(g.get(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge saturates instead of wrapping");
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_006);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.bucket(0), 1);
        assert_eq!(s.bucket(1), 1);
        assert_eq!(s.bucket(2), 2);
        assert_eq!(s.mean(), 166_834);
    }

    #[test]
    fn quantiles_clamp_to_observed_max() {
        let h = Histogram::new();
        h.record(700);
        let s = h.snapshot();
        assert_eq!(s.p50(), 700);
        assert_eq!(s.p99(), 700);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.max, s.p50(), s.mean()), (0, 0, 0, 0, 0));
    }
}
