//! # simcloud-telemetry — lock-free metrics, phase spans, slow-query log
//!
//! The observability substrate for the whole workspace, dependency-free
//! by policy (this container has no registry access; everything here is
//! plain `std`). Three layers:
//!
//! * [`metrics`] — atomic [`Counter`]s, [`Gauge`]s and log-bucketed
//!   latency [`Histogram`]s whose [`HistogramSnapshot`]s carry
//!   p50/p95/p99/max estimates and merge by summation (per-shard
//!   distributions aggregate exactly like `SearchStats::merge_from`);
//! * [`span`] — RAII phase timing: a [`Trace`] per request, a
//!   [`PhaseSpan`] per lifecycle phase (decode → route → open → pull →
//!   stage → encode), plus the trace-free [`SpanTimer`] for storage and
//!   transport internals;
//! * [`registry`] / [`slowlog`] — the `Arc`-shared, global-free
//!   [`Registry`] keyed by `(component, name)` with a deterministic
//!   plaintext exposition renderer, and the bounded worst-N [`SlowLog`]
//!   retaining full phase breakdowns of the slowest requests.
//!
//! Everything in this crate sits inside the static-analysis gate's
//! server zone (`cargo run -p simcloud-analyze -- check`): no panics, no
//! slice indexing, no narrowing casts — a metrics bug must never take
//! down the request path it observes. Recording is wait-free (relaxed
//! atomics); only registration (startup) and snapshot/render (the ops
//! surface) take locks.

#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod slowlog;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use registry::Registry;
pub use slowlog::{SlowLog, SlowQuery};
pub use span::{PhaseSpan, SpanTimer, Trace, TraceRecord};
